// Granularity relationships, after the "Time Granularities" framework the
// paper builds on (reference [3]): groups-into and finer-than checks, and
// recurrence-formula validation built on them.
//
// Granularities here can be arbitrary user types, so the relations are
// verified empirically over a finite horizon rather than symbolically:
// the checks are sound over the horizon and reported as such.

#ifndef HISTKANON_SRC_TGRAN_RELATIONS_H_
#define HISTKANON_SRC_TGRAN_RELATIONS_H_

#include "src/common/status.h"
#include "src/geo/interval.h"
#include "src/tgran/granularity.h"
#include "src/tgran/recurrence.h"

namespace histkanon {
namespace tgran {

/// \brief Horizon over which relations are verified.
struct RelationCheckOptions {
  /// Timeline range examined.
  geo::TimeInterval horizon{0, 56 * kSecondsPerDay};  // 8 weeks.
  /// Probe step within each granule (seconds).
  int64_t probe_step = kSecondsPerHour;
};

/// \brief True iff, over the horizon, every granule of `fine` lies inside
/// a single granule of `coarse` ("fine groups into coarse"): e.g. weekdays
/// group into weeks, days group into months, but weeks do NOT group into
/// months.
bool GroupsInto(const Granularity& fine, const Granularity& coarse,
                const RelationCheckOptions& options = RelationCheckOptions());

/// \brief True iff, over the horizon, every instant covered by `fine` is
/// also covered by `coarse` AND GroupsInto(fine, coarse) holds — the
/// "finer-than" partial order of [3] restricted to the horizon.
bool FinerThan(const Granularity& fine, const Granularity& coarse,
               const RelationCheckOptions& options = RelationCheckOptions());

/// \brief Validates a recurrence formula's granularity chain: each G(i+1)
/// must be coarser than G(i) in the GroupsInto sense, otherwise the
/// formula's semantics ("r_i occurrences within one granule of G(i+1)")
/// degenerate.  Returns InvalidArgument naming the offending pair.
common::Status ValidateRecurrence(
    const Recurrence& recurrence,
    const RelationCheckOptions& options = RelationCheckOptions());

}  // namespace tgran
}  // namespace histkanon

#endif  // HISTKANON_SRC_TGRAN_RELATIONS_H_
