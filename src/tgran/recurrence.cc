#include "src/tgran/recurrence.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "src/common/str.h"

namespace histkanon {
namespace tgran {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

// Representative instants of the granules (of `granularity`) that contain
// at least `min_per_granule` of the given instants, counting each granule
// once.  Instants falling in gaps are ignored.
std::vector<Instant> GroupByGranule(const std::vector<Instant>& instants,
                                    const Granularity& granularity,
                                    int min_per_granule) {
  std::map<int64_t, std::set<Instant>> per_granule;
  for (const Instant t : instants) {
    const std::optional<int64_t> granule = granularity.GranuleOf(t);
    if (granule.has_value()) per_granule[*granule].insert(t);
  }
  std::vector<Instant> representatives;
  for (const auto& [granule, members] : per_granule) {
    if (static_cast<int>(members.size()) >= min_per_granule) {
      representatives.push_back(granularity.GranuleInterval(granule).lo);
    }
  }
  return representatives;
}

}  // namespace

common::Result<Recurrence> Recurrence::Create(
    std::vector<RecurrenceTerm> terms) {
  for (const RecurrenceTerm& term : terms) {
    if (term.count <= 0) {
      return common::Status::InvalidArgument(
          common::Format("recurrence count must be positive; got %d",
                         term.count));
    }
    if (term.granularity == nullptr) {
      return common::Status::InvalidArgument(
          "recurrence term has null granularity");
    }
  }
  return Recurrence(std::move(terms));
}

common::Result<Recurrence> Recurrence::Parse(
    const std::string& text, const GranularityRegistry& registry) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty() || trimmed == "1.") return Recurrence();

  std::vector<RecurrenceTerm> terms;
  size_t pos = 0;
  while (pos <= trimmed.size()) {
    size_t star = trimmed.find('*', pos);
    const std::string piece =
        Trim(trimmed.substr(pos, (star == std::string::npos ? trimmed.size()
                                                            : star) -
                                     pos));
    if (piece.empty()) {
      return common::Status::InvalidArgument("empty recurrence term in '" +
                                             text + "'");
    }
    const size_t dot = piece.find('.');
    if (dot == std::string::npos) {
      return common::Status::InvalidArgument(
          "recurrence term '" + piece + "' is not of the form r.G");
    }
    const std::string count_text = Trim(piece.substr(0, dot));
    const std::string name = Trim(piece.substr(dot + 1));
    char* end = nullptr;
    const long count = std::strtol(count_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || count <= 0) {
      return common::Status::InvalidArgument(
          "recurrence count '" + count_text + "' is not a positive integer");
    }
    HISTKANON_ASSIGN_OR_RETURN(GranularityPtr granularity,
                               registry.Find(name));
    terms.push_back(
        RecurrenceTerm{static_cast<int>(count), std::move(granularity)});
    if (star == std::string::npos) break;
    pos = star + 1;
  }
  return Create(std::move(terms));
}

bool Recurrence::IsSatisfiedBy(
    const std::vector<Instant>& observation_times) const {
  return SatisfiedLevels(observation_times) ==
         static_cast<int>(terms_.size()) &&
         !observation_times.empty();
}

int Recurrence::SatisfiedLevels(
    const std::vector<Instant>& observation_times) const {
  if (terms_.empty() || observation_times.empty()) return 0;

  // Level-0 units: distinct granules of G1 containing an observation.
  std::vector<Instant> units =
      GroupByGranule(observation_times, *terms_[0].granularity, 1);
  int satisfied = 0;
  for (size_t i = 1; i < terms_.size(); ++i) {
    // r_i units of level i-1 within one granule of G_{i+1}.
    std::vector<Instant> next =
        GroupByGranule(units, *terms_[i].granularity, terms_[i - 1].count);
    if (next.empty()) return satisfied;
    ++satisfied;
    units = std::move(next);
  }
  if (static_cast<int>(units.size()) >= terms_.back().count) ++satisfied;
  return satisfied;
}

int64_t Recurrence::MinimumObservations() const {
  int64_t product = 1;
  for (const RecurrenceTerm& term : terms_) product *= term.count;
  return product;
}

std::string Recurrence::ToString() const {
  if (terms_.empty()) return "1.";
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const RecurrenceTerm& term : terms_) {
    parts.push_back(
        common::Format("%d.%s", term.count, term.granularity->name().c_str()));
  }
  return common::Join(parts, " * ");
}

}  // namespace tgran
}  // namespace histkanon
