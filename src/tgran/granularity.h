// Time granularities, after Bettini, Jajodia, Wang, "Time Granularities in
// Databases, Data Mining, and Temporal Reasoning" (paper reference [3]).
//
// A granularity partitions part of the timeline into indexed granules
// (e.g. days, weeks).  Granules may leave gaps (the "Weekdays" granularity
// has no granule on weekends; "Mondays" has one granule per week).  LBQID
// recurrence formulas (Definition 1) quantify over granules.

#ifndef HISTKANON_SRC_TGRAN_GRANULARITY_H_
#define HISTKANON_SRC_TGRAN_GRANULARITY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/geo/interval.h"
#include "src/tgran/calendar.h"

namespace histkanon {
namespace tgran {

/// \brief A time granularity: an indexed, non-overlapping, ordered family
/// of granules (intervals) on the timeline, possibly with gaps.
class Granularity {
 public:
  virtual ~Granularity() = default;

  /// Canonical lower-case name ("day", "weekdays", ...).
  virtual const std::string& name() const = 0;

  /// Index of the granule containing `t`, or nullopt if `t` falls in a gap.
  virtual std::optional<int64_t> GranuleOf(Instant t) const = 0;

  /// The closed interval spanned by granule `index`.
  virtual geo::TimeInterval GranuleInterval(int64_t index) const = 0;

  /// Approximate granule length in seconds (used for sizing heuristics).
  virtual int64_t ApproximateGranuleSeconds() const = 0;
};

using GranularityPtr = std::shared_ptr<const Granularity>;

/// \brief Granularity with granules of a fixed period and no gaps
/// (minute, hour, day, week).
class FixedGranularity : public Granularity {
 public:
  /// Granule i covers [offset + i*period, offset + (i+1)*period).
  FixedGranularity(std::string name, int64_t period_seconds,
                   int64_t offset_seconds = 0);

  const std::string& name() const override { return name_; }
  std::optional<int64_t> GranuleOf(Instant t) const override;
  geo::TimeInterval GranuleInterval(int64_t index) const override;
  int64_t ApproximateGranuleSeconds() const override { return period_; }

 private:
  std::string name_;
  int64_t period_;
  int64_t offset_;
};

/// \brief One granule per weekday (Mon-Fri), gaps on weekends; the
/// granularity used by the paper's running example "3.Weekdays * 2.Weeks".
class WeekdaysGranularity : public Granularity {
 public:
  WeekdaysGranularity();

  const std::string& name() const override { return name_; }
  std::optional<int64_t> GranuleOf(Instant t) const override;
  geo::TimeInterval GranuleInterval(int64_t index) const override;
  int64_t ApproximateGranuleSeconds() const override { return kSecondsPerDay; }

 private:
  std::string name_;
};

/// \brief One granule per occurrence of a specific weekday ("Mondays",
/// "Tuesdays", ...), supporting patterns like "same weekday for at least
/// 3 weeks" (Section 4).
class SpecificWeekdayGranularity : public Granularity {
 public:
  /// `day_of_week`: 0 = Monday ... 6 = Sunday.
  explicit SpecificWeekdayGranularity(int day_of_week);

  const std::string& name() const override { return name_; }
  std::optional<int64_t> GranuleOf(Instant t) const override;
  geo::TimeInterval GranuleInterval(int64_t index) const override;
  int64_t ApproximateGranuleSeconds() const override { return kSecondsPerDay; }

 private:
  std::string name_;
  int day_of_week_;
};

/// \brief Civil-calendar months.
class MonthsGranularity : public Granularity {
 public:
  MonthsGranularity();

  const std::string& name() const override { return name_; }
  std::optional<int64_t> GranuleOf(Instant t) const override;
  geo::TimeInterval GranuleInterval(int64_t index) const override;
  int64_t ApproximateGranuleSeconds() const override {
    return 30 * kSecondsPerDay;
  }

 private:
  std::string name_;
};

/// \brief Groups `group_size` consecutive granules of a base granularity
/// into one; e.g. GroupedGranularity(day, 2) gives the paper's "granule
/// composed of 2 contiguous days" (Section 4).
///
/// Grouping is by base-granule index: base granules [i*g, (i+1)*g) form
/// grouped granule i.
class GroupedGranularity : public Granularity {
 public:
  GroupedGranularity(std::string name, GranularityPtr base, int group_size);

  const std::string& name() const override { return name_; }
  std::optional<int64_t> GranuleOf(Instant t) const override;
  geo::TimeInterval GranuleInterval(int64_t index) const override;
  int64_t ApproximateGranuleSeconds() const override {
    return base_->ApproximateGranuleSeconds() * group_size_;
  }

 private:
  std::string name_;
  GranularityPtr base_;
  int group_size_;
};

/// \brief Name -> granularity lookup; the TS resolves recurrence formulas
/// ("3.weekdays * 2.week") against a registry.
class GranularityRegistry {
 public:
  /// Registry pre-populated with: minute, hour, day, week, month, weekdays,
  /// mondays..sundays, daypair (2 contiguous days).
  static GranularityRegistry WithDefaults();

  /// Registers `granularity` under its name.  Fails with AlreadyExists if
  /// the name is taken.
  common::Status Register(GranularityPtr granularity);

  /// Looks a granularity up by name (case-sensitive).
  common::Result<GranularityPtr> Find(const std::string& name) const;

  /// Names of all registered granularities, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, GranularityPtr> by_name_;
};

}  // namespace tgran
}  // namespace histkanon

#endif  // HISTKANON_SRC_TGRAN_GRANULARITY_H_
