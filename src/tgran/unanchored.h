// Unanchored time intervals: the `U-TimeInterval` of LBQID elements
// (Definition 1).  "[7am, 9am]" denotes the two-hour span in *every* day,
// i.e. an infinite family of anchored intervals, one per day.

#ifndef HISTKANON_SRC_TGRAN_UNANCHORED_H_
#define HISTKANON_SRC_TGRAN_UNANCHORED_H_

#include <string>

#include "src/common/result.h"
#include "src/geo/interval.h"
#include "src/tgran/calendar.h"

namespace histkanon {
namespace tgran {

/// \brief A daily-recurring interval given by seconds-of-day bounds.
///
/// If end < begin the interval wraps past midnight (e.g. [10pm, 2am]); the
/// anchored instance is then attributed to the day it starts in.
class UTimeInterval {
 public:
  UTimeInterval() = default;

  /// Constructs from seconds-of-day bounds; both must lie in [0, 86400).
  static common::Result<UTimeInterval> Create(int64_t begin_second_of_day,
                                              int64_t end_second_of_day);

  /// Convenience constructor from whole hours, e.g. FromHours(7, 9) is
  /// [7am, 9am].  Hours must lie in [0, 24); equal hours give a degenerate
  /// one-instant interval.
  static common::Result<UTimeInterval> FromHours(int begin_hour, int end_hour);

  int64_t begin_second_of_day() const { return begin_; }
  int64_t end_second_of_day() const { return end_; }
  bool wraps_midnight() const { return end_ < begin_; }

  /// True iff `t` falls inside some anchored instance of this interval.
  bool Contains(Instant t) const;

  /// The anchored instance starting on day `day_index`
  /// (closed; extends into day_index+1 when wrapping).
  geo::TimeInterval AnchoredOnDay(int64_t day_index) const;

  /// The anchored instance containing `t`; requires Contains(t).
  geo::TimeInterval AnchoredInstanceContaining(Instant t) const;

  /// Total length of one instance, in seconds.
  int64_t Length() const;

  /// "[07:00, 09:00]" style rendering.
  std::string ToString() const;

  friend bool operator==(const UTimeInterval& a, const UTimeInterval& b) {
    return a.begin_ == b.begin_ && a.end_ == b.end_;
  }

 private:
  UTimeInterval(int64_t begin, int64_t end) : begin_(begin), end_(end) {}

  int64_t begin_ = 0;
  int64_t end_ = 0;
};

}  // namespace tgran
}  // namespace histkanon

#endif  // HISTKANON_SRC_TGRAN_UNANCHORED_H_
