#include "src/tgran/calendar.h"

#include "src/common/str.h"

namespace histkanon {
namespace tgran {

namespace {

// Days between 1970-01-01 and the epoch date (2005-01-03).
int64_t EpochDaysSince1970() {
  static const int64_t days = DaysFromCivil(kEpochYear, kEpochMonth, kEpochDay);
  return days;
}

const char* const kDayNames[7] = {"Mon", "Tue", "Wed", "Thu",
                                  "Fri", "Sat", "Sun"};

}  // namespace

int64_t DaysFromCivil(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = FloorDiv(year, 400);
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = FloorDiv(z, 146097);
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

CivilDate CivilFromInstant(Instant t) {
  return CivilFromDays(DayIndex(t) + EpochDaysSince1970());
}

Instant InstantFromCivil(const CivilDate& date) {
  const int64_t days =
      DaysFromCivil(date.year, date.month, date.day) - EpochDaysSince1970();
  return days * kSecondsPerDay;
}

int64_t MonthIndex(Instant t) {
  const CivilDate d = CivilFromInstant(t);
  return static_cast<int64_t>(d.year - kEpochYear) * 12 + (d.month - 1);
}

Instant MonthStart(int64_t month_index) {
  const int year = kEpochYear + static_cast<int>(FloorDiv(month_index, 12));
  const int month = 1 + static_cast<int>(FloorMod(month_index, 12));
  return InstantFromCivil(CivilDate{year, month, 1});
}

std::string FormatInstant(Instant t) {
  const int64_t day = DayIndex(t);
  const int64_t sod = SecondOfDay(t);
  return common::Format("%s d%lld %02lld:%02lld:%02lld", kDayNames[DayOfWeek(t)],
                        static_cast<long long>(day),
                        static_cast<long long>(sod / 3600),
                        static_cast<long long>((sod % 3600) / 60),
                        static_cast<long long>(sod % 60));
}

}  // namespace tgran
}  // namespace histkanon
