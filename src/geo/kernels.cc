#include "src/geo/kernels.h"

#if defined(HISTKANON_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace histkanon {
namespace geo {
namespace kernels {

namespace {

// -- Scalar reference implementations ---------------------------------------
//
// Written as flat, branch-light loops so -O3 can autovectorize them; they
// are also the only implementations on non-x86 builds and on x86 CPUs
// without AVX2.  The AVX2 paths below must match these bit for bit.

bool AnyInRectScalar(const double* x, const double* y, size_t n,
                     const Rect& rect) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] >= rect.min_x && x[i] <= rect.max_x && y[i] >= rect.min_y &&
        y[i] <= rect.max_y) {
      return true;
    }
  }
  return false;
}

size_t FilterInBoxScalar(const int64_t* t, const double* x, const double* y,
                         size_t n, const STBox& box, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool inside = t[i] >= box.time.lo && t[i] <= box.time.hi &&
                        x[i] >= box.area.min_x && x[i] <= box.area.max_x &&
                        y[i] >= box.area.min_y && y[i] <= box.area.max_y;
    if (inside) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

void SquaredDistancesScalar(const int64_t* t, const double* x,
                            const double* y, size_t n, const STPoint& q,
                            double mps, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - q.p.x;
    const double dy = y[i] - q.p.y;
    const double dt = mps * static_cast<double>(t[i] - q.t);
    out[i] = dx * dx + dy * dy + dt * dt;
  }
}

MinResult NearestInWindowScalar(const int64_t* t, const double* x,
                                const double* y, size_t n, const STPoint& q,
                                double mps) {
  MinResult best;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - q.p.x;
    const double dy = y[i] - q.p.y;
    const double dt = mps * static_cast<double>(t[i] - q.t);
    const double d2 = dx * dx + dy * dy + dt * dt;
    // Strict improvement only: the first (lowest-index) minimum wins.
    if (best.index == MinResult::kNotFound || d2 < best.d2) {
      best.index = i;
      best.d2 = d2;
    }
  }
  return best;
}

#if defined(HISTKANON_SIMD_AVX2)

// A SIMD-enabled binary must still run on pre-AVX2 hardware: dispatch is
// decided once, at first use, from the CPU itself.
bool UseAvx2() {
  static const bool use = __builtin_cpu_supports("avx2");
  return use;
}

bool AnyInRectAvx2(const double* x, const double* y, size_t n,
                   const Rect& rect) {
  const __m256d min_x = _mm256_set1_pd(rect.min_x);
  const __m256d max_x = _mm256_set1_pd(rect.max_x);
  const __m256d min_y = _mm256_set1_pd(rect.min_y);
  const __m256d max_y = _mm256_set1_pd(rect.max_y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d in =
        _mm256_and_pd(_mm256_and_pd(_mm256_cmp_pd(vx, min_x, _CMP_GE_OQ),
                                    _mm256_cmp_pd(vx, max_x, _CMP_LE_OQ)),
                      _mm256_and_pd(_mm256_cmp_pd(vy, min_y, _CMP_GE_OQ),
                                    _mm256_cmp_pd(vy, max_y, _CMP_LE_OQ)));
    if (_mm256_movemask_pd(in) != 0) return true;
  }
  return AnyInRectScalar(x + i, y + i, n - i, rect);
}

size_t FilterInBoxAvx2(const int64_t* t, const double* x, const double* y,
                       size_t n, const STBox& box, uint32_t* out) {
  const __m256d min_x = _mm256_set1_pd(box.area.min_x);
  const __m256d max_x = _mm256_set1_pd(box.area.max_x);
  const __m256d min_y = _mm256_set1_pd(box.area.min_y);
  const __m256d max_y = _mm256_set1_pd(box.area.max_y);
  // Closed int64 bounds as strict comparisons: lo <= t  <=>  !(lo > t).
  const __m256i lo = _mm256_set1_epi64x(box.time.lo);
  const __m256i hi = _mm256_set1_epi64x(box.time.hi);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256i vt =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i));
    const __m256d in_rect =
        _mm256_and_pd(_mm256_and_pd(_mm256_cmp_pd(vx, min_x, _CMP_GE_OQ),
                                    _mm256_cmp_pd(vx, max_x, _CMP_LE_OQ)),
                      _mm256_and_pd(_mm256_cmp_pd(vy, min_y, _CMP_GE_OQ),
                                    _mm256_cmp_pd(vy, max_y, _CMP_LE_OQ)));
    const __m256i out_time = _mm256_or_si256(_mm256_cmpgt_epi64(lo, vt),
                                             _mm256_cmpgt_epi64(vt, hi));
    const __m256d in = _mm256_andnot_pd(_mm256_castsi256_pd(out_time),
                                        in_rect);
    int mask = _mm256_movemask_pd(in);
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = static_cast<uint32_t>(i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  // The scalar tail emits indices relative to its own start; rebase them.
  const size_t tail = FilterInBoxScalar(t + i, x + i, y + i, n - i, box,
                                        out + count);
  for (size_t m = 0; m < tail; ++m) {
    out[count + m] += static_cast<uint32_t>(i);
  }
  return count + tail;
}

// Four squared distances with the exact scalar arithmetic: the dt lanes
// are converted element-wise (AVX2 has no int64 -> double conversion, and
// the bit-twiddling shortcut is wrong for |t| >= 2^51), and the sum uses
// mul/add only — no FMA — to stay bit-identical to the scalar loop.
inline __m256d SquaredDistance4(const int64_t* t, const double* x,
                                const double* y, size_t i, const STPoint& q,
                                const __m256d qx, const __m256d qy,
                                const __m256d vmps) {
  alignas(32) double dt_buf[4];
  for (int j = 0; j < 4; ++j) {
    dt_buf[j] = static_cast<double>(t[i + static_cast<size_t>(j)] - q.t);
  }
  const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), qx);
  const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), qy);
  const __m256d dt = _mm256_mul_pd(vmps, _mm256_load_pd(dt_buf));
  return _mm256_add_pd(
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
      _mm256_mul_pd(dt, dt));
}

void SquaredDistancesAvx2(const int64_t* t, const double* x, const double* y,
                          size_t n, const STPoint& q, double mps,
                          double* out) {
  const __m256d qx = _mm256_set1_pd(q.p.x);
  const __m256d qy = _mm256_set1_pd(q.p.y);
  const __m256d vmps = _mm256_set1_pd(mps);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, SquaredDistance4(t, x, y, i, q, qx, qy, vmps));
  }
  SquaredDistancesScalar(t + i, x + i, y + i, n - i, q, mps, out + i);
}

MinResult NearestInWindowAvx2(const int64_t* t, const double* x,
                              const double* y, size_t n, const STPoint& q,
                              double mps) {
  MinResult best;
  const __m256d qx = _mm256_set1_pd(q.p.x);
  const __m256d qy = _mm256_set1_pd(q.p.y);
  const __m256d vmps = _mm256_set1_pd(mps);
  size_t i = 0;
  alignas(32) double d2_buf[4];
  for (; i + 4 <= n; i += 4) {
    const __m256d d2 = SquaredDistance4(t, x, y, i, q, qx, qy, vmps);
    // Block test first; only a strictly-improving block is rescanned, in
    // lane order, so the winner is exactly the ascending scan's.
    __m128d lo = _mm256_castpd256_pd128(d2);
    lo = _mm_min_pd(lo, _mm256_extractf128_pd(d2, 1));
    const double block_min =
        _mm_cvtsd_f64(_mm_min_sd(lo, _mm_unpackhi_pd(lo, lo)));
    if (best.index != MinResult::kNotFound && !(block_min < best.d2)) {
      continue;
    }
    _mm256_store_pd(d2_buf, d2);
    for (int j = 0; j < 4; ++j) {
      if (best.index == MinResult::kNotFound || d2_buf[j] < best.d2) {
        best.index = i + static_cast<size_t>(j);
        best.d2 = d2_buf[j];
      }
    }
  }
  const MinResult tail = NearestInWindowScalar(t + i, x + i, y + i, n - i, q,
                                               mps);
  if (tail.index != MinResult::kNotFound &&
      (best.index == MinResult::kNotFound || tail.d2 < best.d2)) {
    best.index = i + tail.index;
    best.d2 = tail.d2;
  }
  return best;
}

#endif  // HISTKANON_SIMD_AVX2

// Counts t[i] < v (or <= v when kOrEqual) over a short span with a flat
// loop of independent loads.
template <bool kOrEqual>
size_t CountBelowScalar(const int64_t* t, size_t n, int64_t v) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += kOrEqual ? (t[i] <= v ? 1 : 0) : (t[i] < v ? 1 : 0);
  }
  return count;
}

#if defined(HISTKANON_SIMD_AVX2)

template <bool kOrEqual>
size_t CountBelowAvx2(const int64_t* t, size_t n, int64_t v) {
  // t[i] <  v  <=>   v > t[i]          (cmpgt(v, t))
  // t[i] <= v  <=>  !(t[i] > v)        (andnot(cmpgt(t, v)))
  const __m256i vv = _mm256_set1_epi64x(v);
  const __m256i ones = _mm256_set1_epi64x(-1);
  __m256i acc = _mm256_setzero_si256();  // accumulates -1 per match
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vt =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i));
    const __m256i match = kOrEqual
                              ? _mm256_andnot_si256(
                                    _mm256_cmpgt_epi64(vt, vv), ones)
                              : _mm256_cmpgt_epi64(vv, vt);
    acc = _mm256_add_epi64(acc, match);
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  const size_t count =
      static_cast<size_t>(-(lanes[0] + lanes[1] + lanes[2] + lanes[3]));
  return count + CountBelowScalar<kOrEqual>(t + i, n - i, v);
}

#endif  // HISTKANON_SIMD_AVX2

template <bool kOrEqual>
size_t CountBelow(const int64_t* t, size_t n, int64_t v) {
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) return CountBelowAvx2<kOrEqual>(t, n, v);
#endif
  return CountBelowScalar<kOrEqual>(t, n, v);
}

// Branchless bisect prefix: narrows [base, base + n) to at most
// kLinearSpan entries while preserving the bound's index, then hands the
// remainder to the flat count.  The comparisons compile to conditional
// moves; the count is exact, so scalar and AVX2 agree bit for bit.
constexpr size_t kLinearSpan = 128;

template <bool kOrEqual>
size_t BoundIndex(const int64_t* t, size_t n, int64_t v) {
  const int64_t* base = t;
  while (n > kLinearSpan) {
    const size_t half = n / 2;
    const bool descend_right =
        kOrEqual ? (base[half - 1] <= v) : (base[half - 1] < v);
    base += descend_right ? half : 0;
    n -= half;
  }
  return static_cast<size_t>(base - t) + CountBelow<kOrEqual>(base, n, v);
}

}  // namespace

const char* BackendName() {
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) return "avx2";
#endif
  return "scalar";
}

bool AnyInRect(const double* x, const double* y, size_t n, const Rect& rect) {
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) return AnyInRectAvx2(x, y, n, rect);
#endif
  return AnyInRectScalar(x, y, n, rect);
}

size_t FilterInBox(const int64_t* t, const double* x, const double* y,
                   size_t n, const STBox& box, uint32_t* out) {
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) return FilterInBoxAvx2(t, x, y, n, box, out);
#endif
  return FilterInBoxScalar(t, x, y, n, box, out);
}

void SquaredDistances(const int64_t* t, const double* x, const double* y,
                      size_t n, const STPoint& q, double meters_per_second,
                      double* out) {
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) {
    SquaredDistancesAvx2(t, x, y, n, q, meters_per_second, out);
    return;
  }
#endif
  SquaredDistancesScalar(t, x, y, n, q, meters_per_second, out);
}

MinResult NearestInWindow(const int64_t* t, const double* x, const double* y,
                          size_t n, const STPoint& q,
                          double meters_per_second) {
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) {
    return NearestInWindowAvx2(t, x, y, n, q, meters_per_second);
  }
#endif
  return NearestInWindowScalar(t, x, y, n, q, meters_per_second);
}

size_t LowerBoundIndex(const int64_t* t, size_t n, int64_t v) {
  return BoundIndex<false>(t, n, v);
}

size_t UpperBoundIndex(const int64_t* t, size_t n, int64_t v) {
  return BoundIndex<true>(t, n, v);
}

namespace {

void TimeWindowIndicesScalar(const int64_t* t, size_t n, int64_t lo,
                             int64_t hi, size_t* begin, size_t* end) {
  size_t below = 0;
  size_t through = 0;
  for (size_t i = 0; i < n; ++i) {
    below += t[i] < lo ? 1 : 0;
    through += t[i] <= hi ? 1 : 0;
  }
  *begin = below;
  *end = through;
}

#if defined(HISTKANON_SIMD_AVX2)

void TimeWindowIndicesAvx2(const int64_t* t, size_t n, int64_t lo, int64_t hi,
                           size_t* begin, size_t* end) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  const __m256i ones = _mm256_set1_epi64x(-1);
  __m256i acc_below = _mm256_setzero_si256();    // -1 per t[i] < lo
  __m256i acc_through = _mm256_setzero_si256();  // -1 per t[i] <= hi
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vt =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i));
    acc_below = _mm256_add_epi64(acc_below, _mm256_cmpgt_epi64(vlo, vt));
    acc_through = _mm256_add_epi64(
        acc_through, _mm256_andnot_si256(_mm256_cmpgt_epi64(vt, vhi), ones));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_below);
  size_t below = static_cast<size_t>(
      -(lanes[0] + lanes[1] + lanes[2] + lanes[3]));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_through);
  size_t through = static_cast<size_t>(
      -(lanes[0] + lanes[1] + lanes[2] + lanes[3]));
  for (; i < n; ++i) {
    below += t[i] < lo ? 1 : 0;
    through += t[i] <= hi ? 1 : 0;
  }
  *begin = below;
  *end = through;
}

#endif  // HISTKANON_SIMD_AVX2

}  // namespace

void TimeWindowIndices(const int64_t* t, size_t n, int64_t lo, int64_t hi,
                       size_t* begin, size_t* end) {
  if (n > 2 * kLinearSpan) {
    // Big column: two bisect-prefixed counts stay O(log n).
    *begin = BoundIndex<false>(t, n, lo);
    *end = BoundIndex<true>(t, n, hi);
    return;
  }
#if defined(HISTKANON_SIMD_AVX2)
  if (UseAvx2()) {
    TimeWindowIndicesAvx2(t, n, lo, hi, begin, end);
    return;
  }
#endif
  TimeWindowIndicesScalar(t, n, lo, hi, begin, end);
}

}  // namespace kernels
}  // namespace geo
}  // namespace histkanon
