// Flat geometry kernels over structure-of-arrays sample columns.
//
// The columnar hot tier (DESIGN.md §17) stores each user's PHL as three
// parallel columns t[i] / x[i] / y[i] sorted by time, and the grid index
// stores each spatial pillar the same way.  Every hot-path predicate —
// STBox containment, weighted nearest-sample scans, LT-consistency
// interval probes — reduces to one of the loops below over a contiguous
// column range.
//
// Two implementations sit behind one entry point:
//   * scalar: plain flat loops, written to be autovectorizable;
//   * AVX2:   explicit intrinsics, compiled only when the build enables
//     -DHISTKANON_SIMD=ON (CMake) on an x86-64 toolchain, and selected at
//     RUNTIME only when the CPU reports AVX2 — a SIMD-enabled binary
//     still runs (scalar) on older hardware.
//
// Contract: both implementations produce BIT-IDENTICAL results.  The
// distance arithmetic is exactly geo::STMetric::SquaredDistance —
// dx*dx + dy*dy + dt*dt with dt = meters_per_second * double(t_i - q.t),
// summed in that association, with no FMA contraction (the build compiles
// with -ffp-contract=off so the scalar loop cannot silently fuse either).
// Ties on equal squared distance resolve to the LOWEST index, which for a
// time-sorted column is the earliest sample.  The differential suite
// (tests/columnar_equivalence_test.cc) pins this on every CI build leg.

#ifndef HISTKANON_SRC_GEO_KERNELS_H_
#define HISTKANON_SRC_GEO_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/geo/rect.h"
#include "src/geo/stbox.h"

namespace histkanon {
namespace geo {
namespace kernels {

/// Which implementation serves the calls below: "avx2" when the build
/// compiled the intrinsics AND the CPU supports them, else "scalar".
const char* BackendName();

/// True iff any of the n points (x[i], y[i]) lies inside `rect` (closed
/// bounds) — the membership test of LT-consistency over a time-bisected
/// column range.
bool AnyInRect(const double* x, const double* y, size_t n, const Rect& rect);

/// Appends to `out` the indices i in [0, n) whose sample
/// (x[i], y[i], t[i]) lies inside `box` — containment filtering for
/// range queries.  Returns the number of indices written.  `out` must
/// have room for n entries.
size_t FilterInBox(const int64_t* t, const double* x, const double* y,
                   size_t n, const STBox& box, uint32_t* out);

/// Squared weighted distance of every sample to `q` (see the arithmetic
/// contract above).  `out` must have room for n doubles.
void SquaredDistances(const int64_t* t, const double* x, const double* y,
                      size_t n, const STPoint& q, double meters_per_second,
                      double* out);

/// Result of a nearest-in-window scan: the winning index (kNotFound when
/// n == 0) and its squared distance.
struct MinResult {
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t index = kNotFound;
  double d2 = 0.0;
};

/// Index of the sample minimizing the squared weighted distance to `q`,
/// ties resolving to the lowest index (= earliest sample of a time-sorted
/// column).  Exactly equivalent to an ascending scalar scan that updates
/// on strict improvement only.
MinResult NearestInWindow(const int64_t* t, const double* x, const double* y,
                          size_t n, const STPoint& q,
                          double meters_per_second);

/// Number of entries of the ASCENDING-sorted column `t` strictly below
/// `v` — i.e. std::lower_bound as an index.  Implemented as a branchless
/// bisect down to a short span, then a flat vectorizable count: on the
/// short runs pillars hold, a linear pass of independent loads beats a
/// chain of data-dependent bisect probes, and for big columns the bisect
/// prefix keeps it O(log n).  Integer-exact, so trivially bit-identical
/// across backends.
size_t LowerBoundIndex(const int64_t* t, size_t n, int64_t v);

/// Same, counting entries <= v (std::upper_bound as an index).
size_t UpperBoundIndex(const int64_t* t, size_t n, int64_t v);

/// Both bounds of the closed window [lo, hi] over the ASCENDING-sorted
/// column `t` in one pass: *begin = LowerBoundIndex(t, n, lo) and
/// *end = UpperBoundIndex(t, n, hi).  Short columns stream once with two
/// accumulators instead of paying two bisect chains — the range query's
/// per-pillar fast path.
void TimeWindowIndices(const int64_t* t, size_t n, int64_t lo, int64_t hi,
                       size_t* begin, size_t* end);

}  // namespace kernels
}  // namespace geo
}  // namespace histkanon

#endif  // HISTKANON_SRC_GEO_KERNELS_H_
