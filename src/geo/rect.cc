#include "src/geo/rect.h"

#include <limits>

#include "src/common/str.h"

namespace histkanon {
namespace geo {

Rect Rect::FromCenter(const Point& c, double width, double height) {
  return Rect{c.x - width / 2.0, c.y - height / 2.0, c.x + width / 2.0,
              c.y + height / 2.0};
}

Rect Rect::Empty() {
  const double inf = std::numeric_limits<double>::infinity();
  return Rect{inf, inf, -inf, -inf};
}

void Rect::ExpandToInclude(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::ExpandToInclude(const Rect& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

Rect Rect::Buffered(double margin) const {
  if (IsEmpty()) return *this;
  return Rect{min_x - margin, min_y - margin, max_x + margin, max_y + margin};
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.ExpandToInclude(b);
  return out;
}

Rect Rect::Intersection(const Rect& a, const Rect& b) {
  Rect out{std::max(a.min_x, b.min_x), std::max(a.min_y, b.min_y),
           std::min(a.max_x, b.max_x), std::min(a.max_y, b.max_y)};
  return out;
}

Rect Rect::ShrunkToFit(const Point& anchor, double max_width,
                       double max_height) const {
  if (IsEmpty()) return *this;
  Rect out = *this;
  if (out.Width() > max_width) {
    // Keep the anchor's relative position within the shrunk extent so the
    // anchor never leaves the rectangle.
    const double frac =
        out.Width() > 0.0 ? (anchor.x - out.min_x) / out.Width() : 0.5;
    out.min_x = anchor.x - frac * max_width;
    out.max_x = out.min_x + max_width;
  }
  if (out.Height() > max_height) {
    const double frac =
        out.Height() > 0.0 ? (anchor.y - out.min_y) / out.Height() : 0.5;
    out.min_y = anchor.y - frac * max_height;
    out.max_y = out.min_y + max_height;
  }
  return out;
}

std::string Rect::ToString() const {
  return common::Format("[%.1f,%.1f]x[%.1f,%.1f]", min_x, max_x, min_y,
                        max_y);
}

}  // namespace geo
}  // namespace histkanon
