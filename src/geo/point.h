// Planar points and the simulation timeline.
//
// All positions are in meters in a planar city coordinate frame; all times
// are `Instant` = seconds since the simulation epoch.  The epoch is defined
// (see src/tgran/calendar.h) to fall on a Monday 00:00 so that calendar
// granularities (weekdays, weeks, ...) have simple anchors.

#ifndef HISTKANON_SRC_GEO_POINT_H_
#define HISTKANON_SRC_GEO_POINT_H_

#include <cmath>
#include <cstdint>

namespace histkanon {
namespace geo {

/// Seconds since the simulation epoch.
using Instant = int64_t;

/// \brief A point in the planar city frame (meters).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points (meters).
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt for comparisons).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// \brief A position sample: where an object was at a given instant.
///
/// This is the paper's PHL element <x, y, t> (Definition 6).
struct STPoint {
  Point p;
  Instant t = 0;

  friend bool operator==(const STPoint& a, const STPoint& b) {
    return a.p == b.p && a.t == b.t;
  }
};

/// \brief Weighted spatio-temporal metric used by nearest-neighbour queries
/// (Algorithm 1 selects "closest" 3D points; space and time need a common
/// scale).
///
/// Distance = sqrt(dx^2 + dy^2 + (meters_per_second * dt)^2): one second of
/// temporal separation counts as `meters_per_second` meters.  The default,
/// 1.4 m/s, is a typical pedestrian speed, making the metric roughly
/// reachability-scaled.
struct STMetric {
  double meters_per_second = 1.4;

  /// Squared weighted distance between two spatio-temporal points.
  double SquaredDistance(const STPoint& a, const STPoint& b) const {
    const double dx = a.p.x - b.p.x;
    const double dy = a.p.y - b.p.y;
    const double dt = meters_per_second * static_cast<double>(a.t - b.t);
    return dx * dx + dy * dy + dt * dt;
  }

  /// Weighted distance between two spatio-temporal points.
  double Distance(const STPoint& a, const STPoint& b) const {
    return std::sqrt(SquaredDistance(a, b));
  }
};

}  // namespace geo
}  // namespace histkanon

#endif  // HISTKANON_SRC_GEO_POINT_H_
