#include "src/geo/interval.h"

#include <limits>

#include "src/common/str.h"

namespace histkanon {
namespace geo {

TimeInterval TimeInterval::Empty() {
  return TimeInterval{std::numeric_limits<Instant>::max(),
                      std::numeric_limits<Instant>::min()};
}

TimeInterval TimeInterval::ShrunkToFit(Instant anchor,
                                       int64_t max_length) const {
  if (IsEmpty() || Length() <= max_length) return *this;
  TimeInterval out = *this;
  const double frac = Length() > 0
                          ? static_cast<double>(anchor - lo) /
                                static_cast<double>(Length())
                          : 0.5;
  out.lo = anchor - static_cast<Instant>(frac * static_cast<double>(max_length));
  out.hi = out.lo + max_length;
  return out;
}

std::string TimeInterval::ToString() const {
  return "[" + common::FormatDuration(lo) + ", " + common::FormatDuration(hi) +
         "]";
}

}  // namespace geo
}  // namespace histkanon
