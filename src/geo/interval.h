// Closed time intervals on the simulation timeline: the `TimeInterval`
// component of a request's spatio-temporal context (paper Section 3).

#ifndef HISTKANON_SRC_GEO_INTERVAL_H_
#define HISTKANON_SRC_GEO_INTERVAL_H_

#include <algorithm>
#include <string>

#include "src/geo/point.h"

namespace histkanon {
namespace geo {

/// \brief A closed interval [lo, hi] of instants.  lo > hi means empty.
struct TimeInterval {
  Instant lo = 0;
  Instant hi = 0;

  /// Interval covering exactly one instant.
  static TimeInterval FromInstant(Instant t) { return TimeInterval{t, t}; }

  /// Interval of total length `length` centered at `t` (rounded down).
  static TimeInterval FromCenter(Instant t, int64_t length) {
    return TimeInterval{t - length / 2, t - length / 2 + length};
  }

  /// An empty interval (identity for ExpandToInclude).
  static TimeInterval Empty();

  bool IsEmpty() const { return lo > hi; }

  bool Contains(Instant t) const { return t >= lo && t <= hi; }

  bool Contains(const TimeInterval& other) const {
    if (other.IsEmpty()) return true;
    return other.lo >= lo && other.hi <= hi;
  }

  bool Intersects(const TimeInterval& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return lo <= other.hi && other.lo <= hi;
  }

  /// Length in seconds (0 for degenerate and empty intervals).
  int64_t Length() const { return IsEmpty() ? 0 : hi - lo; }

  Instant Center() const { return lo + (hi - lo) / 2; }

  void ExpandToInclude(Instant t) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }

  void ExpandToInclude(const TimeInterval& other) {
    if (other.IsEmpty()) return;
    if (IsEmpty()) {
      *this = other;
      return;
    }
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
  }

  static TimeInterval Union(const TimeInterval& a, const TimeInterval& b) {
    TimeInterval out = a;
    out.ExpandToInclude(b);
    return out;
  }

  static TimeInterval Intersection(const TimeInterval& a,
                                   const TimeInterval& b) {
    return TimeInterval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  }

  /// This interval shrunk about `anchor` to at most `max_length` seconds,
  /// still containing `anchor` (Algorithm 1 lines 11-12, time dimension).
  TimeInterval ShrunkToFit(Instant anchor, int64_t max_length) const;

  std::string ToString() const;

  friend bool operator==(const TimeInterval& a, const TimeInterval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

}  // namespace geo
}  // namespace histkanon

#endif  // HISTKANON_SRC_GEO_INTERVAL_H_
