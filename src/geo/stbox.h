// STBox: a spatio-temporal context <Area, TimeInterval> as forwarded to a
// service provider (paper Section 3) and as computed by the generalization
// algorithm (Algorithm 1's "smallest 3D space (2D area + time)").

#ifndef HISTKANON_SRC_GEO_STBOX_H_
#define HISTKANON_SRC_GEO_STBOX_H_

#include <string>

#include "src/geo/interval.h"
#include "src/geo/point.h"
#include "src/geo/rect.h"

namespace histkanon {
namespace geo {

/// \brief An axis-aligned box in (x, y, t) space.
struct STBox {
  Rect area;
  TimeInterval time;

  /// Box covering exactly one spatio-temporal point.
  static STBox FromPoint(const STPoint& p) {
    return STBox{Rect::FromPoint(p.p), TimeInterval::FromInstant(p.t)};
  }

  /// An empty box (identity for ExpandToInclude).
  static STBox Empty() { return STBox{Rect::Empty(), TimeInterval::Empty()}; }

  bool IsEmpty() const { return area.IsEmpty() || time.IsEmpty(); }

  bool Contains(const STPoint& p) const {
    return area.Contains(p.p) && time.Contains(p.t);
  }

  bool Contains(const STBox& other) const {
    return area.Contains(other.area) && time.Contains(other.time);
  }

  bool Intersects(const STBox& other) const {
    return area.Intersects(other.area) && time.Intersects(other.time);
  }

  void ExpandToInclude(const STPoint& p) {
    if (IsEmpty()) {
      *this = FromPoint(p);
      return;
    }
    area.ExpandToInclude(p.p);
    time.ExpandToInclude(p.t);
  }

  void ExpandToInclude(const STBox& other) {
    if (other.IsEmpty()) return;
    area.ExpandToInclude(other.area);
    time.ExpandToInclude(other.time);
  }

  static STBox Union(const STBox& a, const STBox& b) {
    STBox out = a;
    out.ExpandToInclude(b);
    return out;
  }

  /// Spatial area (m^2) times temporal length (s): the "volume" a service
  /// provider must consider, used as the QoS-degradation metric.
  double Volume() const {
    return area.Area() * static_cast<double>(time.Length());
  }

  std::string ToString() const {
    return area.ToString() + " @ " + time.ToString();
  }

  friend bool operator==(const STBox& a, const STBox& b) {
    return a.area == b.area && a.time == b.time;
  }
};

}  // namespace geo
}  // namespace histkanon

#endif  // HISTKANON_SRC_GEO_STBOX_H_
