// Axis-aligned rectangles: the `Area` component of a request's
// spatio-temporal context (paper Section 3) and of LBQID elements
// (Definition 1, "possibly by a pair of intervals [x1,x2][y1,y2]").

#ifndef HISTKANON_SRC_GEO_RECT_H_
#define HISTKANON_SRC_GEO_RECT_H_

#include <algorithm>
#include <string>

#include "src/geo/point.h"

namespace histkanon {
namespace geo {

/// \brief A closed axis-aligned rectangle [min_x,max_x] x [min_y,max_y].
///
/// A degenerate rectangle (a single point) is valid; an "inverted"
/// rectangle (min > max) is empty.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  /// Rectangle centered at `c` with the given total width and height.
  static Rect FromCenter(const Point& c, double width, double height);

  /// An empty rectangle (contains nothing; identity for ExpandToInclude).
  static Rect Empty();

  /// True iff min > max on some axis.
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// True iff `other` lies entirely inside this rectangle.
  bool Contains(const Rect& other) const {
    if (other.IsEmpty()) return true;
    return other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  /// True iff the two rectangles share at least one point.
  bool Intersects(const Rect& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return min_x <= other.max_x && other.min_x <= max_x &&
           min_y <= other.max_y && other.min_y <= max_y;
  }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  /// Area in square meters (0 for degenerate and empty rectangles).
  double Area() const { return Width() * Height(); }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Grows (in place) to cover `p`.
  void ExpandToInclude(const Point& p);
  /// Grows (in place) to cover `other`.
  void ExpandToInclude(const Rect& other);

  /// This rectangle grown by `margin` on every side.
  Rect Buffered(double margin) const;

  /// Smallest rectangle covering both inputs.
  static Rect Union(const Rect& a, const Rect& b);
  /// Largest rectangle covered by both inputs (empty if disjoint).
  static Rect Intersection(const Rect& a, const Rect& b);

  /// This rectangle shrunk about `anchor` so that Width() <= max_width and
  /// Height() <= max_height, while still containing `anchor`.  Used by
  /// Algorithm 1 lines 11-12 ("Area ... uniformly reduced to satisfy the
  /// tolerance constraints").
  Rect ShrunkToFit(const Point& anchor, double max_width,
                   double max_height) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

}  // namespace geo
}  // namespace histkanon

#endif  // HISTKANON_SRC_GEO_RECT_H_
