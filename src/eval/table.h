// Aligned plain-text tables for the experiment harnesses (EXPERIMENTS.md
// records their output).

#ifndef HISTKANON_SRC_EVAL_TABLE_H_
#define HISTKANON_SRC_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace histkanon {
namespace eval {

/// \brief Column-aligned table writer.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to content width.
  void Print(std::ostream& os) const;

  /// Renders as RFC-4180-style CSV (header row first; cells containing
  /// commas, quotes, or newlines are quoted) — the machine-readable twin
  /// of Print() used by the bench binaries.
  void ToCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eval
}  // namespace histkanon

#endif  // HISTKANON_SRC_EVAL_TABLE_H_
