// Evaluation metrics shared by the experiment harnesses: adversary
// identification precision/recall and trace-level HkA survival.

#ifndef HISTKANON_SRC_EVAL_METRICS_H_
#define HISTKANON_SRC_EVAL_METRICS_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/anon/pseudonym.h"
#include "src/ts/adversary.h"

namespace histkanon {
namespace eval {

/// \brief Outcome of scoring adversary identifications against ground
/// truth.
struct IdentificationScore {
  size_t claims = 0;           ///< Identifications the adversary committed to.
  size_t correct = 0;          ///< Claims naming the true user of the trace.
  size_t target_population = 0;  ///< Users the adversary could have exposed.

  double Precision() const {
    return claims == 0 ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(claims);
  }
  double Recall() const {
    return target_population == 0
               ? 0.0
               : static_cast<double>(correct) /
                     static_cast<double>(target_population);
  }
};

/// Ground-truth oracle: the true owner of a pseudonym (nullopt: unknown).
using PseudonymResolver =
    std::function<std::optional<mod::UserId>(const mod::Pseudonym&)>;

/// Scores `identifications`: a claim is correct when every pseudonym in
/// the linked trace belongs to the claimed user; `correct` counts each
/// exposed user once.  `target_population` is the number of users the
/// adversary is hunting (e.g. the commuters).
IdentificationScore ScoreIdentifications(
    const std::vector<ts::Identification>& identifications,
    const PseudonymResolver& truth, size_t target_population);

/// Convenience overload against the TS pseudonym manager.
IdentificationScore ScoreIdentifications(
    const std::vector<ts::Identification>& identifications,
    const anon::PseudonymManager& truth, size_t target_population);

/// Convenience overload against a fixed pseudonym->user map (the baseline
/// servers expose these).
IdentificationScore ScoreIdentifications(
    const std::vector<ts::Identification>& identifications,
    const std::map<mod::Pseudonym, mod::UserId>& truth,
    size_t target_population);

}  // namespace eval
}  // namespace histkanon

#endif  // HISTKANON_SRC_EVAL_METRICS_H_
