#include "src/eval/metrics.h"

#include <set>

namespace histkanon {
namespace eval {

IdentificationScore ScoreIdentifications(
    const std::vector<ts::Identification>& identifications,
    const PseudonymResolver& truth, size_t target_population) {
  IdentificationScore score;
  score.target_population = target_population;
  std::set<mod::UserId> correctly_exposed;
  for (const ts::Identification& identification : identifications) {
    ++score.claims;
    bool all_match = !identification.pseudonyms.empty();
    for (const mod::Pseudonym& pseudonym : identification.pseudonyms) {
      const std::optional<mod::UserId> owner = truth(pseudonym);
      if (!owner.has_value() || *owner != identification.claimed_user) {
        all_match = false;
        break;
      }
    }
    if (all_match) {
      // Count each exposed user once even if several traces hit them.
      if (correctly_exposed.insert(identification.claimed_user).second) {
        ++score.correct;
      }
    }
  }
  return score;
}

IdentificationScore ScoreIdentifications(
    const std::vector<ts::Identification>& identifications,
    const anon::PseudonymManager& truth, size_t target_population) {
  return ScoreIdentifications(
      identifications,
      [&truth](const mod::Pseudonym& pseudonym) {
        return truth.Resolve(pseudonym);
      },
      target_population);
}

IdentificationScore ScoreIdentifications(
    const std::vector<ts::Identification>& identifications,
    const std::map<mod::Pseudonym, mod::UserId>& truth,
    size_t target_population) {
  return ScoreIdentifications(
      identifications,
      [&truth](const mod::Pseudonym& pseudonym)
          -> std::optional<mod::UserId> {
        const auto it = truth.find(pseudonym);
        if (it == truth.end()) return std::nullopt;
        return it->second;
      },
      target_population);
}

}  // namespace eval
}  // namespace histkanon
