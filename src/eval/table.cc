#include "src/eval/table.h"

#include <algorithm>

namespace histkanon {
namespace eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 < headers_.size() ? "  " : "");
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (const size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::ToCsv(std::ostream& os) const {
  const auto print_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char c : cell) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ',';
      print_cell(c < cells.size() ? cells[c] : std::string());
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace eval
}  // namespace histkanon
