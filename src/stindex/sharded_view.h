// Fan-out SpatioTemporalIndex over per-shard indexes.
//
// The concurrent Trusted Server gives every shard its own GridIndex
// holding only its users' samples; cross-shard k-anonymity lookups
// (Algorithm 1 line 5's k-nearest distinct users) go through this view,
// which queries every slice and re-merges so the result is identical to
// a single index over all samples.
//
// Merge correctness for NearestPerUser: each user's samples live in
// exactly one slice, so the per-slice per-user minima ARE the global
// per-user minima; the view re-ranks the union by squared distance with
// the same (distance, user) tie-break the concrete indexes use, making
// the selected k and their order bit-identical to the unsharded answer.

#ifndef HISTKANON_SRC_STINDEX_SHARDED_VIEW_H_
#define HISTKANON_SRC_STINDEX_SHARDED_VIEW_H_

#include <string>
#include <vector>

#include "src/stindex/index.h"

namespace histkanon {
namespace stindex {

/// \brief Read-only merge of disjoint per-slice indexes.
class ShardedIndexView : public SpatioTemporalIndex {
 public:
  ShardedIndexView() = default;

  /// Adds the next slice.  Not thread-safe; complete setup before any
  /// concurrent reads.
  void AddSlice(const SpatioTemporalIndex* slice) {
    slices_.push_back(slice);
  }

  size_t slice_count() const { return slices_.size(); }

  const std::string& name() const override { return name_; }

  /// The view is read-only: samples are inserted into the owning shard's
  /// index, never through the view.
  void Insert(mod::UserId user, const geo::STPoint& sample) override;

  size_t size() const override;
  /// Sum of the slice epochs: any slice ingest changes the sum, and the
  /// serve phase of an epoch is write-free on every shard, so a stable
  /// sum brackets a window in which cached cross-shard answers stay
  /// valid (DESIGN.md §13).
  uint64_t epoch() const override;
  std::vector<Entry> RangeQuery(const geo::STBox& box) const override;
  std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const override;

 private:
  std::vector<const SpatioTemporalIndex*> slices_;
  std::string name_ = "sharded";
};

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_SHARDED_VIEW_H_
