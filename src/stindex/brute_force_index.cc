#include "src/stindex/brute_force_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace histkanon {
namespace stindex {

void BruteForceIndex::Insert(mod::UserId user, const geo::STPoint& sample) {
  entries_.push_back(Entry{user, sample});
}

std::vector<Entry> BruteForceIndex::RangeQuery(const geo::STBox& box) const {
  std::vector<Entry> hits;
  for (const Entry& entry : entries_) {
    if (box.Contains(entry.sample)) hits.push_back(entry);
  }
  return hits;
}

std::vector<UserNeighbor> BruteForceIndex::NearestPerUser(
    const geo::STPoint& query, size_t k, mod::UserId exclude,
    const geo::STMetric& metric) const {
  // Nearest sample per user.
  std::unordered_map<mod::UserId, UserNeighbor> best;
  for (const Entry& entry : entries_) {
    if (entry.user == exclude) continue;
    const double d2 = metric.SquaredDistance(entry.sample, query);
    auto it = best.find(entry.user);
    // Same content tie-break as every other index (see SampleContentLess):
    // the per-user representative must not depend on insertion order.
    if (it == best.end() || d2 < it->second.distance ||
        (d2 == it->second.distance &&
         SampleContentLess(entry.sample, it->second.sample))) {
      best[entry.user] = UserNeighbor{entry.user, entry.sample, d2};
    }
  }
  std::vector<UserNeighbor> neighbors;
  neighbors.reserve(best.size());
  for (auto& [user, neighbor] : best) neighbors.push_back(neighbor);
  std::sort(neighbors.begin(), neighbors.end(),
            [](const UserNeighbor& a, const UserNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.user < b.user;
            });
  if (neighbors.size() > k) neighbors.resize(k);
  for (UserNeighbor& neighbor : neighbors) {
    neighbor.distance = std::sqrt(neighbor.distance);
  }
  return neighbors;
}

}  // namespace stindex
}  // namespace histkanon
