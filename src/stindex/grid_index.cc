#include "src/stindex/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/geo/kernels.h"

namespace histkanon {
namespace stindex {

namespace {

int64_t FloorToCell(double value, double extent) {
  return static_cast<int64_t>(std::floor(value / extent));
}

/// How large the delta tail may grow before MergeDelta folds it in:
/// constant floor for small pillars, a fraction of the sorted prefix for
/// hotspot pillars so merge cost stays amortized O(1) per insert.
size_t DeltaCapacity(size_t sorted) { return std::max<size_t>(64, sorted / 8); }

/// Read-time compaction threshold: a query folds a pillar's delta tail
/// into the sorted prefix only once the tail is a meaningful fraction of
/// the pillar.  Folding keeps the time-window bisection effective, but
/// doing it for every tiny tail would be quadratic when inserts and
/// queries interleave on a hot pillar (each serve appends one sample,
/// each query would then pay an O(n) merge); below the threshold the
/// tail is simply scanned as-is — the flat kernels do not need sorted
/// input, and a superset scan never changes an answer.  Proportional to
/// the sorted prefix so the amortized query-side merge cost per insert
/// stays O(1), like the insert-side DeltaCapacity.
bool ShouldQueryMerge(size_t sorted, size_t tail) {
  return tail > std::max<size_t>(4, sorted / 8);
}

}  // namespace

GridIndex::GridIndex(GridIndexOptions options) : options_(options) {
  if (options_.registry != nullptr) {
    inserts_ = options_.registry->GetCounter("stindex_grid_inserts_total");
    range_queries_ =
        options_.registry->GetCounter("stindex_grid_range_queries_total");
    nearest_queries_ =
        options_.registry->GetCounter("stindex_grid_nearest_queries_total");
    // Chebyshev shells explored per nearest-per-user query: the direct
    // cost driver of Algorithm 1's anchor selection.
    nearest_shells_ = options_.registry->GetHistogram(
        "stindex_grid_nearest_shells",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  }
}

GridIndex::CellKey GridIndex::CellOf(const geo::STPoint& sample) const {
  return CellKey{FloorToCell(sample.p.x, options_.cell_meters),
                 FloorToCell(sample.p.y, options_.cell_meters),
                 FloorToCell(static_cast<double>(sample.t),
                             options_.cell_seconds)};
}

void GridIndex::MergeDelta(Pillar* pillar) {
  const size_t n = pillar->size();
  if (pillar->sorted == n) return;
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const auto by_t = [&](size_t a, size_t b) {
    return pillar->t[a] < pillar->t[b];
  };
  std::stable_sort(perm.begin() + static_cast<ptrdiff_t>(pillar->sorted),
                   perm.end(), by_t);
  std::inplace_merge(perm.begin(),
                     perm.begin() + static_cast<ptrdiff_t>(pillar->sorted),
                     perm.end(), by_t);
  Pillar merged;
  merged.t.reserve(n);
  merged.x.reserve(n);
  merged.y.reserve(n);
  merged.user.reserve(n);
  for (const size_t i : perm) {
    merged.t.push_back(pillar->t[i]);
    merged.x.push_back(pillar->x[i]);
    merged.y.push_back(pillar->y[i]);
    merged.user.push_back(pillar->user[i]);
  }
  merged.sorted = n;
  *pillar = std::move(merged);
}

void GridIndex::Insert(mod::UserId user, const geo::STPoint& sample) {
  if (inserts_ != nullptr) inserts_->Increment();
  const CellKey key = CellOf(sample);
  Pillar& pillar = *pillars_.FindOrInsert(key.x, key.y);
  if (pillar.sorted == pillar.size() &&
      (pillar.sorted == 0 || pillar.t[pillar.sorted - 1] <= sample.t)) {
    // In-order arrival (the common live-ingest case): the pillar stays
    // fully sorted and never pays a merge.
    ++pillar.sorted;
  }
  pillar.t.push_back(sample.t);
  pillar.x.push_back(sample.p.x);
  pillar.y.push_back(sample.p.y);
  pillar.user.push_back(user);
  if (pillar.size() - pillar.sorted > DeltaCapacity(pillar.sorted)) {
    MergeDelta(&pillar);
  }
  if (size_ == 0) {
    min_cell_ = max_cell_ = key;
  } else {
    min_cell_.x = std::min(min_cell_.x, key.x);
    min_cell_.y = std::min(min_cell_.y, key.y);
    min_cell_.t = std::min(min_cell_.t, key.t);
    max_cell_.x = std::max(max_cell_.x, key.x);
    max_cell_.y = std::max(max_cell_.y, key.y);
    max_cell_.t = std::max(max_cell_.t, key.t);
  }
  ++size_;
  ++epoch_;
}

bool GridIndex::Remove(mod::UserId user, const geo::STPoint& sample) {
  const CellKey key = CellOf(sample);
  Pillar* slot = pillars_.Find(key.x, key.y);
  if (slot == nullptr) return false;
  Pillar& pillar = *slot;
  size_t found = pillar.size();
  // The sorted prefix narrows to the equal-t run; the tail is scanned
  // linearly.
  const auto t_begin = pillar.t.begin();
  const auto t_sorted_end = t_begin + static_cast<ptrdiff_t>(pillar.sorted);
  for (auto t_it = std::lower_bound(t_begin, t_sorted_end, sample.t);
       t_it != t_sorted_end && *t_it == sample.t; ++t_it) {
    const size_t i = static_cast<size_t>(t_it - t_begin);
    if (pillar.user[i] == user && pillar.x[i] == sample.p.x &&
        pillar.y[i] == sample.p.y) {
      found = i;
      break;
    }
  }
  if (found == pillar.size()) {
    for (size_t i = pillar.sorted; i < pillar.size(); ++i) {
      if (pillar.t[i] == sample.t && pillar.user[i] == user &&
          pillar.x[i] == sample.p.x && pillar.y[i] == sample.p.y) {
        found = i;
        break;
      }
    }
  }
  if (found == pillar.size()) return false;
  pillar.t.erase(pillar.t.begin() + static_cast<ptrdiff_t>(found));
  pillar.x.erase(pillar.x.begin() + static_cast<ptrdiff_t>(found));
  pillar.y.erase(pillar.y.begin() + static_cast<ptrdiff_t>(found));
  pillar.user.erase(pillar.user.begin() + static_cast<ptrdiff_t>(found));
  if (found < pillar.sorted) --pillar.sorted;
  --size_;
  ++epoch_;
  return true;
}

std::vector<Entry> GridIndex::RangeQuery(const geo::STBox& box) const {
  if (range_queries_ != nullptr) range_queries_->Increment();
  std::vector<Entry> hits;
  if (box.IsEmpty() || size_ == 0) return hits;
  hits.reserve(8);
  const int64_t x0 = FloorToCell(box.area.min_x, options_.cell_meters);
  const int64_t x1 = FloorToCell(box.area.max_x, options_.cell_meters);
  const int64_t y0 = FloorToCell(box.area.min_y, options_.cell_meters);
  const int64_t y1 = FloorToCell(box.area.max_y, options_.cell_meters);
  // Reused across queries (single-threaded by contract) so a query pays
  // no per-pillar allocation for the match-index staging buffer.
  std::vector<uint32_t>& matched = match_scratch_;
  for (int64_t x = std::max(x0, min_cell_.x); x <= std::min(x1, max_cell_.x);
       ++x) {
    for (int64_t y = std::max(y0, min_cell_.y);
         y <= std::min(y1, max_cell_.y); ++y) {
      Pillar* found = pillars_.Find(x, y);
      if (found == nullptr) continue;
      Pillar& pillar = *found;
      // Read-time compaction (see ShouldQueryMerge): fold a LARGE delta
      // tail so the bulk of the pillar is one bisectable run; a small
      // tail is scanned below as-is.
      if (ShouldQueryMerge(pillar.sorted, pillar.size() - pillar.sorted)) {
        MergeDelta(&pillar);
      }
      const auto filter_range = [&](size_t lo, size_t count) {
        if (count == 0) return;
        if (matched.size() < count) matched.resize(count);
        const size_t n = geo::kernels::FilterInBox(
            pillar.t.data() + lo, pillar.x.data() + lo, pillar.y.data() + lo,
            count, box, matched.data());
        for (size_t m = 0; m < n; ++m) {
          const size_t i = lo + matched[m];
          hits.push_back(Entry{
              pillar.user[i],
              geo::STPoint{{pillar.x[i], pillar.y[i]}, pillar.t[i]}});
        }
      };
      // Bisect the box's raw time window over the sorted prefix, then
      // the flat containment kernel over the run; the unsorted tail (if
      // any) cannot be bisected and goes straight through the kernel,
      // which checks the time bounds itself.
      size_t lo = 0;
      size_t hi = 0;
      geo::kernels::TimeWindowIndices(pillar.t.data(), pillar.sorted,
                                      box.time.lo, box.time.hi, &lo, &hi);
      filter_range(lo, hi - lo);
      filter_range(pillar.sorted, pillar.size() - pillar.sorted);
    }
  }
  return hits;
}

std::vector<UserNeighbor> GridIndex::NearestPerUser(
    const geo::STPoint& query, size_t k, mod::UserId exclude,
    const geo::STMetric& metric) const {
  if (nearest_queries_ != nullptr) nearest_queries_->Increment();
  std::vector<UserNeighbor> result;
  if (size_ == 0 || k == 0) return result;

  const double cell = options_.cell_meters;
  const double mps = metric.meters_per_second;

  // Per-user best samples in the reusable generation-stamped scratch
  // table (linear probing, power-of-2 capacity): `consider` is the
  // innermost operation of the whole search, and a node-based map would
  // pay an allocation and a pointer chase per discovered user.  Bumping
  // the generation invalidates the previous query's entries without
  // touching them, so a query pays neither an allocation nor a
  // table-wide clear.
  if (best_slots_.empty()) best_slots_.assign(128, BestSlot{});
  if (++best_gen_ == 0) {
    // uint32 wrap: stamp everything dead once, then restart at 1.
    for (BestSlot& slot : best_slots_) slot.gen = 0;
    best_gen_ = 1;
  }
  const uint32_t gen = best_gen_;
  const auto user_hash = [](mod::UserId user) -> size_t {
    return static_cast<size_t>(
        (static_cast<uint64_t>(user) * 0x9e3779b97f4a7c15ULL) >> 32);
  };
  size_t best_mask = best_slots_.size() - 1;
  size_t best_used = 0;
  const auto best_find = [&](mod::UserId user) -> BestSlot* {
    for (size_t i = user_hash(user) & best_mask;; i = (i + 1) & best_mask) {
      BestSlot& slot = best_slots_[i];
      if (slot.gen != gen || slot.user == user) return &slot;
    }
  };
  const auto best_grow = [&]() {
    std::vector<BestSlot> old = std::move(best_slots_);
    best_slots_.assign(old.size() * 2, BestSlot{});
    best_mask = best_slots_.size() - 1;
    for (BestSlot& slot : old) {
      if (slot.gen != gen) continue;
      size_t i = user_hash(slot.user) & best_mask;
      while (best_slots_[i].gen == gen) i = (i + 1) & best_mask;
      best_slots_[i] = slot;
    }
  };

  // The k smallest per-user best squared distances, ascending — the
  // incrementally maintained pruning bound (mirrored into `bound_d2`).
  // All O(k) per update, never an O(users) nth_element on the hot path.
  // Invariant: every user NOT in `topk` has a best no smaller than
  // topk.back() — eviction only replaces the maximum with something
  // smaller, and a tracked user's value only decreases in place, so the
  // invariant survives every update.
  std::vector<std::pair<double, mod::UserId>>& topk = topk_;
  topk.clear();
  topk.reserve(k);
  double bound_d2 = std::numeric_limits<double>::infinity();
  const auto topk_update = [&](mod::UserId user, double d2) {
    for (size_t i = 0; i < topk.size(); ++i) {
      if (topk[i].second != user) continue;
      topk[i].first = d2;
      while (i > 0 && topk[i - 1].first > topk[i].first) {
        std::swap(topk[i - 1], topk[i]);
        --i;
      }
      if (topk.size() == k) bound_d2 = topk.back().first;
      return;
    }
    if (topk.size() == k && d2 >= topk.back().first) return;
    if (topk.size() == k) topk.pop_back();
    topk.emplace_back(d2, user);
    for (size_t i = topk.size() - 1;
         i > 0 && topk[i - 1].first > topk[i].first; --i) {
      std::swap(topk[i - 1], topk[i]);
    }
    if (topk.size() == k) bound_d2 = topk.back().first;
  };

  const auto consider = [&](mod::UserId user, double d2,
                            const geo::STPoint& sample) {
    BestSlot* slot = best_find(user);
    if (slot->gen != gen) {
      slot->gen = gen;
      slot->user = user;
      slot->neighbor = UserNeighbor{user, sample, d2};
      topk_update(user, d2);
      if (++best_used * 2 > best_slots_.size()) best_grow();
    } else if (d2 < slot->neighbor.distance) {
      slot->neighbor.sample = sample;
      slot->neighbor.distance = d2;
      topk_update(user, d2);
    } else if (d2 == slot->neighbor.distance &&
               SampleContentLess(sample, slot->neighbor.sample)) {
      // Equal-distance ties go to the content-smaller sample so the
      // per-user representative never depends on scan order.
      slot->neighbor.sample = sample;
    }
  };

  // Spatial squared distance from the query to cell (x, y)'s bounding
  // square, padded down so floating rounding in FloorToCell can never
  // make it exceed a contained sample's true distance.
  const auto cell_min_d2 = [&](int64_t x, int64_t y) -> double {
    const double lo_x = static_cast<double>(x) * cell;
    const double lo_y = static_cast<double>(y) * cell;
    double dx = 0.0;
    if (query.p.x < lo_x) dx = lo_x - query.p.x;
    if (query.p.x > lo_x + cell) dx = query.p.x - (lo_x + cell);
    double dy = 0.0;
    if (query.p.y < lo_y) dy = lo_y - query.p.y;
    if (query.p.y > lo_y + cell) dy = query.p.y - (lo_y + cell);
    const double d2 = dx * dx + dy * dy;
    const double padded = d2 - (d2 * 1e-12 + 1e-9);
    return padded > 0.0 ? padded : 0.0;
  };

  // Pillars are ACTIVATED in concentric square rings around the query's
  // cell — O(1) arithmetic per cell, no per-cell priority queue — and
  // rings stop once even the ring's inner edge is provably past the
  // k-th best distance.  An activated pillar is scanned over ONE
  // bound-clipped time window: a sample outside
  // |t - query.t| <= sqrt(bound - spatial) / mps has a time part ALONE
  // strictly above the bound, so it can neither enter the result nor
  // tie, and because the bound only tightens, a window computed from
  // the bound at activation time is a superset of the final legal
  // window — clipped-away work is never owed later.  Comparisons
  // against the bound are STRICT throughout: samples exactly tying the
  // k-th best must be seen for the result to stay a pure function of
  // the indexed content (the canonical-answer property
  // SampleContentLess documents).
  int64_t cells_probed = 0;
  const auto activate = [&](int64_t x, int64_t y) {
    const double spatial = cell_min_d2(x, y);
    if (spatial > bound_d2) return;  // arithmetic-only prune, no probe
    ++cells_probed;
    Pillar* pillar = pillars_.Find(x, y);
    if (pillar == nullptr) return;
    // Read-time compaction (see ShouldQueryMerge): fold a LARGE delta
    // tail so window clipping covers the bulk of the pillar; a small
    // tail is scanned unclipped below.
    if (ShouldQueryMerge(pillar->sorted, pillar->size() - pillar->sorted)) {
      MergeDelta(pillar);
    }
    const auto scan_range = [&](size_t lo, size_t count) {
      if (count == 0) return;
      if (d2_scratch_.size() < count) d2_scratch_.resize(count);
      geo::kernels::SquaredDistances(pillar->t.data() + lo,
                                     pillar->x.data() + lo,
                                     pillar->y.data() + lo, count, query, mps,
                                     d2_scratch_.data());
      for (size_t j = 0; j < count; ++j) {
        const double d2 = d2_scratch_[j];
        if (d2 > bound_d2) continue;  // strict: ties must pass
        const mod::UserId user = pillar->user[lo + j];
        if (user == exclude) continue;
        consider(user, d2,
                 geo::STPoint{{pillar->x[lo + j], pillar->y[lo + j]},
                              pillar->t[lo + j]});
      }
    };
    const size_t sorted = pillar->sorted;
    if (sorted > 0) {
      size_t lo = 0;
      size_t hi = sorted;
      // Conservative half-width: inflate for sqrt/divide rounding, plus
      // one extra second for the int64 -> double conversion of the time
      // delta.  Overscan is a harmless superset scan; underscan is not.
      const double half = std::sqrt(bound_d2 - spatial) / mps * (1.0 + 1e-9) +
                          1.0;
      if (std::isfinite(half) && half < 9.0e18) {
        const int64_t w = static_cast<int64_t>(half);
        int64_t lo_t = 0;
        int64_t hi_t = 0;
        if (__builtin_sub_overflow(query.t, w, &lo_t)) {
          lo_t = std::numeric_limits<int64_t>::min();
        }
        if (__builtin_add_overflow(query.t, w, &hi_t)) {
          hi_t = std::numeric_limits<int64_t>::max();
        }
        geo::kernels::TimeWindowIndices(pillar->t.data(), sorted, lo_t, hi_t,
                                        &lo, &hi);
      }
      scan_range(lo, hi - lo);
    }
    scan_range(sorted, pillar->size() - sorted);
  };

  // Start from the query's cell clamped into the data's lattice bounds:
  // a cell at Chebyshev lattice distance r from the start then sits at
  // spatial distance >= (r - 1) * cell_meters from the query, whether
  // the query is inside the lattice or beyond its edge.
  const int64_t start_x =
      std::clamp(FloorToCell(query.p.x, cell), min_cell_.x, max_cell_.x);
  const int64_t start_y =
      std::clamp(FloorToCell(query.p.y, cell), min_cell_.y, max_cell_.y);
  // The last ring with any in-bounds cell.
  const int64_t cover =
      std::max(std::max(start_x - min_cell_.x, max_cell_.x - start_x),
               std::max(start_y - min_cell_.y, max_cell_.y - start_y));

  for (int64_t r = 0; r <= cover; ++r) {
    if (r > 0) {
      const double ring_min = static_cast<double>(r - 1) * cell;
      if (ring_min * ring_min > bound_d2) break;
    }
    if (r == 0) {
      activate(start_x, start_y);
    } else {
      const int64_t x0 = start_x - r;
      const int64_t x1 = start_x + r;
      const int64_t y0 = start_y - r;
      const int64_t y1 = start_y + r;
      const int64_t xa = std::max(x0, min_cell_.x);
      const int64_t xb = std::min(x1, max_cell_.x);
      if (y0 >= min_cell_.y) {
        for (int64_t x = xa; x <= xb; ++x) activate(x, y0);
      }
      if (y1 <= max_cell_.y) {
        for (int64_t x = xa; x <= xb; ++x) activate(x, y1);
      }
      const int64_t ya = std::max(y0 + 1, min_cell_.y);
      const int64_t yb = std::min(y1 - 1, max_cell_.y);
      if (x0 >= min_cell_.x) {
        for (int64_t y = ya; y <= yb; ++y) activate(x0, y);
      }
      if (x1 <= max_cell_.x) {
        for (int64_t y = ya; y <= yb; ++y) activate(x1, y);
      }
    }
  }

  if (nearest_shells_ != nullptr) {
    nearest_shells_->Observe(static_cast<double>(cells_probed));
  }
  result.reserve(best_used);
  for (const BestSlot& slot : best_slots_) {
    if (slot.gen == gen) result.push_back(slot.neighbor);
  }
  const auto by_distance = [](const UserNeighbor& a, const UserNeighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.user < b.user;
  };
  if (result.size() > k) {
    // Only the k nearest leave the function: partial ordering is enough.
    std::partial_sort(result.begin(),
                      result.begin() + static_cast<ptrdiff_t>(k),
                      result.end(), by_distance);
    result.resize(k);
  } else {
    std::sort(result.begin(), result.end(), by_distance);
  }
  for (UserNeighbor& neighbor : result) {
    neighbor.distance = std::sqrt(neighbor.distance);
  }
  return result;
}

}  // namespace stindex
}  // namespace histkanon
