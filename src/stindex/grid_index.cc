#include "src/stindex/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace histkanon {
namespace stindex {

namespace {

int64_t FloorToCell(double value, double extent) {
  return static_cast<int64_t>(std::floor(value / extent));
}

}  // namespace

GridIndex::GridIndex(GridIndexOptions options) : options_(options) {
  if (options_.registry != nullptr) {
    inserts_ = options_.registry->GetCounter("stindex_grid_inserts_total");
    range_queries_ =
        options_.registry->GetCounter("stindex_grid_range_queries_total");
    nearest_queries_ =
        options_.registry->GetCounter("stindex_grid_nearest_queries_total");
    // Chebyshev shells explored per nearest-per-user query: the direct
    // cost driver of Algorithm 1's anchor selection.
    nearest_shells_ = options_.registry->GetHistogram(
        "stindex_grid_nearest_shells",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  }
}

GridIndex::CellKey GridIndex::CellOf(const geo::STPoint& sample) const {
  return CellKey{FloorToCell(sample.p.x, options_.cell_meters),
                 FloorToCell(sample.p.y, options_.cell_meters),
                 FloorToCell(static_cast<double>(sample.t),
                             options_.cell_seconds)};
}

void GridIndex::Insert(mod::UserId user, const geo::STPoint& sample) {
  if (inserts_ != nullptr) inserts_->Increment();
  const CellKey key = CellOf(sample);
  cells_[key].push_back(Entry{user, sample});
  if (size_ == 0) {
    min_cell_ = max_cell_ = key;
  } else {
    min_cell_.x = std::min(min_cell_.x, key.x);
    min_cell_.y = std::min(min_cell_.y, key.y);
    min_cell_.t = std::min(min_cell_.t, key.t);
    max_cell_.x = std::max(max_cell_.x, key.x);
    max_cell_.y = std::max(max_cell_.y, key.y);
    max_cell_.t = std::max(max_cell_.t, key.t);
  }
  ++size_;
  ++epoch_;
}

bool GridIndex::Remove(mod::UserId user, const geo::STPoint& sample) {
  const CellKey key = CellOf(sample);
  const auto cell = cells_.find(key);
  if (cell == cells_.end()) return false;
  std::vector<Entry>& entries = cell->second;
  const Entry target{user, sample};
  const auto it = std::find(entries.begin(), entries.end(), target);
  if (it == entries.end()) return false;
  entries.erase(it);
  if (entries.empty()) cells_.erase(cell);
  --size_;
  ++epoch_;
  return true;
}

std::vector<Entry> GridIndex::RangeQuery(const geo::STBox& box) const {
  if (range_queries_ != nullptr) range_queries_->Increment();
  std::vector<Entry> hits;
  if (box.IsEmpty() || size_ == 0) return hits;
  const int64_t x0 = FloorToCell(box.area.min_x, options_.cell_meters);
  const int64_t x1 = FloorToCell(box.area.max_x, options_.cell_meters);
  const int64_t y0 = FloorToCell(box.area.min_y, options_.cell_meters);
  const int64_t y1 = FloorToCell(box.area.max_y, options_.cell_meters);
  const int64_t t0 =
      FloorToCell(static_cast<double>(box.time.lo), options_.cell_seconds);
  const int64_t t1 =
      FloorToCell(static_cast<double>(box.time.hi), options_.cell_seconds);
  for (int64_t x = std::max(x0, min_cell_.x); x <= std::min(x1, max_cell_.x);
       ++x) {
    for (int64_t y = std::max(y0, min_cell_.y);
         y <= std::min(y1, max_cell_.y); ++y) {
      for (int64_t t = std::max(t0, min_cell_.t);
           t <= std::min(t1, max_cell_.t); ++t) {
        const auto it = cells_.find(CellKey{x, y, t});
        if (it == cells_.end()) continue;
        for (const Entry& entry : it->second) {
          if (box.Contains(entry.sample)) hits.push_back(entry);
        }
      }
    }
  }
  return hits;
}

std::vector<UserNeighbor> GridIndex::NearestPerUser(
    const geo::STPoint& query, size_t k, mod::UserId exclude,
    const geo::STMetric& metric) const {
  if (nearest_queries_ != nullptr) nearest_queries_->Increment();
  std::vector<UserNeighbor> result;
  if (size_ == 0 || k == 0) return result;
  int64_t shells_explored = 0;

  const CellKey center = CellOf(query);
  // Weighted extent of one cell in each lattice dimension.
  const double extent_x = options_.cell_meters;
  const double extent_y = options_.cell_meters;
  const double extent_t = metric.meters_per_second * options_.cell_seconds;
  const double min_extent = std::min({extent_x, extent_y, extent_t});

  std::unordered_map<mod::UserId, UserNeighbor> best;  // distance = squared

  auto scan_cell = [&](int64_t x, int64_t y, int64_t t) {
    const auto it = cells_.find(CellKey{x, y, t});
    if (it == cells_.end()) return;
    for (const Entry& entry : it->second) {
      if (entry.user == exclude) continue;
      const double d2 = metric.SquaredDistance(entry.sample, query);
      auto bit = best.find(entry.user);
      // Equal-distance ties go to the content-smaller sample so the
      // per-user representative never depends on cell iteration order.
      if (bit == best.end() || d2 < bit->second.distance ||
          (d2 == bit->second.distance &&
           SampleContentLess(entry.sample, bit->second.sample))) {
        best[entry.user] = UserNeighbor{entry.user, entry.sample, d2};
      }
    }
  };

  // k-th smallest per-user best squared distance (infinity when < k users).
  auto kth_best_d2 = [&]() -> double {
    if (best.size() < k) return std::numeric_limits<double>::infinity();
    std::vector<double> d2s;
    d2s.reserve(best.size());
    for (const auto& [user, neighbor] : best) d2s.push_back(neighbor.distance);
    std::nth_element(d2s.begin(), d2s.begin() + (k - 1), d2s.end());
    return d2s[k - 1];
  };

  // Clipped iteration helper over one axis range.
  auto clip_lo = [](int64_t v, int64_t lo) { return std::max(v, lo); };
  auto clip_hi = [](int64_t v, int64_t hi) { return std::min(v, hi); };

  for (int64_t radius = 0;; ++radius) {
    ++shells_explored;
    // Scan the Chebyshev shell at `radius` — its six faces only, each
    // clipped to the data's lattice bounding box.  Inner cells were
    // scanned at smaller radii.
    const int64_t x0 = center.x - radius;
    const int64_t x1 = center.x + radius;
    const int64_t y0 = center.y - radius;
    const int64_t y1 = center.y + radius;
    const int64_t t0 = center.t - radius;
    const int64_t t1 = center.t + radius;
    if (radius == 0) {
      scan_cell(center.x, center.y, center.t);
    } else {
      // x = x0 and x = x1 faces (full y/t extent).
      for (const int64_t x : {x0, x1}) {
        if (x < min_cell_.x || x > max_cell_.x) continue;
        for (int64_t y = clip_lo(y0, min_cell_.y);
             y <= clip_hi(y1, max_cell_.y); ++y) {
          for (int64_t t = clip_lo(t0, min_cell_.t);
               t <= clip_hi(t1, max_cell_.t); ++t) {
            scan_cell(x, y, t);
          }
        }
      }
      // y faces (x interior only, to avoid re-scanning the x-face edges).
      for (const int64_t y : {y0, y1}) {
        if (y < min_cell_.y || y > max_cell_.y) continue;
        for (int64_t x = clip_lo(x0 + 1, min_cell_.x);
             x <= clip_hi(x1 - 1, max_cell_.x); ++x) {
          for (int64_t t = clip_lo(t0, min_cell_.t);
               t <= clip_hi(t1, max_cell_.t); ++t) {
            scan_cell(x, y, t);
          }
        }
      }
      // t faces (x and y interior only).
      for (const int64_t t : {t0, t1}) {
        if (t < min_cell_.t || t > max_cell_.t) continue;
        for (int64_t x = clip_lo(x0 + 1, min_cell_.x);
             x <= clip_hi(x1 - 1, max_cell_.x); ++x) {
          for (int64_t y = clip_lo(y0 + 1, min_cell_.y);
               y <= clip_hi(y1 - 1, max_cell_.y); ++y) {
            scan_cell(x, y, t);
          }
        }
      }
    }

    // Any unexplored cell lies at Chebyshev lattice distance > radius, so
    // its contents are at weighted distance >= radius * min_extent.  The
    // comparison is STRICT: stopping on equality could miss a boundary
    // sample tying the k-th best, and tied samples must all be seen for
    // the result to be a pure function of the indexed content (the
    // canonical-answer property SampleContentLess documents).
    const double unexplored_min = static_cast<double>(radius) * min_extent;
    if (kth_best_d2() < unexplored_min * unexplored_min) break;

    // Stop once the search cube covers the whole data lattice.
    if (x0 <= min_cell_.x && x1 >= max_cell_.x && y0 <= min_cell_.y &&
        y1 >= max_cell_.y && t0 <= min_cell_.t && t1 >= max_cell_.t) {
      break;
    }
  }

  if (nearest_shells_ != nullptr) {
    nearest_shells_->Observe(static_cast<double>(shells_explored));
  }
  result.reserve(best.size());
  for (const auto& [user, neighbor] : best) result.push_back(neighbor);
  std::sort(result.begin(), result.end(),
            [](const UserNeighbor& a, const UserNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.user < b.user;
            });
  if (result.size() > k) result.resize(k);
  for (UserNeighbor& neighbor : result) {
    neighbor.distance = std::sqrt(neighbor.distance);
  }
  return result;
}

}  // namespace stindex
}  // namespace histkanon
