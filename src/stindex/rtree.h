// A 3D R-tree over (x, y, t) PHL samples: Guttman insertion with quadratic
// split, STR bulk loading, best-first (priority-queue) nearest-neighbour
// traversal, and range queries.
//
// Because space is in meters and time in seconds, node "volume" and query
// distances weight the time axis by a meters-per-second factor (see
// geo::STMetric); the weight used for tree construction is fixed at build
// time via RTreeOptions.

#ifndef HISTKANON_SRC_STINDEX_RTREE_H_
#define HISTKANON_SRC_STINDEX_RTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/stindex/index.h"

namespace histkanon {
namespace stindex {

/// \brief Tuning knobs for RTree.
struct RTreeOptions {
  /// Maximum entries per node before a split (Guttman's M).
  int max_entries = 16;
  /// Minimum entries assigned to each split half (Guttman's m).
  int min_entries = 6;
  /// Time-axis weight (meters per second) used for construction-time
  /// volume computations.  Query-time distances use the caller's metric.
  double construction_meters_per_second = 1.4;
};

/// \brief Dynamic 3D R-tree index over PHL samples.
class RTree : public SpatioTemporalIndex {
 public:
  explicit RTree(RTreeOptions options = RTreeOptions());
  ~RTree() override;

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Builds a tree over `entries` with Sort-Tile-Recursive packing
  /// (much better node overlap than repeated Insert for static data).
  static RTree BulkLoad(std::vector<Entry> entries,
                        RTreeOptions options = RTreeOptions());

  const std::string& name() const override { return name_; }
  void Insert(mod::UserId user, const geo::STPoint& sample) override;
  size_t size() const override { return size_; }
  std::vector<Entry> RangeQuery(const geo::STBox& box) const override;
  std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const override;

  /// Height of the tree (1 for a single leaf); exposed for tests.
  int Height() const;

  /// Verifies structural invariants (bounds containment, fan-out limits,
  /// uniform leaf depth); exposed for tests.
  common::Status CheckInvariants() const;

 private:
  struct Node;

  void InsertEntry(const Entry& entry);
  // Splits `node` (which has overflowed) and returns the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node);

  std::string name_ = "rtree";
  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_RTREE_H_
