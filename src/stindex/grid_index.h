// Uniform 3D grid over (x, y, t), with expanding-shell nearest-neighbour
// search.  The workhorse index for Algorithm 1 on realistic densities.

#ifndef HISTKANON_SRC_STINDEX_GRID_INDEX_H_
#define HISTKANON_SRC_STINDEX_GRID_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"
#include "src/stindex/index.h"

namespace histkanon {
namespace stindex {

/// \brief Tuning knobs for GridIndex.
struct GridIndexOptions {
  /// Spatial cell edge (meters).
  double cell_meters = 250.0;
  /// Temporal cell extent (seconds).
  double cell_seconds = 600.0;
  /// Optional metrics (not owned, must outlive the index); nullptr
  /// disables all observation.
  obs::Registry* registry = nullptr;
};

/// \brief Hash-grid index: each sample lives in the cell of a uniform
/// (x, y, t) lattice; nearest-per-user queries explore Chebyshev shells of
/// cells outward from the query until the k-th best distance is provably
/// final.
class GridIndex : public SpatioTemporalIndex {
 public:
  explicit GridIndex(GridIndexOptions options = GridIndexOptions());

  const std::string& name() const override { return name_; }
  void Insert(mod::UserId user, const geo::STPoint& sample) override;

  /// Removes one (user, sample) entry; false if absent.  Used by the seal
  /// protocol to drop archived samples from the hot index.  The lattice
  /// bounding box is NOT re-tightened (stale bounds only widen iteration
  /// clipping, never change answers).
  bool Remove(mod::UserId user, const geo::STPoint& sample);

  size_t size() const override { return size_; }
  uint64_t epoch() const override { return epoch_; }
  std::vector<Entry> RangeQuery(const geo::STBox& box) const override;
  std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const override;

  /// Opaque id of the lattice cell containing `sample` — a pure function
  /// of the point and the cell extents.  The batch engine sorts a window
  /// of requests by this id so co-located requests run back to back and
  /// share the generalizer's per-epoch candidate cache.
  uint64_t CellIdOf(const geo::STPoint& sample) const {
    return static_cast<uint64_t>(CellKeyHash()(CellOf(sample)));
  }

 private:
  struct CellKey {
    int64_t x = 0;
    int64_t y = 0;
    int64_t t = 0;

    friend bool operator==(const CellKey& a, const CellKey& b) {
      return a.x == b.x && a.y == b.y && a.t == b.t;
    }
  };

  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      // splitmix-style mixing of the three lattice coordinates.
      uint64_t h = static_cast<uint64_t>(key.x) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(key.y) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= static_cast<uint64_t>(key.t) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  CellKey CellOf(const geo::STPoint& sample) const;

  std::string name_ = "grid";
  GridIndexOptions options_;
  // Pre-resolved metric handles (nullptr without a registry).
  obs::Counter* inserts_ = nullptr;
  obs::Counter* range_queries_ = nullptr;
  obs::Counter* nearest_queries_ = nullptr;
  obs::Histogram* nearest_shells_ = nullptr;
  std::unordered_map<CellKey, std::vector<Entry>, CellKeyHash> cells_;
  size_t size_ = 0;
  /// Bumped on every Insert (the MOD-ingest invalidation ticket).
  uint64_t epoch_ = 0;
  // Bounding lattice range of inserted data (valid when size_ > 0).
  CellKey min_cell_;
  CellKey max_cell_;
};

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_GRID_INDEX_H_
