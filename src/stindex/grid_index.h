// Uniform grid over (x, y) pillars of time-sorted sample columns, with
// expanding-shell nearest-neighbour search.  The workhorse index for
// Algorithm 1 on realistic densities.
//
// Columnar layout (DESIGN.md §17): samples sharing a spatial cell live in
// one PILLAR — four parallel columns t/x/y/user whose prefix is sorted by
// time, plus a small unsorted delta tail that absorbs inserts and is
// merged back when it overflows.  A nearest scan that used to probe one
// hash cell per (x, y, t) lattice point now probes one pillar per (x, y)
// ring cell, bisects the time window the current k-th bound allows, and
// hands the run to the flat geometry kernels (src/geo/kernels.h).
// Answers are identical: the per-user tie rule (SampleContentLess) and
// the strict ring-termination bound already make the result a pure
// function of the indexed content, independent of scan order.

#ifndef HISTKANON_SRC_STINDEX_GRID_INDEX_H_
#define HISTKANON_SRC_STINDEX_GRID_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/stindex/index.h"

namespace histkanon {
namespace stindex {

/// \brief Tuning knobs for GridIndex.
struct GridIndexOptions {
  /// Spatial cell edge (meters).
  double cell_meters = 250.0;
  /// Temporal cell extent (seconds).
  double cell_seconds = 600.0;
  /// Optional metrics (not owned, must outlive the index); nullptr
  /// disables all observation.
  obs::Registry* registry = nullptr;
};

/// \brief Pillar-grid index: each sample lives in the time-sorted column
/// of its spatial cell; nearest-per-user queries expand square rings of
/// pillars outward from the query — scanning each pillar's bound-clipped
/// time run through the distance kernel — until the k-th best distance
/// is provably final.
class GridIndex : public SpatioTemporalIndex {
 public:
  explicit GridIndex(GridIndexOptions options = GridIndexOptions());

  const std::string& name() const override { return name_; }
  void Insert(mod::UserId user, const geo::STPoint& sample) override;

  /// Removes one (user, sample) entry; false if absent.  Used by the seal
  /// protocol to drop archived samples from the hot index.  The lattice
  /// bounding box is NOT re-tightened (stale bounds only widen iteration
  /// clipping, never change answers).
  bool Remove(mod::UserId user, const geo::STPoint& sample);

  size_t size() const override { return size_; }
  uint64_t epoch() const override { return epoch_; }
  std::vector<Entry> RangeQuery(const geo::STBox& box) const override;
  std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const override;

  /// Opaque id of the lattice cell containing `sample` — a pure function
  /// of the point and the cell extents.  The batch engine sorts a window
  /// of requests by this id so co-located requests run back to back and
  /// share the generalizer's per-epoch candidate cache.
  uint64_t CellIdOf(const geo::STPoint& sample) const {
    return static_cast<uint64_t>(CellKeyHash()(CellOf(sample)));
  }

 private:
  struct CellKey {
    int64_t x = 0;
    int64_t y = 0;
    int64_t t = 0;

    friend bool operator==(const CellKey& a, const CellKey& b) {
      return a.x == b.x && a.y == b.y && a.t == b.t;
    }
  };

  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      // splitmix-style mixing of the three lattice coordinates.
      uint64_t h = static_cast<uint64_t>(key.x) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(key.y) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= static_cast<uint64_t>(key.t) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  /// \brief One spatial cell's samples as parallel columns.  The prefix
  /// [0, sorted) is ascending in t; [sorted, t.size()) is the unsorted
  /// delta tail, merged back by MergeDelta when it overflows.
  struct Pillar {
    std::vector<int64_t> t;
    std::vector<double> x;
    std::vector<double> y;
    std::vector<mod::UserId> user;
    size_t sorted = 0;

    size_t size() const { return t.size(); }
  };

  /// \brief Open-addressing pillar map: power-of-2 capacity, linear
  /// probing, load kept under 1/2.  A probe is one predictable slot load
  /// where the node-based map paid a bucket load plus a pointer chase —
  /// the pillar lookup is on every query's critical path.  Pillars are
  /// stored by value and only move on growth, so within a query (no
  /// inserts) Pillar pointers are stable.  There is no erase: a pillar
  /// emptied by Remove stays as a vacant husk, which every scan already
  /// skips — tombstone bookkeeping would buy nothing.
  class PillarTable {
   public:
    PillarTable() : slots_(kMinSlots), mask_(kMinSlots - 1) {}

    Pillar* Find(int64_t x, int64_t y) {
      for (size_t i = Hash(x, y) & mask_;; i = (i + 1) & mask_) {
        Slot& slot = slots_[i];
        if (!slot.used) return nullptr;
        if (slot.x == x && slot.y == y) return &slot.pillar;
      }
    }

    Pillar* FindOrInsert(int64_t x, int64_t y) {
      if ((used_ + 1) * 2 > slots_.size()) Grow();
      for (size_t i = Hash(x, y) & mask_;; i = (i + 1) & mask_) {
        Slot& slot = slots_[i];
        if (!slot.used) {
          slot.used = true;
          slot.x = x;
          slot.y = y;
          ++used_;
          return &slot.pillar;
        }
        if (slot.x == x && slot.y == y) return &slot.pillar;
      }
    }

   private:
    struct Slot {
      int64_t x = 0;
      int64_t y = 0;
      bool used = false;
      Pillar pillar;
    };

    static size_t Hash(int64_t x, int64_t y) {
      uint64_t h = static_cast<uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(y) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
      return static_cast<size_t>(h ^ (h >> 31));
    }

    void Grow() {
      std::vector<Slot> old = std::move(slots_);
      slots_.assign(old.size() * 2, Slot{});
      mask_ = slots_.size() - 1;
      for (Slot& slot : old) {
        if (!slot.used) continue;
        size_t i = Hash(slot.x, slot.y) & mask_;
        while (slots_[i].used) i = (i + 1) & mask_;
        slots_[i] = std::move(slot);
      }
    }

    static constexpr size_t kMinSlots = 64;
    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t used_ = 0;
  };

  CellKey CellOf(const geo::STPoint& sample) const;

  /// Sorts the delta tail and merges it into the sorted prefix (O(n)).
  static void MergeDelta(Pillar* pillar);

  std::string name_ = "grid";
  GridIndexOptions options_;
  // Pre-resolved metric handles (nullptr without a registry).
  obs::Counter* inserts_ = nullptr;
  obs::Counter* range_queries_ = nullptr;
  obs::Counter* nearest_queries_ = nullptr;
  obs::Histogram* nearest_shells_ = nullptr;
  // `mutable` for read-time compaction: the index is single-threaded by
  // contract, and queries fold a touched pillar's oversized delta tail
  // into the sorted prefix before scanning it (small tails are scanned
  // as-is) — content is unchanged, so const semantics hold for every
  // observable answer.
  mutable PillarTable pillars_;
  // Per-query scratch for NearestPerUser, reused across queries (the
  // index is single-threaded by contract; a query leaves no observable
  // state here).  The best-per-user table is generation-stamped: bumping
  // best_gen_ invalidates every slot in O(1), so a query pays neither an
  // allocation nor a table-wide clear, and the table keeps its
  // high-water capacity.
  struct BestSlot {
    mod::UserId user = 0;
    uint32_t gen = 0;  // slot is live iff gen == best_gen_
    UserNeighbor neighbor;  // distance = squared while searching
  };
  mutable std::vector<BestSlot> best_slots_;
  mutable uint32_t best_gen_ = 0;
  mutable std::vector<std::pair<double, mod::UserId>> topk_;
  mutable std::vector<double> d2_scratch_;
  mutable std::vector<uint32_t> match_scratch_;
  size_t size_ = 0;
  /// Bumped on every Insert (the MOD-ingest invalidation ticket).
  uint64_t epoch_ = 0;
  // Bounding lattice range of inserted data (valid when size_ > 0).
  CellKey min_cell_;
  CellKey max_cell_;
};

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_GRID_INDEX_H_
