#include "src/stindex/tiered_view.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace histkanon {
namespace stindex {

std::vector<Entry> TieredIndexView::RangeQuery(const geo::STBox& box) const {
  std::vector<Entry> hits = hot_->RangeQuery(box);
  if (box.IsEmpty() || cold_->manifest().empty()) return hits;
  // A fault mid-scan leaves the answer hot-only; the fault counter (and
  // therefore this view's epoch) has already moved, so the serving layer
  // sheds rather than trusting the partial answer.
  cold_->ForEachSampleIn(
      box.time.lo, box.time.hi,
      [&](mod::UserId user, const geo::STPoint& sample) {
        if (box.Contains(sample)) hits.push_back(Entry{user, sample});
      });
  return hits;
}

std::vector<UserNeighbor> TieredIndexView::NearestPerUser(
    const geo::STPoint& query, size_t k, mod::UserId exclude,
    const geo::STMetric& metric) const {
  std::vector<UserNeighbor> hot = hot_->NearestPerUser(query, k, exclude,
                                                       metric);
  if (k == 0 || cold_->manifest().empty()) return hot;

  // Squared distance the k-th answer must beat.  Hot distances come back
  // square-rooted; re-derive the exact squared value from the sample so
  // the comparison happens in the same arithmetic the indexes use.
  double kth_d2 = std::numeric_limits<double>::infinity();
  if (hot.size() == k) {
    kth_d2 = metric.SquaredDistance(hot.back().sample, query);
  }

  // Candidate users: everyone in the hot top-k, plus every user with a
  // cold sample close enough IN TIME ALONE to tie or beat the k-th hot
  // answer (non-strict, so boundary ties are re-examined, keeping the
  // answer a pure function of the stored content).
  std::set<mod::UserId> candidates;
  for (const UserNeighbor& neighbor : hot) candidates.insert(neighbor.user);
  geo::Instant lo = std::numeric_limits<geo::Instant>::min();
  geo::Instant hi = std::numeric_limits<geo::Instant>::max();
  if (std::isfinite(kth_d2) && metric.meters_per_second > 0.0) {
    const double window =
        std::sqrt(kth_d2) / metric.meters_per_second + 1.0;
    lo = query.t - static_cast<geo::Instant>(window);
    hi = query.t + static_cast<geo::Instant>(window);
  }
  if (!cold_->ForEachSampleIn(lo, hi,
                              [&](mod::UserId user, const geo::STPoint&) {
                                if (user != exclude) candidates.insert(user);
                              })) {
    return hot;  // cold fault: hot-only answer, epoch moved, request sheds
  }

  // True per-user best through the archive-aware PHL path.  Per-user
  // equal-distance ties resolve to the earliest sample there, which for a
  // single user's strictly-increasing times IS the SampleContentLess rule
  // the hot indexes use.
  std::vector<UserNeighbor> merged;
  merged.reserve(candidates.size());
  for (const mod::UserId user : candidates) {
    const common::Result<const mod::Phl*> phl = store_->GetPhl(user);
    if (!phl.ok()) continue;
    const std::optional<geo::STPoint> best =
        (*phl)->NearestSample(query, metric);
    if (!best.has_value()) continue;
    merged.push_back(
        UserNeighbor{user, *best, metric.SquaredDistance(*best, query)});
  }
  std::sort(merged.begin(), merged.end(),
            [](const UserNeighbor& a, const UserNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.user < b.user;
            });
  if (merged.size() > k) merged.resize(k);
  for (UserNeighbor& neighbor : merged) {
    neighbor.distance = std::sqrt(neighbor.distance);
  }
  return merged;
}

}  // namespace stindex
}  // namespace histkanon
