#include "src/stindex/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "src/common/str.h"

namespace histkanon {
namespace stindex {

namespace {

// Weighted volume of a box, with a small per-axis pad so that degenerate
// (point-like) boxes still order sensibly under enlargement comparisons.
double WeightedVolume(const geo::STBox& box, double mps) {
  if (box.IsEmpty()) return 0.0;
  constexpr double kPad = 1e-6;
  return (box.area.Width() + kPad) * (box.area.Height() + kPad) *
         (mps * static_cast<double>(box.time.Length()) + kPad);
}

double Enlargement(const geo::STBox& box, const geo::STBox& added,
                   double mps) {
  return WeightedVolume(geo::STBox::Union(box, added), mps) -
         WeightedVolume(box, mps);
}

// Squared weighted distance from a point to the nearest point of a box
// (0 when inside).
double MinSquaredDistance(const geo::STPoint& q, const geo::STBox& box,
                          const geo::STMetric& metric) {
  auto axis = [](double v, double lo, double hi) {
    if (v < lo) return lo - v;
    if (v > hi) return v - hi;
    return 0.0;
  };
  const double dx = axis(q.p.x, box.area.min_x, box.area.max_x);
  const double dy = axis(q.p.y, box.area.min_y, box.area.max_y);
  const double dt =
      metric.meters_per_second *
      axis(static_cast<double>(q.t), static_cast<double>(box.time.lo),
           static_cast<double>(box.time.hi));
  return dx * dx + dy * dy + dt * dt;
}

// Guttman's quadratic split over item boxes: returns the item indices of
// the two groups, each with at least `min_entries` members.
std::pair<std::vector<int>, std::vector<int>> QuadraticPartition(
    const std::vector<geo::STBox>& boxes, int min_entries, double mps) {
  const int n = static_cast<int>(boxes.size());
  // PickSeeds: the pair wasting the most volume if grouped together.
  int seed_a = 0;
  int seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double waste =
          WeightedVolume(geo::STBox::Union(boxes[i], boxes[j]), mps) -
          WeightedVolume(boxes[i], mps) - WeightedVolume(boxes[j], mps);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<int> group_a = {seed_a};
  std::vector<int> group_b = {seed_b};
  geo::STBox bounds_a = boxes[seed_a];
  geo::STBox bounds_b = boxes[seed_b];
  std::vector<int> remaining;
  for (int i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(i);
  }

  while (!remaining.empty()) {
    // If one group must take everything left to reach min_entries, do so.
    const int left = static_cast<int>(remaining.size());
    if (static_cast<int>(group_a.size()) + left == min_entries) {
      for (int i : remaining) group_a.push_back(i);
      break;
    }
    if (static_cast<int>(group_b.size()) + left == min_entries) {
      for (int i : remaining) group_b.push_back(i);
      break;
    }
    // PickNext: the item with the strongest preference.
    int best_pos = 0;
    double best_diff = -1.0;
    double best_da = 0.0;
    double best_db = 0.0;
    for (int pos = 0; pos < left; ++pos) {
      const double da = Enlargement(bounds_a, boxes[remaining[pos]], mps);
      const double db = Enlargement(bounds_b, boxes[remaining[pos]], mps);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best_pos = pos;
        best_da = da;
        best_db = db;
      }
    }
    const int item = remaining[best_pos];
    remaining.erase(remaining.begin() + best_pos);
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else if (WeightedVolume(bounds_a, mps) != WeightedVolume(bounds_b, mps)) {
      to_a = WeightedVolume(bounds_a, mps) < WeightedVolume(bounds_b, mps);
    } else {
      to_a = group_a.size() <= group_b.size();
    }
    if (to_a) {
      group_a.push_back(item);
      bounds_a.ExpandToInclude(boxes[item]);
    } else {
      group_b.push_back(item);
      bounds_b.ExpandToInclude(boxes[item]);
    }
  }
  return {std::move(group_a), std::move(group_b)};
}

}  // namespace

struct RTree::Node {
  bool leaf = true;
  geo::STBox bounds = geo::STBox::Empty();
  std::vector<Entry> entries;                   // leaf payload
  std::vector<std::unique_ptr<Node>> children;  // internal payload

  void RecomputeBounds() {
    bounds = geo::STBox::Empty();
    if (leaf) {
      for (const Entry& entry : entries) {
        bounds.ExpandToInclude(entry.sample);
      }
    } else {
      for (const auto& child : children) {
        bounds.ExpandToInclude(child->bounds);
      }
    }
  }
};

RTree::RTree(RTreeOptions options) : options_(options) {
  // A pathological min_entries (> half of max) would make splits impossible.
  if (options_.min_entries * 2 > options_.max_entries) {
    options_.min_entries = options_.max_entries / 2;
  }
  if (options_.min_entries < 1) options_.min_entries = 1;
}

RTree::~RTree() = default;

void RTree::Insert(mod::UserId user, const geo::STPoint& sample) {
  InsertEntry(Entry{user, sample});
  ++size_;
}

void RTree::InsertEntry(const Entry& entry) {
  const geo::STBox entry_box = geo::STBox::FromPoint(entry.sample);
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
    root_->entries.push_back(entry);
    root_->bounds = entry_box;
    return;
  }

  // Recursive insert; returns the new sibling if the node split.
  const double mps = options_.construction_meters_per_second;
  std::function<std::unique_ptr<Node>(Node*)> insert_rec =
      [&](Node* node) -> std::unique_ptr<Node> {
    node->bounds.ExpandToInclude(entry_box);
    if (node->leaf) {
      node->entries.push_back(entry);
      if (static_cast<int>(node->entries.size()) > options_.max_entries) {
        return SplitNode(node);
      }
      return nullptr;
    }
    // ChooseSubtree: least enlargement, ties by smaller volume.
    Node* chosen = node->children.front().get();
    double chosen_enlargement =
        Enlargement(chosen->bounds, entry_box, mps);
    for (size_t i = 1; i < node->children.size(); ++i) {
      Node* candidate = node->children[i].get();
      const double e = Enlargement(candidate->bounds, entry_box, mps);
      if (e < chosen_enlargement ||
          (e == chosen_enlargement &&
           WeightedVolume(candidate->bounds, mps) <
               WeightedVolume(chosen->bounds, mps))) {
        chosen = candidate;
        chosen_enlargement = e;
      }
    }
    std::unique_ptr<Node> sibling = insert_rec(chosen);
    if (sibling != nullptr) {
      node->children.push_back(std::move(sibling));
      if (static_cast<int>(node->children.size()) > options_.max_entries) {
        return SplitNode(node);
      }
    }
    return nullptr;
  };

  std::unique_ptr<Node> sibling = insert_rec(root_.get());
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeBounds();
    root_ = std::move(new_root);
  }
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  const double mps = options_.construction_meters_per_second;
  std::vector<geo::STBox> boxes;
  if (node->leaf) {
    boxes.reserve(node->entries.size());
    for (const Entry& entry : node->entries) {
      boxes.push_back(geo::STBox::FromPoint(entry.sample));
    }
  } else {
    boxes.reserve(node->children.size());
    for (const auto& child : node->children) boxes.push_back(child->bounds);
  }
  auto [group_a, group_b] =
      QuadraticPartition(boxes, options_.min_entries, mps);

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  if (node->leaf) {
    std::vector<Entry> kept;
    kept.reserve(group_a.size());
    for (int i : group_a) kept.push_back(node->entries[i]);
    for (int i : group_b) sibling->entries.push_back(node->entries[i]);
    node->entries = std::move(kept);
  } else {
    std::vector<std::unique_ptr<Node>> kept;
    kept.reserve(group_a.size());
    for (int i : group_a) kept.push_back(std::move(node->children[i]));
    for (int i : group_b) {
      sibling->children.push_back(std::move(node->children[i]));
    }
    node->children = std::move(kept);
  }
  node->RecomputeBounds();
  sibling->RecomputeBounds();
  return sibling;
}

RTree RTree::BulkLoad(std::vector<Entry> entries, RTreeOptions options) {
  RTree tree(options);
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  const int cap = tree.options_.max_entries;

  // Sort-Tile-Recursive packing of the leaf level.
  auto pack_leaves = [cap](std::vector<Entry> items) {
    const size_t n = items.size();
    const size_t leaf_count = (n + cap - 1) / cap;
    const size_t slabs =
        static_cast<size_t>(std::ceil(std::cbrt(static_cast<double>(
            leaf_count))));
    std::sort(items.begin(), items.end(), [](const Entry& a, const Entry& b) {
      return a.sample.p.x < b.sample.p.x;
    });
    std::vector<std::unique_ptr<Node>> leaves;
    const size_t slab_size = (n + slabs - 1) / slabs;
    for (size_t s = 0; s < n; s += slab_size) {
      const size_t slab_end = std::min(n, s + slab_size);
      std::sort(items.begin() + s, items.begin() + slab_end,
                [](const Entry& a, const Entry& b) {
                  return a.sample.p.y < b.sample.p.y;
                });
      const size_t strip_size =
          (slab_end - s + slabs - 1) / slabs;
      for (size_t y = s; y < slab_end; y += strip_size) {
        const size_t strip_end = std::min(slab_end, y + strip_size);
        std::sort(items.begin() + y, items.begin() + strip_end,
                  [](const Entry& a, const Entry& b) {
                    return a.sample.t < b.sample.t;
                  });
        for (size_t e = y; e < strip_end; e += cap) {
          const size_t leaf_end = std::min(strip_end, e + cap);
          auto leaf = std::make_unique<Node>();
          leaf->leaf = true;
          leaf->entries.assign(items.begin() + e, items.begin() + leaf_end);
          leaf->RecomputeBounds();
          leaves.push_back(std::move(leaf));
        }
      }
    }
    return leaves;
  };

  std::vector<std::unique_ptr<Node>> level = pack_leaves(std::move(entries));

  // Pack upper levels by center coordinates until one root remains.
  while (level.size() > 1) {
    const size_t n = level.size();
    const size_t parent_count = (n + cap - 1) / cap;
    const size_t slabs = static_cast<size_t>(
        std::ceil(std::cbrt(static_cast<double>(parent_count))));
    auto center_x = [](const std::unique_ptr<Node>& node) {
      return node->bounds.area.Center().x;
    };
    auto center_y = [](const std::unique_ptr<Node>& node) {
      return node->bounds.area.Center().y;
    };
    auto center_t = [](const std::unique_ptr<Node>& node) {
      return node->bounds.time.Center();
    };
    std::sort(level.begin(), level.end(),
              [&](const auto& a, const auto& b) {
                return center_x(a) < center_x(b);
              });
    std::vector<std::unique_ptr<Node>> parents;
    const size_t slab_size = (n + slabs - 1) / slabs;
    for (size_t s = 0; s < n; s += slab_size) {
      const size_t slab_end = std::min(n, s + slab_size);
      std::sort(level.begin() + s, level.begin() + slab_end,
                [&](const auto& a, const auto& b) {
                  return center_y(a) < center_y(b);
                });
      const size_t strip_size = (slab_end - s + slabs - 1) / slabs;
      for (size_t y = s; y < slab_end; y += strip_size) {
        const size_t strip_end = std::min(slab_end, y + strip_size);
        std::sort(level.begin() + y, level.begin() + strip_end,
                  [&](const auto& a, const auto& b) {
                    return center_t(a) < center_t(b);
                  });
        for (size_t c = y; c < strip_end; c += cap) {
          const size_t node_end = std::min(strip_end, c + cap);
          auto parent = std::make_unique<Node>();
          parent->leaf = false;
          for (size_t i = c; i < node_end; ++i) {
            parent->children.push_back(std::move(level[i]));
          }
          parent->RecomputeBounds();
          parents.push_back(std::move(parent));
        }
      }
    }
    level = std::move(parents);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

std::vector<Entry> RTree::RangeQuery(const geo::STBox& box) const {
  std::vector<Entry> hits;
  if (root_ == nullptr || box.IsEmpty()) return hits;
  std::function<void(const Node*)> visit = [&](const Node* node) {
    if (!node->bounds.Intersects(box)) return;
    if (node->leaf) {
      for (const Entry& entry : node->entries) {
        if (box.Contains(entry.sample)) hits.push_back(entry);
      }
      return;
    }
    for (const auto& child : node->children) visit(child.get());
  };
  visit(root_.get());
  return hits;
}

std::vector<UserNeighbor> RTree::NearestPerUser(
    const geo::STPoint& query, size_t k, mod::UserId exclude,
    const geo::STMetric& metric) const {
  std::vector<UserNeighbor> result;
  if (root_ == nullptr || k == 0) return result;

  struct QueueItem {
    double d2 = 0.0;
    const Node* node = nullptr;    // set for subtree items
    const Entry* entry = nullptr;  // set for sample items
  };
  // Pop order at EQUAL distance was heap-internal (and therefore
  // tree-shape-dependent), which made tied-distance answers differ from
  // the other indexes.  The fix: at equal d2, expand subtrees before
  // reporting entries — a node with min-distance v may still hold a
  // content-smaller sample tying v — and order tied entries by (user,
  // then sample content), matching the (distance, user) result order and
  // the SampleContentLess per-user canonicalization of grid/brute.
  struct Farther {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      if (a.d2 != b.d2) return a.d2 > b.d2;
      const bool a_entry = a.entry != nullptr;
      const bool b_entry = b.entry != nullptr;
      if (a_entry != b_entry) return a_entry;  // nodes pop before entries
      if (!a_entry) return false;              // tied nodes: any order
      if (a.entry->user != b.entry->user) return a.entry->user > b.entry->user;
      return SampleContentLess(b.entry->sample, a.entry->sample);
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, Farther> frontier;
  frontier.push(
      QueueItem{MinSquaredDistance(query, root_->bounds, metric), root_.get(),
                nullptr});

  // Best-first traversal yields samples in ascending distance, so the first
  // sample seen for each user is that user's nearest.
  std::unordered_set<mod::UserId> seen;
  while (!frontier.empty() && result.size() < k) {
    const QueueItem item = frontier.top();
    frontier.pop();
    if (item.entry != nullptr) {
      if (item.entry->user == exclude) continue;
      if (!seen.insert(item.entry->user).second) continue;
      result.push_back(UserNeighbor{item.entry->user, item.entry->sample,
                                    std::sqrt(item.d2)});
      continue;
    }
    const Node* node = item.node;
    if (node->leaf) {
      for (const Entry& entry : node->entries) {
        if (entry.user == exclude || seen.count(entry.user) > 0) continue;
        frontier.push(QueueItem{metric.SquaredDistance(entry.sample, query),
                                nullptr, &entry});
      }
    } else {
      for (const auto& child : node->children) {
        frontier.push(QueueItem{
            MinSquaredDistance(query, child->bounds, metric), child.get(),
            nullptr});
      }
    }
  }
  return result;
}

int RTree::Height() const {
  int height = 0;
  const Node* node = root_.get();
  while (node != nullptr) {
    ++height;
    node = node->leaf ? nullptr : node->children.front().get();
  }
  return height;
}

common::Status RTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? common::Status::OK()
                      : common::Status::Internal("null root with entries");
  }
  size_t counted = 0;
  int leaf_depth = -1;
  std::function<common::Status(const Node*, int)> check =
      [&](const Node* node, int depth) -> common::Status {
    if (node->leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (leaf_depth != depth) {
        return common::Status::Internal(
            common::Format("leaves at mixed depths %d vs %d", leaf_depth,
                           depth));
      }
      if (node->entries.empty()) {
        return common::Status::Internal("empty leaf node");
      }
      if (static_cast<int>(node->entries.size()) > options_.max_entries) {
        return common::Status::Internal("leaf fan-out above max_entries");
      }
      counted += node->entries.size();
      for (const Entry& entry : node->entries) {
        if (!node->bounds.Contains(entry.sample)) {
          return common::Status::Internal("leaf bounds miss an entry");
        }
      }
      return common::Status::OK();
    }
    if (node->children.empty()) {
      return common::Status::Internal("empty internal node");
    }
    if (static_cast<int>(node->children.size()) > options_.max_entries) {
      return common::Status::Internal("internal fan-out above max_entries");
    }
    for (const auto& child : node->children) {
      if (!node->bounds.Contains(child->bounds)) {
        return common::Status::Internal("parent bounds miss a child");
      }
      HISTKANON_RETURN_NOT_OK(check(child.get(), depth + 1));
    }
    return common::Status::OK();
  };
  HISTKANON_RETURN_NOT_OK(check(root_.get(), 0));
  if (counted != size_) {
    return common::Status::Internal(
        common::Format("size mismatch: counted %zu, recorded %zu", counted,
                       size_));
  }
  return common::Status::OK();
}

}  // namespace stindex
}  // namespace histkanon
