#include "src/stindex/index.h"

#include <algorithm>

namespace histkanon {
namespace stindex {

std::vector<mod::UserId> SpatioTemporalIndex::DistinctUsersIn(
    const geo::STBox& box) const {
  std::vector<mod::UserId> users;
  for (const Entry& entry : RangeQuery(box)) users.push_back(entry.user);
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

void LoadFromDb(const mod::ObjectStore& db, SpatioTemporalIndex* index) {
  db.ForEachSample([index](mod::UserId user, const geo::STPoint& sample) {
    index->Insert(user, sample);
  });
}

}  // namespace stindex
}  // namespace histkanon
