#include "src/stindex/sharded_view.h"

#include <algorithm>
#include <cassert>

namespace histkanon {
namespace stindex {

void ShardedIndexView::Insert(mod::UserId user, const geo::STPoint& sample) {
  (void)user;
  (void)sample;
  assert(false && "ShardedIndexView is read-only: insert into the slice");
}

size_t ShardedIndexView::size() const {
  size_t total = 0;
  for (const SpatioTemporalIndex* slice : slices_) total += slice->size();
  return total;
}

uint64_t ShardedIndexView::epoch() const {
  uint64_t total = 0;
  for (const SpatioTemporalIndex* slice : slices_) total += slice->epoch();
  return total;
}

std::vector<Entry> ShardedIndexView::RangeQuery(const geo::STBox& box) const {
  std::vector<Entry> entries;
  for (const SpatioTemporalIndex* slice : slices_) {
    const std::vector<Entry> part = slice->RangeQuery(box);
    entries.insert(entries.end(), part.begin(), part.end());
  }
  return entries;
}

std::vector<UserNeighbor> ShardedIndexView::NearestPerUser(
    const geo::STPoint& query, size_t k, mod::UserId exclude,
    const geo::STMetric& metric) const {
  std::vector<UserNeighbor> merged;
  for (const SpatioTemporalIndex* slice : slices_) {
    // Each slice's top-k per-user minima are a superset of its users'
    // contribution to the global top-k (users are disjoint by slice).
    const std::vector<UserNeighbor> part =
        slice->NearestPerUser(query, k, exclude, metric);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Re-rank exactly like a single index: compare SQUARED distances (the
  // concrete indexes' internal key, immune to sqrt rounding) with the
  // shared (distance, user) tie-break, then keep the first k.
  std::sort(merged.begin(), merged.end(),
            [&metric, &query](const UserNeighbor& a, const UserNeighbor& b) {
              const double da = metric.SquaredDistance(a.sample, query);
              const double db = metric.SquaredDistance(b.sample, query);
              if (da != db) return da < db;
              return a.user < b.user;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

}  // namespace stindex
}  // namespace histkanon
