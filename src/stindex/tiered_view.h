// A SpatioTemporalIndex over tiered PHL storage (DESIGN.md §16): the hot
// index answers for resident samples; queries whose answer could involve
// sealed history merge in samples faulted from the cold tier.
//
// The view is exact, not approximate — NearestPerUser re-derives the true
// per-user best through the archive-aware Phl query path whenever a cold
// sample could tie or beat the hot k-th answer.  A cold-read fault makes
// the answer hot-only AND bumps the tier's fault counter, which this view
// folds into its epoch: any memo keyed on the epoch self-invalidates, and
// the serving layer sheds the affected request instead of serving a wrong
// anonymity set.

#ifndef HISTKANON_SRC_STINDEX_TIERED_VIEW_H_
#define HISTKANON_SRC_STINDEX_TIERED_VIEW_H_

#include <string>
#include <vector>

#include "src/mod/cold_tier.h"
#include "src/mod/object_store.h"
#include "src/stindex/index.h"

namespace histkanon {
namespace stindex {

/// \brief Exact hot + cold merge view.  Insert goes to the hot index;
/// removal on seal is the owner's job (GridIndex::Remove).
class TieredIndexView : public SpatioTemporalIndex {
 public:
  /// None of the three are owned; all must outlive the view.
  TieredIndexView(SpatioTemporalIndex* hot, const mod::ColdTier* cold,
                  const mod::ObjectStore* store)
      : hot_(hot), cold_(cold), store_(store) {}

  const std::string& name() const override { return name_; }
  void Insert(mod::UserId user, const geo::STPoint& sample) override {
    hot_->Insert(user, sample);
  }
  /// Hot + sealed samples: monotonic across seals (a seal moves samples,
  /// never loses them).
  size_t size() const override {
    return hot_->size() + static_cast<size_t>(cold_->total_samples());
  }
  /// Hot epoch (bumped by Insert AND by the per-sample removals of a
  /// seal) plus the cold fault count, so any cached answer that may have
  /// been computed hot-only under a fault self-invalidates.
  uint64_t epoch() const override {
    return hot_->epoch() + cold_->fault_count();
  }
  std::vector<Entry> RangeQuery(const geo::STBox& box) const override;
  std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const override;

 private:
  std::string name_ = "tiered";
  SpatioTemporalIndex* hot_;
  const mod::ColdTier* cold_;
  const mod::ObjectStore* store_;
};

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_TIERED_VIEW_H_
