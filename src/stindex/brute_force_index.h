// The paper's baseline: "a brute-force algorithm by simply considering the
// nearest neighbor in the PHL of each user and then taking the closest k
// points ... worst case complexity O(k*n)" (Section 6.2).

#ifndef HISTKANON_SRC_STINDEX_BRUTE_FORCE_INDEX_H_
#define HISTKANON_SRC_STINDEX_BRUTE_FORCE_INDEX_H_

#include <string>
#include <vector>

#include "src/stindex/index.h"

namespace histkanon {
namespace stindex {

/// \brief Flat-array index; every query scans all samples.
class BruteForceIndex : public SpatioTemporalIndex {
 public:
  BruteForceIndex() = default;

  const std::string& name() const override { return name_; }
  void Insert(mod::UserId user, const geo::STPoint& sample) override;
  size_t size() const override { return entries_.size(); }
  std::vector<Entry> RangeQuery(const geo::STBox& box) const override;
  std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const override;

 private:
  std::string name_ = "brute";
  std::vector<Entry> entries_;
};

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_BRUTE_FORCE_INDEX_H_
