// Spatio-temporal index interface over PHL samples.
//
// Algorithm 1 line 5 needs, for a request point q, the k distinct users
// whose nearest PHL sample (under a weighted 3D metric) is closest to q.
// The paper notes the brute-force cost O(k*n) and that "optimizations may
// be inspired by the work on indexing moving objects"; this module
// provides the brute-force baseline plus a uniform grid and a 3D R-tree
// (benchmarked against each other in experiment E4).

#ifndef HISTKANON_SRC_STINDEX_INDEX_H_
#define HISTKANON_SRC_STINDEX_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/geo/stbox.h"
#include "src/mod/object_store.h"
#include "src/mod/types.h"

namespace histkanon {
namespace stindex {

/// \brief One indexed PHL sample.
struct Entry {
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint sample;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.user == b.user && a.sample == b.sample;
  }
};

/// \brief A (user, nearest-sample, distance) answer of NearestPerUser.
struct UserNeighbor {
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint sample;
  double distance = 0.0;
};

/// \brief Index over (user, <x,y,t>) samples supporting the queries the
/// generalization algorithm and anonymity evaluation need.
class SpatioTemporalIndex {
 public:
  virtual ~SpatioTemporalIndex() = default;

  /// Index implementation name ("brute", "grid", "rtree").
  virtual const std::string& name() const = 0;

  /// Adds one sample.
  virtual void Insert(mod::UserId user, const geo::STPoint& sample) = 0;

  /// Number of samples indexed.
  virtual size_t size() const = 0;

  /// All entries whose sample lies inside `box`.
  virtual std::vector<Entry> RangeQuery(const geo::STBox& box) const = 0;

  /// The `k` distinct users (excluding `exclude`) whose nearest sample to
  /// `query` under `metric` is smallest, each with that nearest sample,
  /// sorted by ascending distance.  Returns fewer than k when fewer
  /// distinct users exist.
  virtual std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const = 0;

  /// Distinct users with a sample in `box` (derived from RangeQuery; the
  /// anonymity-set size of the box).
  std::vector<mod::UserId> DistinctUsersIn(const geo::STBox& box) const;
};

/// Bulk-loads every sample of `db` into `index`.
void LoadFromDb(const mod::ObjectStore& db, SpatioTemporalIndex* index);

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_INDEX_H_
