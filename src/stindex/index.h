// Spatio-temporal index interface over PHL samples.
//
// Algorithm 1 line 5 needs, for a request point q, the k distinct users
// whose nearest PHL sample (under a weighted 3D metric) is closest to q.
// The paper notes the brute-force cost O(k*n) and that "optimizations may
// be inspired by the work on indexing moving objects"; this module
// provides the brute-force baseline plus a uniform grid and a 3D R-tree
// (benchmarked against each other in experiment E4).

#ifndef HISTKANON_SRC_STINDEX_INDEX_H_
#define HISTKANON_SRC_STINDEX_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/geo/stbox.h"
#include "src/mod/object_store.h"
#include "src/mod/types.h"

namespace histkanon {
namespace stindex {

/// \brief One indexed PHL sample.
struct Entry {
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint sample;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.user == b.user && a.sample == b.sample;
  }
};

/// \brief A (user, nearest-sample, distance) answer of NearestPerUser.
struct UserNeighbor {
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint sample;
  double distance = 0.0;
};

/// Content order over samples: (t, x, y) lexicographic.  Every index uses
/// this to break EQUAL-distance ties among one user's samples, so the
/// per-user representative is a pure function of the indexed content —
/// independent of insertion order, cell iteration order, tree shape, and
/// of the query's k/exclude parameters.  That canonical-answer property is
/// what lets the anchored-candidate cache (src/anon/generalize.h) derive a
/// k-with-exclusion answer from a shared (k+1)-without-exclusion one, and
/// what keeps batch-vs-serial differential comparisons tie-flake-free.
inline bool SampleContentLess(const geo::STPoint& a, const geo::STPoint& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.p.x != b.p.x) return a.p.x < b.p.x;
  return a.p.y < b.p.y;
}

/// \brief Index over (user, <x,y,t>) samples supporting the queries the
/// generalization algorithm and anonymity evaluation need.
class SpatioTemporalIndex {
 public:
  virtual ~SpatioTemporalIndex() = default;

  /// Index implementation name ("brute", "grid", "rtree").
  virtual const std::string& name() const = 0;

  /// Adds one sample.
  virtual void Insert(mod::UserId user, const geo::STPoint& sample) = 0;

  /// Number of samples indexed.
  virtual size_t size() const = 0;

  /// Change ticket for cache invalidation: any value observed twice
  /// guarantees the index content did not change in between.  Insert is
  /// the only mutator and strictly grows size(), so the default derives
  /// the epoch from it; implementations with their own mutation counter
  /// override (GridIndex), and fan-out views sum their slices
  /// (ShardedIndexView).
  virtual uint64_t epoch() const { return static_cast<uint64_t>(size()); }

  /// All entries whose sample lies inside `box`.
  virtual std::vector<Entry> RangeQuery(const geo::STBox& box) const = 0;

  /// The `k` distinct users (excluding `exclude`) whose nearest sample to
  /// `query` under `metric` is smallest, each with that nearest sample,
  /// sorted by ascending distance.  Returns fewer than k when fewer
  /// distinct users exist.
  virtual std::vector<UserNeighbor> NearestPerUser(
      const geo::STPoint& query, size_t k, mod::UserId exclude,
      const geo::STMetric& metric) const = 0;

  /// Distinct users with a sample in `box` (derived from RangeQuery; the
  /// anonymity-set size of the box).
  std::vector<mod::UserId> DistinctUsersIn(const geo::STBox& box) const;
};

/// Bulk-loads every sample of `db` into `index`.
void LoadFromDb(const mod::ObjectStore& db, SpatioTemporalIndex* index);

}  // namespace stindex
}  // namespace histkanon

#endif  // HISTKANON_SRC_STINDEX_INDEX_H_
