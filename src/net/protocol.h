// Message types and body codecs of the HKNETRP1 RPC protocol
// (DESIGN.md §15).  Every message body is encoded with the durability
// layer's little-endian primitives (dur::ByteWriter/ByteReader), so wire
// bytes are platform-independent and every decoder treats truncation as a
// typed error, never UB.
//
// Correlation model: every client->server message carries a client-chosen
// `request_id`; every reply echoes it.  Requests always get exactly one
// reply (ResponseBox / Suppressed / Unlinked / Throttled / Error);
// Register gets a RegisterAck (or Throttled); location updates are
// fire-and-forget on the happy path but STILL get a Throttled reply when
// shed — the protocol never drops silently.
//
// The rare composite submissions (LBQID registration, expert rule sets)
// reuse the journal event codec (src/ts/durability.h) as their body: the
// wire carries exactly the bytes the write-ahead journal would, so the
// wire-vs-in-process differential is byte-exact by construction.

#ifndef HISTKANON_SRC_NET_PROTOCOL_H_
#define HISTKANON_SRC_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/geo/point.h"
#include "src/geo/stbox.h"
#include "src/mod/types.h"
#include "src/net/framing.h"
#include "src/ts/policy.h"
#include "src/ts/trusted_server.h"

namespace histkanon {
namespace net {

/// Frame types.  Client->server requests live in 0x01..0x0f, server->
/// client replies in 0x10..0x1f; an unknown type is a protocol error.
enum class MsgType : uint8_t {
  // -- client -> server
  kRegister = 0x01,       ///< Register a user with a privacy policy.
  kUpdate = 0x02,         ///< Location update (fire-and-forget unless shed).
  kRequest = 0x03,        ///< Service request (always answered).
  kEndEpoch = 0x04,       ///< Close the server's batch window now.
  kRegisterLbqid = 0x05,  ///< Attach an LBQID (journal-event body).
  kSetRules = 0x06,       ///< Attach an expert rule set (journal-event body).
  // -- server -> client
  kRegisterAck = 0x10,  ///< Registration admitted (code 0) or failed.
  kResponseBox = 0x11,  ///< Forwarded: msgid, pseudonym, generalized box.
  kSuppressed = 0x12,   ///< Suppressed (mix-zone quiet / at-risk dropped).
  kUnlinked = 0x13,     ///< Suppressed AND the pseudonym was rotated.
  kThrottled = 0x14,    ///< Shed by overload protection; retry later.
  kError = 0x15,        ///< Protocol or server error.
};

/// "register" / "response_box" / ... (diagnostics and counter names).
std::string_view MsgTypeToString(MsgType type);

// -- Client -> server bodies -------------------------------------------------

/// \brief kRegister body: the full quantitative policy (not just the
/// qualitative dial) so a wire registration is bit-equivalent to an
/// in-process RegisterUser call.
struct RegisterMsg {
  uint64_t request_id = 0;
  mod::UserId user = mod::kInvalidUser;
  ts::PrivacyPolicy policy;
};

/// \brief kUpdate body.
struct UpdateMsg {
  uint64_t request_id = 0;
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint sample;
};

/// \brief kRequest body.
struct RequestMsg {
  uint64_t request_id = 0;
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint exact;
  mod::ServiceId service = 0;
  std::string data;
};

/// \brief kRegisterLbqid / kSetRules body: a journal-event payload
/// (EncodeJournalEvent bytes) whose kind must match the frame type.
struct EventMsg {
  uint64_t request_id = 0;
  std::string journal_event;
};

// -- Server -> client bodies -------------------------------------------------

/// \brief Every reply decoded into one struct; `type` says which fields
/// are meaningful.  (The wire encodes only the fields of the given type.)
struct ReplyMsg {
  MsgType type = MsgType::kError;
  uint64_t request_id = 0;
  /// kResponseBox / kSuppressed: the server-side disposition.
  ts::Disposition disposition = ts::Disposition::kForwardedDefault;
  /// kResponseBox: the forwarded view (paper Section 3's SP tuple).
  mod::MessageId msgid = 0;
  std::string pseudonym;
  geo::STBox context;
  mod::ServiceId service = 0;
  std::string data;
  /// kThrottled: client backoff hint + shed reason.
  uint32_t retry_after_ms = 0;
  std::string reason;
  /// kRegisterAck / kError: status code (0 = OK) + message.
  uint32_t code = 0;
  std::string message;
};

// -- Body codecs -------------------------------------------------------------
//
// Encode* returns the BODY bytes (frame it with AppendFrame); Decode*
// parses a frame body and fails with InvalidArgument/OutOfRange on
// malformed input (hostile bytes are expected — fuzzed in
// tests/net_framing_fuzz_test.cc).

std::string EncodeRegister(const RegisterMsg& msg);
common::Result<RegisterMsg> DecodeRegister(std::string_view body);

std::string EncodeUpdate(const UpdateMsg& msg);
common::Result<UpdateMsg> DecodeUpdate(std::string_view body);

std::string EncodeRequest(const RequestMsg& msg);
common::Result<RequestMsg> DecodeRequest(std::string_view body);

std::string EncodeEvent(const EventMsg& msg);
common::Result<EventMsg> DecodeEvent(std::string_view body);

std::string EncodeReply(const ReplyMsg& msg);
/// `type` is the frame type the body arrived under.
common::Result<ReplyMsg> DecodeReply(MsgType type, std::string_view body);

/// Builds the reply for one served request outcome: kResponseBox when it
/// was forwarded, kUnlinked for a pseudonym rotation, kThrottled for a
/// shard-level deadline shed (kRejected), kSuppressed otherwise.
ReplyMsg ReplyForOutcome(uint64_t request_id, const ts::ProcessOutcome& outcome,
                         uint32_t retry_after_ms);

}  // namespace net
}  // namespace histkanon

#endif  // HISTKANON_SRC_NET_PROTOCOL_H_
