#include "src/net/server.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/str.h"
#include "src/fail/failpoint.h"
#include "src/fail/sites.h"
#include "src/ts/durability.h"

namespace histkanon {
namespace net {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

RpcServer::RpcServer(ts::ConcurrentServer* server, RpcServerOptions options)
    : server_(server), options_(std::move(options)) {
  if (options_.registry != nullptr) {
    obs::Registry& registry = *options_.registry;
    sessions_gauge_ = registry.GetGauge("net_sessions_active");
    accepted_counter_ = registry.GetCounter("net_accepted_total");
    frames_counter_ = registry.GetCounter("net_frames_received_total");
    replies_counter_ = registry.GetCounter("net_replies_sent_total");
    throttled_counter_ = registry.GetCounter("net_throttled_total");
    protocol_errors_counter_ =
        registry.GetCounter("net_protocol_errors_total");
    disconnects_counter_ = registry.GetCounter("net_disconnects_total");
  }
}

RpcServer::~RpcServer() { Stop(); }

common::Status RpcServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return common::Status::FailedPrecondition("rpc server already running");
  }
  if (::pipe(wake_fds_) != 0) {
    return common::Status::Internal("pipe() failed");
  }
  SetNonBlocking(wake_fds_[0]);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    return common::Status::Internal("socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return common::Status::Internal(common::Format(
        "bind(127.0.0.1:%u) failed", unsigned{options_.port}));
  }
  if (::listen(fd, options_.backlog) != 0) {
    ::close(fd);
    return common::Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return common::Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(fd);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return common::Status::OK();
}

void RpcServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll loop so it observes running_ == false promptly.
  const char byte = 'x';
  (void)!::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
}

RpcServer::Session* RpcServer::FindSession(uint64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void RpcServer::ServeLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_sessions;  // fds[i] -> session id (0 = control)
  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_sessions.clear();
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    fd_sessions.push_back(0);
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fd_sessions.push_back(0);
    for (auto& [id, session] : sessions_) {
      short events = POLLIN;
      if (session.out_offset < session.out.size()) events |= POLLOUT;
      fds.push_back(pollfd{session.fd, events, 0});
      fd_sessions.push_back(id);
    }
    const int timeout = pending_.empty()
                            ? -1
                            : static_cast<int>(options_.window_timeout_ms);
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready == 0) {
      // Idle with an open window: a lone blocking client is waiting.
      FlushWindow();
      continue;
    }
    if (ready < 0) continue;  // EINTR
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) AcceptNew();
    for (size_t i = 2; i < fds.size(); ++i) {
      Session* session = FindSession(fd_sessions[i]);
      if (session == nullptr) continue;  // closed earlier this round
      if ((fds[i].revents & POLLOUT) != 0) TryFlushOut(*session);
      // Re-find: TryFlushOut may have closed a doomed/stalled session.
      session = FindSession(fd_sessions[i]);
      if (session == nullptr) continue;
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        ReadSession(*session);
      }
    }
    if (pending_.size() >= options_.max_window_requests) FlushWindow();
  }
  // Final flush: answer whatever was admitted, then close everything.  A
  // clean shutdown (no pending requests) skips the drain — it would
  // journal an epoch marker the in-process twin never writes.
  if (!pending_.empty()) FlushWindow();
  for (auto& [id, session] : sessions_) {
    TryFlushOut(session);
    HISTKANON_FAILPOINT_HIT(fail::kNetClose);
    ::close(session.fd);
  }
  sessions_.clear();
  sessions_active_.store(0, std::memory_order_relaxed);
  if (sessions_gauge_ != nullptr) sessions_gauge_->Set(0.0);
}

void RpcServer::AcceptNew() {
  for (;;) {
    const fail::Action fault = HISTKANON_FAILPOINT(fail::kNetAccept);
    if (fault.kind == fail::ActionKind::kError) return;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient: the acceptor never exits
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_session_id_++;
    Session& session = sessions_[id];
    session.fd = fd;
    session.id = id;
    AppendWireMagic(&session.out);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    sessions_active_.store(sessions_.size(), std::memory_order_relaxed);
    if (accepted_counter_ != nullptr) accepted_counter_->Increment();
    if (sessions_gauge_ != nullptr) {
      sessions_gauge_->Set(static_cast<double>(sessions_.size()));
    }
    TryFlushOut(session);
  }
}

void RpcServer::CloseSession(uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  HISTKANON_FAILPOINT_HIT(fail::kNetClose);
  ::close(it->second.fd);
  sessions_.erase(it);
  disconnects_.fetch_add(1, std::memory_order_relaxed);
  sessions_active_.store(sessions_.size(), std::memory_order_relaxed);
  if (disconnects_counter_ != nullptr) disconnects_counter_->Increment();
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->Set(static_cast<double>(sessions_.size()));
  }
}

void RpcServer::TryFlushOut(Session& session) {
  while (session.out_offset < session.out.size()) {
    const fail::Action fault = HISTKANON_FAILPOINT(fail::kNetWrite);
    ssize_t n;
    if (fault.kind == fail::ActionKind::kError) {
      n = -1;
      errno = ECONNRESET;
    } else {
      n = ::send(session.fd, session.out.data() + session.out_offset,
                 session.out.size() - session.out_offset, MSG_NOSIGNAL);
    }
    if (n > 0) {
      session.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer vanished (or injected write fault): the session is gone; any
    // admitted requests still complete, their replies are discarded.
    CloseSession(session.id);
    return;
  }
  session.out.clear();
  session.out_offset = 0;
  if (session.doomed) CloseSession(session.id);
}

void RpcServer::QueueReply(Session& session, uint64_t trace_id,
                           const ReplyMsg& reply) {
  AppendFrame(&session.out, static_cast<uint8_t>(reply.type), trace_id,
              EncodeReply(reply));
  replies_out_.fetch_add(1, std::memory_order_relaxed);
  if (replies_counter_ != nullptr) replies_counter_->Increment();
  if (reply.type == MsgType::kThrottled) {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    if (throttled_counter_ != nullptr) throttled_counter_->Increment();
  }
  if (session.out.size() - session.out_offset >
      options_.max_out_buffer_bytes) {
    // Stalled client: it is not reading its replies; disconnecting is the
    // bounded-memory alternative to buffering without limit.
    CloseSession(session.id);
  }
}

void RpcServer::ProtocolError(Session& session, uint64_t request_id,
                              const std::string& message) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  if (protocol_errors_counter_ != nullptr) {
    protocol_errors_counter_->Increment();
  }
  ReplyMsg reply;
  reply.type = MsgType::kError;
  reply.request_id = request_id;
  reply.code = 1;
  reply.message = message;
  session.doomed = true;
  QueueReply(session, 0, reply);
  Session* alive = FindSession(session.id);
  if (alive != nullptr) TryFlushOut(*alive);
}

void RpcServer::ReadSession(Session& session) {
  const uint64_t id = session.id;
  char buffer[16 * 1024];
  for (;;) {
    const fail::Action fault = HISTKANON_FAILPOINT(fail::kNetRead);
    ssize_t n;
    if (fault.kind == fail::ActionKind::kError) {
      n = -1;
      errno = ECONNRESET;
    } else {
      n = ::recv(session.fd, buffer, sizeof(buffer), 0);
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n <= 0) {
      // Peer closed or reset (possibly mid-frame).  Nothing to roll
      // back: unadmitted bytes never touched the ConcurrentServer.
      CloseSession(id);
      return;
    }
    session.decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    Frame frame;
    for (;;) {
      const FrameDecoder::Poll poll = session.decoder.Next(&frame);
      if (poll == FrameDecoder::Poll::kNeedMore) break;
      if (poll == FrameDecoder::Poll::kError) {
        ProtocolError(session, 0, session.decoder.error());
        return;
      }
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      if (frames_counter_ != nullptr) frames_counter_->Increment();
      HandleFrame(session, frame);
      // The frame may have doomed or closed the session.
      if (FindSession(id) == nullptr || session.doomed) return;
    }
    if (static_cast<size_t>(n) < sizeof(buffer)) return;
  }
}

void RpcServer::HandleFrame(Session& session, const Frame& frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kRegister:
      HandleRegister(session, frame);
      return;
    case MsgType::kUpdate:
      HandleUpdate(session, frame);
      return;
    case MsgType::kRequest:
      HandleRequest(session, frame);
      return;
    case MsgType::kEndEpoch:
      FlushWindow();
      return;
    case MsgType::kRegisterLbqid:
    case MsgType::kSetRules:
      HandleEvent(session, frame);
      return;
    default:
      ProtocolError(session, 0,
                    common::Format("unexpected frame type 0x%02x",
                                   unsigned{frame.type}));
      return;
  }
}

void RpcServer::HandleRegister(Session& session, const Frame& frame) {
  common::Result<RegisterMsg> msg = DecodeRegister(frame.body);
  if (!msg.ok()) {
    ProtocolError(session, 0, msg.status().ToString());
    return;
  }
  ReplyMsg reply;
  reply.request_id = msg->request_id;
  if (server_->SubmitRegisterUser(msg->user, msg->policy)) {
    reply.type = MsgType::kRegisterAck;
    reply.code = 0;
  } else {
    reply.type = MsgType::kThrottled;
    reply.retry_after_ms = options_.retry_after_ms;
    reply.reason = server_->last_submit_error().ToString();
  }
  QueueReply(session, frame.trace_id, reply);
}

void RpcServer::HandleUpdate(Session& session, const Frame& frame) {
  common::Result<UpdateMsg> msg = DecodeUpdate(frame.body);
  if (!msg.ok()) {
    ProtocolError(session, 0, msg.status().ToString());
    return;
  }
  if (server_->SubmitLocationUpdate(msg->user, msg->sample)) return;
  // Fire-and-forget only on the happy path: a shed update is reported,
  // never silently dropped.
  ReplyMsg reply;
  reply.type = MsgType::kThrottled;
  reply.request_id = msg->request_id;
  reply.retry_after_ms = options_.retry_after_ms;
  reply.reason = server_->last_submit_error().ToString();
  QueueReply(session, frame.trace_id, reply);
}

void RpcServer::HandleRequest(Session& session, const Frame& frame) {
  common::Result<RequestMsg> msg = DecodeRequest(frame.body);
  if (!msg.ok()) {
    ProtocolError(session, 0, msg.status().ToString());
    return;
  }
  // The trace id (if causal tracing is attached) is allocated by the
  // front-end exactly when admission succeeds; observing the allocator
  // advance recovers it without peeking at the server's options.
  const uint64_t tid_before = server_->next_trace_id();
  const size_t ordinal =
      server_->SubmitRequest(msg->user, msg->exact, msg->service,
                             std::move(msg->data));
  if (ordinal == ts::ConcurrentServer::kShedSubmission) {
    ReplyMsg reply;
    reply.type = MsgType::kThrottled;
    reply.request_id = msg->request_id;
    reply.retry_after_ms = options_.retry_after_ms;
    reply.reason = server_->last_submit_error().ToString();
    QueueReply(session, frame.trace_id, reply);
    return;
  }
  PendingReply pending;
  pending.ordinal = ordinal;
  pending.session = session.id;
  pending.request_id = msg->request_id;
  pending.trace_id =
      server_->next_trace_id() != tid_before ? tid_before : frame.trace_id;
  pending_.push_back(pending);
}

void RpcServer::HandleEvent(Session& session, const Frame& frame) {
  common::Result<EventMsg> msg = DecodeEvent(frame.body);
  if (!msg.ok()) {
    ProtocolError(session, 0, msg.status().ToString());
    return;
  }
  if (options_.granularities == nullptr) {
    ProtocolError(session, msg->request_id,
                  "server has no granularity registry for event frames");
    return;
  }
  common::Result<ts::JournalEvent> event =
      ts::DecodeJournalEvent(msg->journal_event, *options_.granularities);
  if (!event.ok()) {
    ProtocolError(session, msg->request_id, event.status().ToString());
    return;
  }
  const MsgType type = static_cast<MsgType>(frame.type);
  bool admitted = false;
  if (type == MsgType::kRegisterLbqid &&
      event->kind == ts::JournalEvent::Kind::kRegisterLbqid &&
      event->lbqid != nullptr) {
    admitted = server_->SubmitRegisterLbqid(event->user, *event->lbqid);
  } else if (type == MsgType::kSetRules &&
             event->kind == ts::JournalEvent::Kind::kSetRules &&
             event->rules != nullptr) {
    admitted = server_->SubmitSetUserRules(event->user, *event->rules);
  } else {
    ProtocolError(session, msg->request_id,
                  "journal-event body does not match the frame type");
    return;
  }
  ReplyMsg reply;
  reply.request_id = msg->request_id;
  if (admitted) {
    reply.type = MsgType::kRegisterAck;
    reply.code = 0;
  } else {
    reply.type = MsgType::kThrottled;
    reply.retry_after_ms = options_.retry_after_ms;
    reply.reason = server_->last_submit_error().ToString();
  }
  QueueReply(session, frame.trace_id, reply);
}

void RpcServer::FlushWindow() {
  // Always drain, even with no pending requests: a client kEndEpoch must
  // journal its epoch marker (wire-vs-in-process parity), and location
  // updates in the window become visible.
  const std::vector<ts::ProcessOutcome> window = server_->DrainWindow();
  windows_.fetch_add(1, std::memory_order_relaxed);
  const size_t base = server_->drained_through() - window.size();
  for (const PendingReply& pending : pending_) {
    Session* session = FindSession(pending.session);
    if (session == nullptr) continue;  // disconnected while queued
    const size_t index = pending.ordinal - base;
    if (index >= window.size()) continue;  // defensive; cannot happen
    QueueReply(*session, pending.trace_id,
               ReplyForOutcome(pending.request_id, window[index],
                               options_.retry_after_ms));
  }
  pending_.clear();
  // Push replies out now; what the sockets refuse waits for POLLOUT.
  to_close_.clear();
  for (auto& [id, session] : sessions_) {
    if (session.out_offset < session.out.size()) to_close_.push_back(id);
  }
  for (const uint64_t id : to_close_) {
    Session* session = FindSession(id);
    if (session != nullptr) TryFlushOut(*session);
  }
}

}  // namespace net
}  // namespace histkanon
