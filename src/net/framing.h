// Wire framing for the networked RPC front-end (DESIGN.md §15).
//
// Each direction of a connection is an independent byte stream:
//
//   stream := magic frame*             magic = "HKNETRP1" (8 bytes)
//   frame  := u32 length | u32 crc32(payload) | payload
//   payload:= u8 type | u8 version | u64 trace_id | body
//
// The frame layout deliberately reuses the durability layer's record
// framing (src/dur/framing.h: same little-endian header, same CRC-32,
// same incremental parser) — the wire is "a journal whose file is a
// socket", so every torn-tail/bit-rot guarantee the recovery scan proved
// carries over to hostile network bytes.  The differences are the magic
// (a journal must never be replayable as a connection, or vice versa) and
// a much smaller per-frame payload cap: a peer-supplied length prefix
// must never make the server allocate 64 MiB.
//
// FrameDecoder is the incremental, session-owned half: feed it whatever
// recv() produced (any chunking, including one byte at a time) and poll
// complete frames out.  Corruption — bad magic, oversized length, CRC
// mismatch, unknown version — is STICKY: once a stream desyncs there is
// no way to find the next frame boundary, so the decoder latches kError
// and the session must be closed (the server sends a final Error frame).
// tests/net_framing_fuzz_test.cc drives this with a mutating corpus.

#ifndef HISTKANON_SRC_NET_FRAMING_H_
#define HISTKANON_SRC_NET_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace histkanon {
namespace net {

/// The 8-byte preamble each direction sends before its first frame.
std::string_view WireMagic();

/// Per-frame payload cap (1 MiB).  A length prefix beyond it is treated
/// as corruption; bounds what a hostile peer can make the server buffer.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

/// Payload header size: u8 type + u8 version + u64 trace_id.
inline constexpr size_t kFrameHeaderBytes = 10;

/// The protocol version every frame carries (bumped on incompatible
/// layout changes; a decoder rejects versions it does not speak).
inline constexpr uint8_t kProtocolVersion = 1;

/// \brief One decoded frame: the typed header plus the message body
/// (owned — valid independent of the decoder's internal buffer).
struct Frame {
  uint8_t type = 0;
  uint8_t version = kProtocolVersion;
  /// The request's causal-trace id (0 = untraced).  Replies carry the id
  /// the server allocated at admission, so a wire client can find its
  /// request in the Perfetto timeline.
  uint64_t trace_id = 0;
  std::string body;
};

/// Appends the wire magic to the start-of-stream buffer.
void AppendWireMagic(std::string* out);

/// Appends one framed message (header + body under one CRC) to `out`.
void AppendFrame(std::string* out, uint8_t type, uint64_t trace_id,
                 std::string_view body);

/// \brief Incremental frame decoder for one receive direction.
class FrameDecoder {
 public:
  enum class Poll : uint8_t {
    kFrame = 0,     ///< `*out` holds the next complete frame.
    kNeedMore = 1,  ///< No complete frame buffered; Feed() more bytes.
    kError = 2,     ///< Stream desynced (sticky); close the session.
  };

  /// Appends received bytes to the internal buffer.  No-op after an
  /// error (the session is already doomed; don't buffer garbage).
  void Feed(std::string_view bytes);

  /// Extracts the next complete frame, if any.
  Poll Next(Frame* out);

  /// True once the stream has desynced (sticky until Reset).
  bool failed() const { return failed_; }
  /// Why the stream desynced (empty while healthy).
  const std::string& error() const { return error_; }

  /// True once the peer's magic preamble has been consumed.
  bool saw_magic() const { return saw_magic_; }

  /// Bytes buffered but not yet consumed (partial-frame tail).
  size_t buffered() const { return buffer_.size() - consumed_; }

  /// Frames successfully decoded so far.
  uint64_t frames_decoded() const { return frames_decoded_; }

  /// Returns the decoder to its start-of-stream state (new connection).
  void Reset();

 private:
  Poll Fail(std::string message);

  std::string buffer_;
  size_t consumed_ = 0;
  bool saw_magic_ = false;
  bool failed_ = false;
  std::string error_;
  uint64_t frames_decoded_ = 0;
};

}  // namespace net
}  // namespace histkanon

#endif  // HISTKANON_SRC_NET_FRAMING_H_
