#include "src/net/framing.h"

#include <utility>

#include "src/dur/encode.h"
#include "src/dur/framing.h"

namespace histkanon {
namespace net {

namespace {
constexpr std::string_view kMagic = "HKNETRP1";
}  // namespace

std::string_view WireMagic() { return kMagic; }

void AppendWireMagic(std::string* out) { out->append(kMagic); }

void AppendFrame(std::string* out, uint8_t type, uint64_t trace_id,
                 std::string_view body) {
  dur::ByteWriter payload;
  payload.PutU8(type);
  payload.PutU8(kProtocolVersion);
  payload.PutU64(trace_id);
  std::string bytes = payload.TakeBytes();
  bytes.append(body.data(), body.size());
  dur::AppendRecord(out, bytes);
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (failed_) return;
  // Compact the consumed prefix before growing the buffer, so a
  // long-lived session's memory stays bounded by one partial frame.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > kMaxFramePayload) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Poll FrameDecoder::Fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  buffer_.clear();
  consumed_ = 0;
  return Poll::kError;
}

FrameDecoder::Poll FrameDecoder::Next(Frame* out) {
  if (failed_) return Poll::kError;
  if (!saw_magic_) {
    const size_t have = buffer_.size() - consumed_;
    const size_t want = kMagic.size();
    const std::string_view head(buffer_.data() + consumed_,
                                have < want ? have : want);
    if (head != kMagic.substr(0, head.size())) {
      return Fail("bad wire magic (not an HKNETRP1 stream)");
    }
    if (have < want) return Poll::kNeedMore;
    consumed_ += want;
    saw_magic_ = true;
  }
  std::string_view payload;
  size_t record_bytes = 0;
  std::string error;
  switch (dur::ParseRecordAt(buffer_, consumed_, kMaxFramePayload, &payload,
                             &record_bytes, &error)) {
    case dur::RecordParse::kNeedMore:
      return Poll::kNeedMore;
    case dur::RecordParse::kBad:
      return Fail(std::move(error));
    case dur::RecordParse::kRecord:
      break;
  }
  if (payload.size() < kFrameHeaderBytes) {
    return Fail("frame payload shorter than its typed header");
  }
  dur::ByteReader reader(payload);
  uint8_t type = 0;
  uint8_t version = 0;
  uint64_t trace_id = 0;
  if (!reader.ReadU8(&type).ok() || !reader.ReadU8(&version).ok() ||
      !reader.ReadU64(&trace_id).ok()) {
    return Fail("frame header decode failed");
  }
  if (version != kProtocolVersion) {
    return Fail("unsupported protocol version");
  }
  out->type = type;
  out->version = version;
  out->trace_id = trace_id;
  out->body.assign(payload.data() + kFrameHeaderBytes,
                   payload.size() - kFrameHeaderBytes);
  consumed_ += record_bytes;
  ++frames_decoded_;
  return Poll::kFrame;
}

void FrameDecoder::Reset() {
  buffer_.clear();
  consumed_ = 0;
  saw_magic_ = false;
  failed_ = false;
  error_.clear();
  frames_decoded_ = 0;
}

}  // namespace net
}  // namespace histkanon
