#include "src/net/protocol.h"

#include "src/dur/encode.h"

namespace histkanon {
namespace net {

namespace {

void PutPoint(dur::ByteWriter* writer, const geo::STPoint& point) {
  writer->PutDouble(point.p.x);
  writer->PutDouble(point.p.y);
  writer->PutI64(point.t);
}

common::Status ReadPoint(dur::ByteReader* reader, geo::STPoint* point) {
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&point->p.x));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&point->p.y));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&point->t));
  return common::Status::OK();
}

void PutBox(dur::ByteWriter* writer, const geo::STBox& box) {
  writer->PutDouble(box.area.min_x);
  writer->PutDouble(box.area.min_y);
  writer->PutDouble(box.area.max_x);
  writer->PutDouble(box.area.max_y);
  writer->PutI64(box.time.lo);
  writer->PutI64(box.time.hi);
}

common::Status ReadBox(dur::ByteReader* reader, geo::STBox* box) {
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.min_x));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.min_y));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.max_x));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.max_y));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&box->time.lo));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&box->time.hi));
  return common::Status::OK();
}

common::Status CheckDrained(const dur::ByteReader& reader) {
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument("trailing bytes after message");
  }
  return common::Status::OK();
}

common::Status ReadDisposition(dur::ByteReader* reader,
                               ts::Disposition* disposition) {
  uint8_t raw = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU8(&raw));
  if (raw >= ts::kDispositionCount) {
    return common::Status::InvalidArgument("disposition byte out of range");
  }
  *disposition = static_cast<ts::Disposition>(raw);
  return common::Status::OK();
}

}  // namespace

std::string_view MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kRegister:
      return "register";
    case MsgType::kUpdate:
      return "update";
    case MsgType::kRequest:
      return "request";
    case MsgType::kEndEpoch:
      return "end_epoch";
    case MsgType::kRegisterLbqid:
      return "register_lbqid";
    case MsgType::kSetRules:
      return "set_rules";
    case MsgType::kRegisterAck:
      return "register_ack";
    case MsgType::kResponseBox:
      return "response_box";
    case MsgType::kSuppressed:
      return "suppressed";
    case MsgType::kUnlinked:
      return "unlinked";
    case MsgType::kThrottled:
      return "throttled";
    case MsgType::kError:
      return "error";
  }
  return "unknown";
}

std::string EncodeRegister(const RegisterMsg& msg) {
  dur::ByteWriter writer;
  writer.PutU64(msg.request_id);
  writer.PutI64(msg.user);
  writer.PutU8(static_cast<uint8_t>(msg.policy.concern));
  writer.PutU64(msg.policy.k);
  writer.PutDouble(msg.policy.theta);
  writer.PutDouble(msg.policy.k_schedule.initial_factor);
  writer.PutU64(msg.policy.k_schedule.decrement_per_step);
  writer.PutDouble(msg.policy.default_context_scale);
  return writer.TakeBytes();
}

common::Result<RegisterMsg> DecodeRegister(std::string_view body) {
  dur::ByteReader reader(body);
  RegisterMsg msg;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&msg.request_id));
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&msg.user));
  uint8_t concern = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU8(&concern));
  if (concern > static_cast<uint8_t>(ts::PrivacyConcern::kHigh)) {
    return common::Status::InvalidArgument("privacy concern out of range");
  }
  msg.policy.concern = static_cast<ts::PrivacyConcern>(concern);
  uint64_t k = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&k));
  msg.policy.k = static_cast<size_t>(k);
  HISTKANON_RETURN_NOT_OK(reader.ReadDouble(&msg.policy.theta));
  HISTKANON_RETURN_NOT_OK(
      reader.ReadDouble(&msg.policy.k_schedule.initial_factor));
  uint64_t decrement = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&decrement));
  msg.policy.k_schedule.decrement_per_step = static_cast<size_t>(decrement);
  HISTKANON_RETURN_NOT_OK(reader.ReadDouble(&msg.policy.default_context_scale));
  HISTKANON_RETURN_NOT_OK(CheckDrained(reader));
  return msg;
}

std::string EncodeUpdate(const UpdateMsg& msg) {
  dur::ByteWriter writer;
  writer.PutU64(msg.request_id);
  writer.PutI64(msg.user);
  PutPoint(&writer, msg.sample);
  return writer.TakeBytes();
}

common::Result<UpdateMsg> DecodeUpdate(std::string_view body) {
  dur::ByteReader reader(body);
  UpdateMsg msg;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&msg.request_id));
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&msg.user));
  HISTKANON_RETURN_NOT_OK(ReadPoint(&reader, &msg.sample));
  HISTKANON_RETURN_NOT_OK(CheckDrained(reader));
  return msg;
}

std::string EncodeRequest(const RequestMsg& msg) {
  dur::ByteWriter writer;
  writer.PutU64(msg.request_id);
  writer.PutI64(msg.user);
  PutPoint(&writer, msg.exact);
  writer.PutI32(msg.service);
  writer.PutString(msg.data);
  return writer.TakeBytes();
}

common::Result<RequestMsg> DecodeRequest(std::string_view body) {
  dur::ByteReader reader(body);
  RequestMsg msg;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&msg.request_id));
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&msg.user));
  HISTKANON_RETURN_NOT_OK(ReadPoint(&reader, &msg.exact));
  HISTKANON_RETURN_NOT_OK(reader.ReadI32(&msg.service));
  HISTKANON_RETURN_NOT_OK(reader.ReadString(&msg.data));
  HISTKANON_RETURN_NOT_OK(CheckDrained(reader));
  return msg;
}

std::string EncodeEvent(const EventMsg& msg) {
  dur::ByteWriter writer;
  writer.PutU64(msg.request_id);
  writer.PutString(msg.journal_event);
  return writer.TakeBytes();
}

common::Result<EventMsg> DecodeEvent(std::string_view body) {
  dur::ByteReader reader(body);
  EventMsg msg;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&msg.request_id));
  HISTKANON_RETURN_NOT_OK(reader.ReadString(&msg.journal_event));
  HISTKANON_RETURN_NOT_OK(CheckDrained(reader));
  return msg;
}

std::string EncodeReply(const ReplyMsg& msg) {
  dur::ByteWriter writer;
  writer.PutU64(msg.request_id);
  switch (msg.type) {
    case MsgType::kRegisterAck:
    case MsgType::kError:
      writer.PutU32(msg.code);
      writer.PutString(msg.message);
      break;
    case MsgType::kResponseBox:
      writer.PutU8(static_cast<uint8_t>(msg.disposition));
      writer.PutI64(msg.msgid);
      writer.PutString(msg.pseudonym);
      PutBox(&writer, msg.context);
      writer.PutI32(msg.service);
      writer.PutString(msg.data);
      break;
    case MsgType::kSuppressed:
      writer.PutU8(static_cast<uint8_t>(msg.disposition));
      break;
    case MsgType::kUnlinked:
      break;
    case MsgType::kThrottled:
      writer.PutU32(msg.retry_after_ms);
      writer.PutString(msg.reason);
      break;
    default:
      break;
  }
  return writer.TakeBytes();
}

common::Result<ReplyMsg> DecodeReply(MsgType type, std::string_view body) {
  dur::ByteReader reader(body);
  ReplyMsg msg;
  msg.type = type;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&msg.request_id));
  switch (type) {
    case MsgType::kRegisterAck:
    case MsgType::kError:
      HISTKANON_RETURN_NOT_OK(reader.ReadU32(&msg.code));
      HISTKANON_RETURN_NOT_OK(reader.ReadString(&msg.message));
      break;
    case MsgType::kResponseBox:
      HISTKANON_RETURN_NOT_OK(ReadDisposition(&reader, &msg.disposition));
      HISTKANON_RETURN_NOT_OK(reader.ReadI64(&msg.msgid));
      HISTKANON_RETURN_NOT_OK(reader.ReadString(&msg.pseudonym));
      HISTKANON_RETURN_NOT_OK(ReadBox(&reader, &msg.context));
      HISTKANON_RETURN_NOT_OK(reader.ReadI32(&msg.service));
      HISTKANON_RETURN_NOT_OK(reader.ReadString(&msg.data));
      break;
    case MsgType::kSuppressed:
      HISTKANON_RETURN_NOT_OK(ReadDisposition(&reader, &msg.disposition));
      break;
    case MsgType::kUnlinked:
      break;
    case MsgType::kThrottled:
      HISTKANON_RETURN_NOT_OK(reader.ReadU32(&msg.retry_after_ms));
      HISTKANON_RETURN_NOT_OK(reader.ReadString(&msg.reason));
      break;
    default:
      return common::Status::InvalidArgument("not a reply frame type");
  }
  HISTKANON_RETURN_NOT_OK(CheckDrained(reader));
  return msg;
}

ReplyMsg ReplyForOutcome(uint64_t request_id,
                         const ts::ProcessOutcome& outcome,
                         uint32_t retry_after_ms) {
  ReplyMsg reply;
  reply.request_id = request_id;
  reply.disposition = outcome.disposition;
  if (outcome.forwarded) {
    reply.type = MsgType::kResponseBox;
    reply.msgid = outcome.forwarded_request.msgid;
    reply.pseudonym = outcome.forwarded_request.pseudonym;
    reply.context = outcome.forwarded_request.context;
    reply.service = outcome.forwarded_request.service;
    reply.data = outcome.forwarded_request.data;
    return reply;
  }
  switch (outcome.disposition) {
    case ts::Disposition::kUnlinked:
      reply.type = MsgType::kUnlinked;
      break;
    case ts::Disposition::kRejected:
      // A shard-level deadline shed: surfaced as backpressure, not as a
      // privacy suppression (the request never entered the pipeline).
      reply.type = MsgType::kThrottled;
      reply.retry_after_ms = retry_after_ms;
      reply.reason = "queue_deadline";
      break;
    default:
      reply.type = MsgType::kSuppressed;
      break;
  }
  return reply;
}

}  // namespace net
}  // namespace histkanon
