#include "src/net/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/str.h"

namespace histkanon {
namespace net {

common::Status RpcClient::Connect(uint16_t port) {
  if (fd_ >= 0) {
    return common::Status::FailedPrecondition("client already connected");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return common::Status::Internal("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return common::Status::Internal(
        common::Format("connect(127.0.0.1:%u) failed", unsigned{port}));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_.Reset();
  stash_.clear();
  std::string magic;
  AppendWireMagic(&magic);
  return WriteAll(magic.data(), magic.size());
}

void RpcClient::Close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

common::Status RpcClient::WriteAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      Close();
      return common::Status::Unavailable("connection lost while sending");
    }
    sent += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

common::Result<uint64_t> RpcClient::SendFrame(MsgType type, uint64_t trace_id,
                                              const std::string& body) {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  const uint64_t request_id = next_request_id_;
  std::string wire;
  AppendFrame(&wire, static_cast<uint8_t>(type), trace_id, body);
  HISTKANON_RETURN_NOT_OK(WriteAll(wire.data(), wire.size()));
  ++next_request_id_;
  return request_id;
}

common::Result<uint64_t> RpcClient::SendRegister(
    mod::UserId user, const ts::PrivacyPolicy& policy, uint64_t trace_id) {
  RegisterMsg msg;
  msg.request_id = next_request_id_;
  msg.user = user;
  msg.policy = policy;
  return SendFrame(MsgType::kRegister, trace_id, EncodeRegister(msg));
}

common::Result<uint64_t> RpcClient::SendUpdate(mod::UserId user,
                                               const geo::STPoint& sample,
                                               uint64_t trace_id) {
  UpdateMsg msg;
  msg.request_id = next_request_id_;
  msg.user = user;
  msg.sample = sample;
  return SendFrame(MsgType::kUpdate, trace_id, EncodeUpdate(msg));
}

common::Result<uint64_t> RpcClient::SendRequest(mod::UserId user,
                                                const geo::STPoint& exact,
                                                mod::ServiceId service,
                                                std::string data,
                                                uint64_t trace_id) {
  RequestMsg msg;
  msg.request_id = next_request_id_;
  msg.user = user;
  msg.exact = exact;
  msg.service = service;
  msg.data = std::move(data);
  return SendFrame(MsgType::kRequest, trace_id, EncodeRequest(msg));
}

common::Result<uint64_t> RpcClient::SendEvent(MsgType type,
                                              std::string journal_event,
                                              uint64_t trace_id) {
  if (type != MsgType::kRegisterLbqid && type != MsgType::kSetRules) {
    return common::Status::InvalidArgument("not an event frame type");
  }
  EventMsg msg;
  msg.request_id = next_request_id_;
  msg.journal_event = std::move(journal_event);
  return SendFrame(type, trace_id, EncodeEvent(msg));
}

common::Status RpcClient::SendEndEpoch() {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  std::string wire;
  AppendFrame(&wire, static_cast<uint8_t>(MsgType::kEndEpoch), 0, "");
  return WriteAll(wire.data(), wire.size());
}

common::Status RpcClient::ReadSome(bool blocking, bool* progressed) {
  *progressed = false;
  char buffer[16 * 1024];
  const ssize_t n =
      ::recv(fd_, buffer, sizeof(buffer), blocking ? 0 : MSG_DONTWAIT);
  if (n > 0) {
    decoder_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    *progressed = true;
    return common::Status::OK();
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return common::Status::OK();
  }
  Close();
  return common::Status::Unavailable("connection closed by server");
}

common::Result<bool> RpcClient::DrainDecoded(uint64_t until, bool any,
                                             WireReply* out) {
  Frame frame;
  for (;;) {
    const FrameDecoder::Poll poll = decoder_.Next(&frame);
    if (poll == FrameDecoder::Poll::kNeedMore) return false;
    if (poll == FrameDecoder::Poll::kError) {
      Close();
      return common::Status::Internal(
          common::Format("reply stream desynced: %s",
                         decoder_.error().c_str()));
    }
    common::Result<ReplyMsg> reply =
        DecodeReply(static_cast<MsgType>(frame.type), frame.body);
    if (!reply.ok()) {
      Close();
      return reply.status();
    }
    WireReply wire;
    wire.msg = std::move(*reply);
    wire.trace_id = frame.trace_id;
    if (any || wire.msg.request_id == until) {
      *out = std::move(wire);
      return true;
    }
    stash_[wire.msg.request_id] = std::move(wire);
  }
}

common::Result<WireReply> RpcClient::WaitReply(uint64_t request_id) {
  const auto it = stash_.find(request_id);
  if (it != stash_.end()) {
    WireReply reply = std::move(it->second);
    stash_.erase(it);
    return reply;
  }
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  WireReply reply;
  for (;;) {
    HISTKANON_ASSIGN_OR_RETURN(
        const bool found, DrainDecoded(request_id, /*any=*/false, &reply));
    if (found) return reply;
    bool progressed = false;
    HISTKANON_RETURN_NOT_OK(ReadSome(/*blocking=*/true, &progressed));
    if (!progressed) {
      return common::Status::Unavailable("connection closed by server");
    }
  }
}

common::Result<WireReply> RpcClient::WaitAnyReply() {
  if (!stash_.empty()) {
    const auto it = stash_.begin();
    WireReply reply = std::move(it->second);
    stash_.erase(it);
    return reply;
  }
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  WireReply reply;
  for (;;) {
    HISTKANON_ASSIGN_OR_RETURN(const bool found,
                               DrainDecoded(0, /*any=*/true, &reply));
    if (found) return reply;
    bool progressed = false;
    HISTKANON_RETURN_NOT_OK(ReadSome(/*blocking=*/true, &progressed));
    if (!progressed) {
      return common::Status::Unavailable("connection closed by server");
    }
  }
}

uint32_t RpcClient::RetryBackoffMs(const RetryOptions& options,
                                   mod::UserId user, int attempt,
                                   uint32_t retry_after_ms) {
  // Cap the exponent before shifting so a large attempt count cannot
  // overflow into a tiny backoff.
  uint64_t base = options.initial_backoff_ms;
  for (int i = 0; i < attempt && base < options.max_backoff_ms; ++i) {
    base <<= 1;
  }
  base = std::min<uint64_t>(base, options.max_backoff_ms);
  // Deterministic jitter into [base/2, base]: splitmix64 over the seed,
  // user, and attempt, so a fleet with distinct users (or seeds)
  // decorrelates while any single run stays reproducible.
  uint64_t x = options.jitter_seed ^ (static_cast<uint64_t>(user) *
                                     0x9E3779B97F4A7C15ull) ^
               (static_cast<uint64_t>(attempt) + 1);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  const uint64_t half = base / 2;
  uint64_t jittered = half + (half > 0 ? x % (base - half + 1) : 0);
  // The server's hint is a floor, not a suggestion: it knows how long the
  // breaker needs.
  return static_cast<uint32_t>(
      std::max<uint64_t>(jittered, retry_after_ms));
}

common::Result<WireReply> RpcClient::RequestWithRetry(
    mod::UserId user, const geo::STPoint& exact, mod::ServiceId service,
    std::string data, const RetryOptions& options, uint64_t trace_id,
    RetryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const int max_attempts = std::max(options.max_attempts, 1);
  RetryStats local;
  WireReply last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++local.attempts;
    common::Result<uint64_t> request_id =
        SendRequest(user, exact, service, data, trace_id);
    if (!request_id.ok()) {
      if (stats != nullptr) *stats = local;
      return request_id.status();
    }
    common::Result<WireReply> reply = WaitReply(*request_id);
    if (!reply.ok()) {
      if (stats != nullptr) *stats = local;
      return reply.status();
    }
    last = std::move(*reply);
    if (last.msg.type != MsgType::kThrottled) {
      if (stats != nullptr) *stats = local;
      return last;
    }
    ++local.throttled_replies;
    if (attempt + 1 == max_attempts) break;
    const uint32_t backoff_ms =
        RetryBackoffMs(options, user, attempt, last.msg.retry_after_ms);
    if (options.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed + backoff_ms / 1000.0 > options.deadline_seconds) {
        local.deadline_exhausted = true;
        break;
      }
    }
    local.backoff_ms_total += backoff_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
  if (stats != nullptr) *stats = local;
  return last;  // the last Throttled reply: callers see the shed reason
}

common::Status RpcClient::PollReplies() {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  for (;;) {
    bool progressed = false;
    HISTKANON_RETURN_NOT_OK(ReadSome(/*blocking=*/false, &progressed));
    for (;;) {
      WireReply reply;
      common::Result<bool> found = DrainDecoded(0, /*any=*/true, &reply);
      HISTKANON_RETURN_NOT_OK(found.status());
      if (!*found) break;
      stash_[reply.msg.request_id] = std::move(reply);
    }
    if (!progressed) return common::Status::OK();
  }
}

}  // namespace net
}  // namespace histkanon
