#include "src/net/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/str.h"

namespace histkanon {
namespace net {

common::Status RpcClient::Connect(uint16_t port) {
  if (fd_ >= 0) {
    return common::Status::FailedPrecondition("client already connected");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return common::Status::Internal("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return common::Status::Internal(
        common::Format("connect(127.0.0.1:%u) failed", unsigned{port}));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_.Reset();
  stash_.clear();
  std::string magic;
  AppendWireMagic(&magic);
  return WriteAll(magic.data(), magic.size());
}

void RpcClient::Close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

common::Status RpcClient::WriteAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      Close();
      return common::Status::Unavailable("connection lost while sending");
    }
    sent += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

common::Result<uint64_t> RpcClient::SendFrame(MsgType type, uint64_t trace_id,
                                              const std::string& body) {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  const uint64_t request_id = next_request_id_;
  std::string wire;
  AppendFrame(&wire, static_cast<uint8_t>(type), trace_id, body);
  HISTKANON_RETURN_NOT_OK(WriteAll(wire.data(), wire.size()));
  ++next_request_id_;
  return request_id;
}

common::Result<uint64_t> RpcClient::SendRegister(
    mod::UserId user, const ts::PrivacyPolicy& policy, uint64_t trace_id) {
  RegisterMsg msg;
  msg.request_id = next_request_id_;
  msg.user = user;
  msg.policy = policy;
  return SendFrame(MsgType::kRegister, trace_id, EncodeRegister(msg));
}

common::Result<uint64_t> RpcClient::SendUpdate(mod::UserId user,
                                               const geo::STPoint& sample,
                                               uint64_t trace_id) {
  UpdateMsg msg;
  msg.request_id = next_request_id_;
  msg.user = user;
  msg.sample = sample;
  return SendFrame(MsgType::kUpdate, trace_id, EncodeUpdate(msg));
}

common::Result<uint64_t> RpcClient::SendRequest(mod::UserId user,
                                                const geo::STPoint& exact,
                                                mod::ServiceId service,
                                                std::string data,
                                                uint64_t trace_id) {
  RequestMsg msg;
  msg.request_id = next_request_id_;
  msg.user = user;
  msg.exact = exact;
  msg.service = service;
  msg.data = std::move(data);
  return SendFrame(MsgType::kRequest, trace_id, EncodeRequest(msg));
}

common::Result<uint64_t> RpcClient::SendEvent(MsgType type,
                                              std::string journal_event,
                                              uint64_t trace_id) {
  if (type != MsgType::kRegisterLbqid && type != MsgType::kSetRules) {
    return common::Status::InvalidArgument("not an event frame type");
  }
  EventMsg msg;
  msg.request_id = next_request_id_;
  msg.journal_event = std::move(journal_event);
  return SendFrame(type, trace_id, EncodeEvent(msg));
}

common::Status RpcClient::SendEndEpoch() {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  std::string wire;
  AppendFrame(&wire, static_cast<uint8_t>(MsgType::kEndEpoch), 0, "");
  return WriteAll(wire.data(), wire.size());
}

common::Status RpcClient::ReadSome(bool blocking, bool* progressed) {
  *progressed = false;
  char buffer[16 * 1024];
  const ssize_t n =
      ::recv(fd_, buffer, sizeof(buffer), blocking ? 0 : MSG_DONTWAIT);
  if (n > 0) {
    decoder_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    *progressed = true;
    return common::Status::OK();
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return common::Status::OK();
  }
  Close();
  return common::Status::Unavailable("connection closed by server");
}

common::Result<bool> RpcClient::DrainDecoded(uint64_t until, bool any,
                                             WireReply* out) {
  Frame frame;
  for (;;) {
    const FrameDecoder::Poll poll = decoder_.Next(&frame);
    if (poll == FrameDecoder::Poll::kNeedMore) return false;
    if (poll == FrameDecoder::Poll::kError) {
      Close();
      return common::Status::Internal(
          common::Format("reply stream desynced: %s",
                         decoder_.error().c_str()));
    }
    common::Result<ReplyMsg> reply =
        DecodeReply(static_cast<MsgType>(frame.type), frame.body);
    if (!reply.ok()) {
      Close();
      return reply.status();
    }
    WireReply wire;
    wire.msg = std::move(*reply);
    wire.trace_id = frame.trace_id;
    if (any || wire.msg.request_id == until) {
      *out = std::move(wire);
      return true;
    }
    stash_[wire.msg.request_id] = std::move(wire);
  }
}

common::Result<WireReply> RpcClient::WaitReply(uint64_t request_id) {
  const auto it = stash_.find(request_id);
  if (it != stash_.end()) {
    WireReply reply = std::move(it->second);
    stash_.erase(it);
    return reply;
  }
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  WireReply reply;
  for (;;) {
    HISTKANON_ASSIGN_OR_RETURN(
        const bool found, DrainDecoded(request_id, /*any=*/false, &reply));
    if (found) return reply;
    bool progressed = false;
    HISTKANON_RETURN_NOT_OK(ReadSome(/*blocking=*/true, &progressed));
    if (!progressed) {
      return common::Status::Unavailable("connection closed by server");
    }
  }
}

common::Result<WireReply> RpcClient::WaitAnyReply() {
  if (!stash_.empty()) {
    const auto it = stash_.begin();
    WireReply reply = std::move(it->second);
    stash_.erase(it);
    return reply;
  }
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  WireReply reply;
  for (;;) {
    HISTKANON_ASSIGN_OR_RETURN(const bool found,
                               DrainDecoded(0, /*any=*/true, &reply));
    if (found) return reply;
    bool progressed = false;
    HISTKANON_RETURN_NOT_OK(ReadSome(/*blocking=*/true, &progressed));
    if (!progressed) {
      return common::Status::Unavailable("connection closed by server");
    }
  }
}

common::Status RpcClient::PollReplies() {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  for (;;) {
    bool progressed = false;
    HISTKANON_RETURN_NOT_OK(ReadSome(/*blocking=*/false, &progressed));
    for (;;) {
      WireReply reply;
      common::Result<bool> found = DrainDecoded(0, /*any=*/true, &reply);
      HISTKANON_RETURN_NOT_OK(found.status());
      if (!*found) break;
      stash_[reply.msg.request_id] = std::move(reply);
    }
    if (!progressed) return common::Status::OK();
  }
}

}  // namespace net
}  // namespace histkanon
