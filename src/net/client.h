// Blocking client for the HKNETRP1 RPC protocol: one loopback TCP
// connection, request-id correlation, and an out-of-order reply stash so
// callers can interleave fire-and-forget updates with awaited requests.
// Used by the conformance tests and (as N independent instances or via
// the raw framing helpers) by bench/loadgen.

#ifndef HISTKANON_SRC_NET_CLIENT_H_
#define HISTKANON_SRC_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/net/framing.h"
#include "src/net/protocol.h"

namespace histkanon {
namespace net {

/// \brief One reply as received off the wire: the decoded body plus the
/// trace id from the frame header (the Perfetto handle for this request).
struct WireReply {
  ReplyMsg msg;
  uint64_t trace_id = 0;
};

/// \brief Retry policy for RequestWithRetry: capped exponential backoff
/// with deterministic jitter, honoring the server's Throttled
/// `retry_after_ms` hint as a floor.
struct RetryOptions {
  /// Total tries, including the first.  1 = no retries.
  int max_attempts = 5;
  /// Backoff before retry i (0-based) is `initial_backoff_ms << i`,
  /// capped at `max_backoff_ms`, then jittered into [1/2, 1] of itself
  /// so a synchronized fleet of clients decorrelates.
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 2000;
  /// Wall-clock budget for the whole send+retry sequence; once sleeping
  /// would cross it, the last Throttled reply is returned as-is.  Zero
  /// means no deadline.
  double deadline_seconds = 0.0;
  /// Seed for the jitter PRNG, mixed with the user id so identical
  /// configs still spread.  Deterministic for a given (seed, user,
  /// attempt) — load tests stay reproducible.
  uint64_t jitter_seed = 1;
};

/// \brief What a RequestWithRetry call actually did, for load reporting.
struct RetryStats {
  int attempts = 0;
  int throttled_replies = 0;
  uint64_t backoff_ms_total = 0;
  /// True when the sequence gave up on the deadline rather than on
  /// attempts or success.
  bool deadline_exhausted = false;
};

/// \brief A blocking HKNETRP1 connection.
class RpcClient {
 public:
  RpcClient() = default;
  ~RpcClient() { Close(); }

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Connects to 127.0.0.1:`port` and sends the wire magic.
  common::Status Connect(uint16_t port);

  /// Closes the connection (idempotent).
  void Close();

  bool connected() const { return fd_ >= 0; }
  /// The raw socket, for tests that need byte-level control (chaos tests
  /// send partial frames and hard-close).
  int fd() const { return fd_; }

  // -- Sends.  Each returns the request id chosen for the message (echo
  // correlation) or an error when the connection is gone.  `trace_id` is
  // what the frame header carries (0 = let the server allocate).

  common::Result<uint64_t> SendRegister(mod::UserId user,
                                        const ts::PrivacyPolicy& policy,
                                        uint64_t trace_id = 0);
  common::Result<uint64_t> SendUpdate(mod::UserId user,
                                      const geo::STPoint& sample,
                                      uint64_t trace_id = 0);
  common::Result<uint64_t> SendRequest(mod::UserId user,
                                       const geo::STPoint& exact,
                                       mod::ServiceId service,
                                       std::string data,
                                       uint64_t trace_id = 0);
  /// kRegisterLbqid / kSetRules: `journal_event` is EncodeJournalEvent
  /// bytes whose kind matches `type`.
  common::Result<uint64_t> SendEvent(MsgType type, std::string journal_event,
                                     uint64_t trace_id = 0);
  /// Asks the server to close its batch window now (no reply).
  common::Status SendEndEpoch();

  // -- Receives.

  /// Sends a service request and waits for its reply, retrying Throttled
  /// replies under `options` (capped exponential backoff + jitter, the
  /// server's `retry_after_ms` honored as a floor).  Returns the first
  /// non-Throttled reply; when attempts or the deadline run out, returns
  /// the LAST Throttled reply so callers can see the shed reason.
  /// Transport errors are not retried — a lost connection needs a
  /// reconnect, which is the caller's decision.
  common::Result<WireReply> RequestWithRetry(mod::UserId user,
                                             const geo::STPoint& exact,
                                             mod::ServiceId service,
                                             std::string data,
                                             const RetryOptions& options,
                                             uint64_t trace_id = 0,
                                             RetryStats* stats = nullptr);

  /// The backoff RequestWithRetry would sleep before 0-based retry
  /// `attempt` (exposed for tests: pure function of the inputs).
  static uint32_t RetryBackoffMs(const RetryOptions& options,
                                 mod::UserId user, int attempt,
                                 uint32_t retry_after_ms);

  /// Blocks until the reply for `request_id` arrives.  Replies for other
  /// request ids received meanwhile are stashed and returned by their own
  /// WaitReply later.  Fails when the server closes the connection first.
  common::Result<WireReply> WaitReply(uint64_t request_id);

  /// Blocks until ANY reply arrives (stash first), e.g. a shed update's
  /// Throttled.
  common::Result<WireReply> WaitAnyReply();

  /// Drains replies already received without blocking (stash + whatever
  /// the socket has buffered).  OK with an empty stash is normal.
  common::Status PollReplies();
  /// The stashed not-yet-claimed replies, keyed by request id.
  std::map<uint64_t, WireReply>& stash() { return stash_; }

 private:
  common::Result<uint64_t> SendFrame(MsgType type, uint64_t trace_id,
                                     const std::string& body);
  common::Status WriteAll(const char* data, size_t size);
  /// Reads one recv() worth of bytes into the decoder; `blocking` selects
  /// MSG_DONTWAIT.  False = connection closed (status explains).
  common::Status ReadSome(bool blocking, bool* progressed);
  /// Decodes buffered frames into the stash; stops on `until` if found.
  common::Result<bool> DrainDecoded(uint64_t until, bool any,
                                    WireReply* out);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  std::map<uint64_t, WireReply> stash_;
};

}  // namespace net
}  // namespace histkanon

#endif  // HISTKANON_SRC_NET_CLIENT_H_
