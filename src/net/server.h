// The socket-facing RPC front-end (DESIGN.md §15): a poll-based acceptor
// plus ONE serving thread that owns the ConcurrentServer's single-producer
// stream.  Received frames are decoded (src/net/framing.h), admitted
// through the existing batch-window / CircuitBreaker / BoundedEventQueue
// path, and answered when the window drains:
//
//   read -> decode -> Submit* (write-ahead admission) -> [window fills or
//   times out] -> ConcurrentServer::DrainWindow() -> one reply per request
//
// Backpressure is a protocol feature, not an accident: every shed — the
// breaker open, a full shard queue, a shard deadline — becomes a
// Throttled{retry_after_ms} reply carrying the shed reason.  The server
// never drops a request silently (fire-and-forget location updates
// excepted on the happy path; their SHEDS still get a Throttled).
//
// Threading: the serving thread is the only producer while the server
// runs — the owner must not call Submit*/EndEpoch/Checkpoint between
// Start() and Stop().  After Stop() the ConcurrentServer is the owner's
// again (Finish(), Checkpoint(), outcomes() all work as usual).
//
// Stalled clients cannot wedge the server: session sockets are
// non-blocking, unsent replies buffer per session, and a buffer past
// max_out_buffer_bytes disconnects the session (its admitted requests
// still complete — admission is journaled; only the replies are lost).

#ifndef HISTKANON_SRC_NET_SERVER_H_
#define HISTKANON_SRC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/net/framing.h"
#include "src/net/protocol.h"
#include "src/obs/metrics.h"
#include "src/tgran/granularity.h"
#include "src/ts/concurrent_server.h"

namespace histkanon {
namespace net {

/// \brief Construction parameters for the serving layer.
struct RpcServerOptions {
  /// Loopback TCP port; 0 binds an ephemeral port (read it back with
  /// port() — every test uses this, no hardcoded ports).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// The window flush threshold: DrainWindow() runs once this many
  /// requests are pending, batching admission like the in-process batch
  /// engine.  1 = serve every request immediately (lowest latency).
  size_t max_window_requests = 64;
  /// An open window with pending requests also flushes after this long
  /// without new traffic, so a lone blocking client is never stranded.
  int64_t window_timeout_ms = 5;
  /// The backoff hint carried by every Throttled reply.
  uint32_t retry_after_ms = 50;
  /// Per-session unsent-reply cap; beyond it the session is declared
  /// stalled and disconnected.
  size_t max_out_buffer_bytes = 4u << 20;
  /// Resolves granularity names inside wire LBQID registrations
  /// (kRegisterLbqid / kSetRules frames); nullptr rejects those frames.
  const tgran::GranularityRegistry* granularities = nullptr;
  /// Optional metrics (net_* counters/gauges); not owned.
  obs::Registry* registry = nullptr;
};

/// \brief The networked serving layer in front of a ConcurrentServer.
class RpcServer {
 public:
  /// `server` is not owned and must outlive this object.
  RpcServer(ts::ConcurrentServer* server, RpcServerOptions options);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and starts the serving thread.
  common::Status Start();

  /// Flushes the open window, closes every session, and joins the serving
  /// thread.  Idempotent.  The ConcurrentServer stays live (not Finished).
  void Stop();

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  // -- Serving-thread counters (atomic: readable from any thread).

  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t sessions_active() const {
    return sessions_active_.load(std::memory_order_relaxed);
  }
  uint64_t frames_received() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  uint64_t replies_sent() const {
    return replies_out_.load(std::memory_order_relaxed);
  }
  /// Throttled replies issued (front-end sheds + shard deadline sheds).
  uint64_t throttled() const {
    return throttled_.load(std::memory_order_relaxed);
  }
  /// Sessions dropped for hostile bytes (desync, bad body, bad type).
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  /// Sessions dropped for any reason (peer reset, stall, protocol error).
  uint64_t disconnects() const {
    return disconnects_.load(std::memory_order_relaxed);
  }
  /// DrainWindow() rounds run.
  uint64_t windows_flushed() const {
    return windows_.load(std::memory_order_relaxed);
  }

 private:
  /// One accepted connection's state, keyed by a never-reused id (a
  /// pending reply must not chase a recycled fd).
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    /// Unsent bytes (wire magic, then replies), drained on POLLOUT.
    std::string out;
    size_t out_offset = 0;
    /// True once a fatal Error reply is queued: close after out drains.
    bool doomed = false;
  };

  /// One admitted-but-unanswered request: which session asked, under
  /// which client request id, and the trace id admission allocated.
  struct PendingReply {
    size_t ordinal = 0;
    uint64_t session = 0;
    uint64_t request_id = 0;
    uint64_t trace_id = 0;
  };

  void ServeLoop();
  void AcceptNew();
  /// Reads whatever the socket has; decodes and handles complete frames.
  void ReadSession(Session& session);
  void HandleFrame(Session& session, const Frame& frame);
  /// Closes the window: DrainWindow() on the ConcurrentServer, then one
  /// reply per pending request (sessions that died meanwhile are skipped).
  void FlushWindow();
  /// Queues a reply frame on the session (doom-on-overflow).
  void QueueReply(Session& session, uint64_t trace_id, const ReplyMsg& reply);
  /// Queues a fatal Error reply and dooms the session.
  void ProtocolError(Session& session, uint64_t request_id,
                     const std::string& message);
  /// Sends as much of the out buffer as the socket takes right now.
  void TryFlushOut(Session& session);
  void CloseSession(uint64_t id);
  Session* FindSession(uint64_t id);

  void HandleRegister(Session& session, const Frame& frame);
  void HandleUpdate(Session& session, const Frame& frame);
  void HandleRequest(Session& session, const Frame& frame);
  void HandleEvent(Session& session, const Frame& frame);

  ts::ConcurrentServer* const server_;
  const RpcServerOptions options_;

  int listen_fd_ = -1;
  /// Self-pipe: Stop() writes a byte to wake the poll loop promptly.
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;

  // Serving-thread state (no locks: only ServeLoop touches these).
  std::map<uint64_t, Session> sessions_;
  uint64_t next_session_id_ = 1;
  std::vector<PendingReply> pending_;
  std::vector<uint64_t> to_close_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> replies_out_{0};
  std::atomic<uint64_t> throttled_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> disconnects_{0};
  std::atomic<uint64_t> windows_{0};

  // Optional metric handles (registry-owned).
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* replies_counter_ = nullptr;
  obs::Counter* throttled_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Counter* disconnects_counter_ = nullptr;
};

}  // namespace net
}  // namespace histkanon

#endif  // HISTKANON_SRC_NET_SERVER_H_
