#include "src/baselines/clique_cloak.h"

#include <algorithm>
#include <set>

#include "src/common/str.h"
#include "src/geo/stbox.h"

namespace histkanon {
namespace baselines {

CliqueCloakServer::CliqueCloakServer(CliqueCloakOptions options)
    : options_(options) {}

void CliqueCloakServer::OnLocationUpdate(mod::UserId user,
                                         const geo::STPoint& sample) {
  // Actual-senders anonymity ignores passive location updates.
  (void)user;
  (void)sample;
}

void CliqueCloakServer::Expire(geo::Instant now) {
  while (!pending_.empty() &&
         now - pending_.front().exact.t > options_.max_defer) {
    ++stats_.rejected;
    stats_.defer_sum += static_cast<double>(options_.max_defer);
    pending_.pop_front();
  }
}

void CliqueCloakServer::ForwardGroup(const std::vector<size_t>& members) {
  // Shared context: bounding box of the members' exact points.
  geo::STBox box = geo::STBox::Empty();
  for (const size_t index : members) {
    box.ExpandToInclude(pending_[index].exact);
  }
  for (const size_t index : members) {
    const Pending& item = pending_[index];
    ++stats_.forwarded;
    stats_.area_sum += box.area.Area();
    stats_.window_sum += static_cast<double>(box.time.Length());
    stats_.defer_sum += static_cast<double>(box.time.hi - item.exact.t);
    if (provider_ != nullptr) {
      auto it = pseudonyms_.find(item.user);
      if (it == pseudonyms_.end()) {
        it = pseudonyms_
                 .emplace(item.user,
                          common::Format("cc%08llx",
                                         static_cast<unsigned long long>(
                                             options_.pseudonym_seed +
                                             pseudonym_counter_++)))
                 .first;
      }
      anon::ForwardedRequest request;
      request.msgid = next_msgid_++;
      request.pseudonym = it->second;
      request.context = box;
      request.service = item.service;
      request.data = item.data;
      provider_->Handle(request);
    }
  }
  // Remove members (descending index order keeps positions valid).
  std::vector<size_t> sorted = members;
  std::sort(sorted.rbegin(), sorted.rend());
  for (const size_t index : sorted) {
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(index));
  }
}

bool CliqueCloakServer::TryGroup(size_t seed_index) {
  const Pending& seed = pending_[seed_index];
  // Greedy: closest distinct-user companions whose joint box still fits.
  std::vector<std::pair<double, size_t>> candidates;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (i == seed_index) continue;
    candidates.emplace_back(
        geo::Distance(pending_[i].exact.p, seed.exact.p), i);
  }
  std::sort(candidates.begin(), candidates.end());

  std::vector<size_t> members = {seed_index};
  std::set<mod::UserId> users = {seed.user};
  geo::STBox box = geo::STBox::FromPoint(seed.exact);
  for (const auto& [distance, index] : candidates) {
    if (users.size() >= options_.k) break;
    const Pending& candidate = pending_[index];
    if (users.count(candidate.user) > 0) continue;
    geo::STBox grown = box;
    grown.ExpandToInclude(candidate.exact);
    if (grown.area.Width() > options_.max_box_extent ||
        grown.area.Height() > options_.max_box_extent) {
      continue;
    }
    box = grown;
    members.push_back(index);
    users.insert(candidate.user);
  }
  if (users.size() < options_.k) return false;
  ForwardGroup(members);
  return true;
}

void CliqueCloakServer::OnServiceRequest(mod::UserId user,
                                         const geo::STPoint& exact,
                                         const sim::RequestIntent& intent) {
  ++stats_.requests;
  Expire(exact.t);
  pending_.push_back(Pending{user, exact, intent.service, intent.data});
  TryGroup(pending_.size() - 1);
}

void CliqueCloakServer::Flush(geo::Instant now) {
  Expire(now + options_.max_defer + 1);
}

}  // namespace baselines
}  // namespace histkanon
