// The Gruteser-Grunwald spatio-temporal cloaking baseline (the paper's
// reference [11]): per-request k-anonymity via quadtree area subdivision —
// "forward a request to the SP only when at least k different subjects
// have been in the space defined by Area in anyone of the subintervals of
// TimeInterval" (paper Section 5.1).  No trace-level (historical)
// guarantee: each request is cloaked independently.

#ifndef HISTKANON_SRC_BASELINES_INTERVAL_CLOAK_H_
#define HISTKANON_SRC_BASELINES_INTERVAL_CLOAK_H_

#include <map>

#include "src/anon/tolerance.h"
#include "src/baselines/cloak_stats.h"
#include "src/common/status.h"
#include "src/mod/moving_object_db.h"
#include "src/sim/simulator.h"
#include "src/ts/service_provider.h"

namespace histkanon {
namespace baselines {

/// \brief IntervalCloak parameters.
struct IntervalCloakOptions {
  /// Per-request anonymity parameter.
  size_t k = 5;
  /// Recent-past window used to count "subjects that have been in the
  /// area" (seconds).
  int64_t observation_window = 300;
  /// Maximum quadtree descent depth.
  int max_depth = 12;
  uint64_t pseudonym_seed = 0x636c6f616bULL;
};

/// \brief The [11]-style anonymizing middleware.
class IntervalCloakServer : public sim::EventSink {
 public:
  IntervalCloakServer(geo::Rect world_bounds, IntervalCloakOptions options);

  common::Status RegisterService(const anon::ServiceProfile& service);
  void ConnectServiceProvider(ts::ServiceProvider* provider) {
    provider_ = provider;
  }

  // sim::EventSink:
  void OnLocationUpdate(mod::UserId user, const geo::STPoint& sample) override;
  void OnServiceRequest(mod::UserId user, const geo::STPoint& exact,
                        const sim::RequestIntent& intent) override;

  const CloakStats& stats() const { return stats_; }
  const mod::MovingObjectDb& db() const { return db_; }

  /// Ground truth for evaluation: the owner of every issued pseudonym.
  std::map<mod::Pseudonym, mod::UserId> PseudonymTruth() const {
    std::map<mod::Pseudonym, mod::UserId> truth;
    for (const auto& [user, pseudonym] : pseudonyms_) {
      truth.emplace(pseudonym, user);
    }
    return truth;
  }

  /// The quadtree cloak for one point: the smallest quadrant (down to
  /// max_depth) containing `exact.p` in which at least k distinct users
  /// were observed during the trailing observation window; the time
  /// interval is that window.  Returns an empty box when even the root
  /// quadrant holds fewer than k users.
  geo::STBox Cloak(const geo::STPoint& exact) const;

 private:
  geo::Rect bounds_;
  IntervalCloakOptions options_;
  mod::MovingObjectDb db_;
  std::map<mod::UserId, mod::Pseudonym> pseudonyms_;
  uint64_t pseudonym_counter_ = 0;
  ts::ServiceProvider* provider_ = nullptr;
  mod::MessageId next_msgid_ = 1;
  CloakStats stats_;
};

}  // namespace baselines
}  // namespace histkanon

#endif  // HISTKANON_SRC_BASELINES_INTERVAL_CLOAK_H_
