// A Gedik-Liu-style baseline (the paper's reference [9]): "a message sent
// to a service provider [is] k-anonymous only if there are other k-1 users
// in the same spatio-temporal context that actually send a message".
// Requests queue until k ACTUAL senders share a cloaking box, or expire.
// The paper argues this is a much stronger (and debatable) requirement
// than potential-sender anonymity; experiment E7 quantifies the cost.

#ifndef HISTKANON_SRC_BASELINES_CLIQUE_CLOAK_H_
#define HISTKANON_SRC_BASELINES_CLIQUE_CLOAK_H_

#include <deque>
#include <map>

#include "src/anon/tolerance.h"
#include "src/baselines/cloak_stats.h"
#include "src/mod/types.h"
#include "src/sim/simulator.h"
#include "src/ts/service_provider.h"

namespace histkanon {
namespace baselines {

/// \brief CliqueCloak parameters.
struct CliqueCloakOptions {
  /// Required count of distinct ACTUAL senders per cloak (k).
  size_t k = 5;
  /// How long a request may wait for companions before rejection (s).
  int64_t max_defer = 300;
  /// Maximum spatial extent of a shared cloaking box (m).
  double max_box_extent = 4000.0;
  uint64_t pseudonym_seed = 0x636c7175ULL;
};

/// \brief Deferred-grouping anonymizer requiring k actual senders.
class CliqueCloakServer : public sim::EventSink {
 public:
  explicit CliqueCloakServer(CliqueCloakOptions options);

  void ConnectServiceProvider(ts::ServiceProvider* provider) {
    provider_ = provider;
  }

  // sim::EventSink:
  void OnLocationUpdate(mod::UserId user, const geo::STPoint& sample) override;
  void OnServiceRequest(mod::UserId user, const geo::STPoint& exact,
                        const sim::RequestIntent& intent) override;

  /// Expires overdue requests and flushes any still-pending groups at end
  /// of simulation.
  void Flush(geo::Instant now);

  const CloakStats& stats() const { return stats_; }
  size_t pending() const { return pending_.size(); }

  /// Ground truth for evaluation: the owner of every issued pseudonym.
  std::map<mod::Pseudonym, mod::UserId> PseudonymTruth() const {
    std::map<mod::Pseudonym, mod::UserId> truth;
    for (const auto& [user, pseudonym] : pseudonyms_) {
      truth.emplace(pseudonym, user);
    }
    return truth;
  }

 private:
  struct Pending {
    mod::UserId user;
    geo::STPoint exact;
    mod::ServiceId service;
    std::string data;
  };

  // Tries to assemble a group of k distinct-user pending requests whose
  // bounding box fits max_box_extent, seeded at `seed_index`; forwards and
  // removes the group on success.
  bool TryGroup(size_t seed_index);
  void Expire(geo::Instant now);
  void ForwardGroup(const std::vector<size_t>& members);

  CliqueCloakOptions options_;
  std::deque<Pending> pending_;
  std::map<mod::UserId, mod::Pseudonym> pseudonyms_;
  uint64_t pseudonym_counter_ = 0;
  ts::ServiceProvider* provider_ = nullptr;
  mod::MessageId next_msgid_ = 1;
  CloakStats stats_;
};

}  // namespace baselines
}  // namespace histkanon

#endif  // HISTKANON_SRC_BASELINES_CLIQUE_CLOAK_H_
