// The no-protection lower bound: every request is forwarded with its exact
// position (degenerate context) under a fixed pseudonym.

#ifndef HISTKANON_SRC_BASELINES_NO_PRIVACY_H_
#define HISTKANON_SRC_BASELINES_NO_PRIVACY_H_

#include <map>

#include "src/baselines/cloak_stats.h"
#include "src/common/str.h"
#include "src/sim/simulator.h"
#include "src/ts/service_provider.h"

namespace histkanon {
namespace baselines {

/// \brief Passthrough "anonymizer": pseudonyms only, no generalization.
class NoPrivacyServer : public sim::EventSink {
 public:
  NoPrivacyServer() = default;

  void ConnectServiceProvider(ts::ServiceProvider* provider) {
    provider_ = provider;
  }

  void OnLocationUpdate(mod::UserId user,
                        const geo::STPoint& sample) override {
    (void)user;
    (void)sample;
  }

  void OnServiceRequest(mod::UserId user, const geo::STPoint& exact,
                        const sim::RequestIntent& intent) override {
    ++stats_.requests;
    ++stats_.forwarded;
    if (provider_ == nullptr) return;
    auto it = pseudonyms_.find(user);
    if (it == pseudonyms_.end()) {
      it = pseudonyms_
               .emplace(user, common::Format("np%08llx",
                                             static_cast<unsigned long long>(
                                                 pseudonyms_.size())))
               .first;
    }
    anon::ForwardedRequest request;
    request.msgid = next_msgid_++;
    request.pseudonym = it->second;
    request.context = geo::STBox::FromPoint(exact);
    request.service = intent.service;
    request.data = intent.data;
    provider_->Handle(request);
  }

  const CloakStats& stats() const { return stats_; }

  /// Ground truth for evaluation: the owner of every issued pseudonym.
  std::map<mod::Pseudonym, mod::UserId> PseudonymTruth() const {
    std::map<mod::Pseudonym, mod::UserId> truth;
    for (const auto& [user, pseudonym] : pseudonyms_) {
      truth.emplace(pseudonym, user);
    }
    return truth;
  }

 private:
  std::map<mod::UserId, mod::Pseudonym> pseudonyms_;
  ts::ServiceProvider* provider_ = nullptr;
  mod::MessageId next_msgid_ = 1;
  CloakStats stats_;
};

}  // namespace baselines
}  // namespace histkanon

#endif  // HISTKANON_SRC_BASELINES_NO_PRIVACY_H_
