// Shared counters for the baseline anonymizers, comparable with TsStats.

#ifndef HISTKANON_SRC_BASELINES_CLOAK_STATS_H_
#define HISTKANON_SRC_BASELINES_CLOAK_STATS_H_

#include <cstddef>

namespace histkanon {
namespace baselines {

/// \brief Aggregate outcome counters for a baseline anonymizer.
struct CloakStats {
  size_t requests = 0;
  size_t forwarded = 0;
  size_t rejected = 0;
  /// Sums over forwarded requests, for QoS metrics.
  double area_sum = 0.0;     // m^2
  double window_sum = 0.0;   // seconds
  double defer_sum = 0.0;    // seconds spent queued (CliqueCloak only)

  double MeanArea() const {
    return forwarded == 0 ? 0.0 : area_sum / static_cast<double>(forwarded);
  }
  double MeanWindow() const {
    return forwarded == 0 ? 0.0 : window_sum / static_cast<double>(forwarded);
  }
  double SuccessRate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(forwarded) / static_cast<double>(requests);
  }
};

}  // namespace baselines
}  // namespace histkanon

#endif  // HISTKANON_SRC_BASELINES_CLOAK_STATS_H_
