#include "src/baselines/interval_cloak.h"

#include "src/common/str.h"

namespace histkanon {
namespace baselines {

IntervalCloakServer::IntervalCloakServer(geo::Rect world_bounds,
                                         IntervalCloakOptions options)
    : bounds_(world_bounds), options_(options) {}

common::Status IntervalCloakServer::RegisterService(
    const anon::ServiceProfile& service) {
  // Tolerance constraints are evaluated by the caller via stats; the
  // baseline itself is service-agnostic.  Kept for interface symmetry.
  (void)service;
  return common::Status::OK();
}

void IntervalCloakServer::OnLocationUpdate(mod::UserId user,
                                           const geo::STPoint& sample) {
  db_.Append(user, sample).ok();
}

geo::STBox IntervalCloakServer::Cloak(const geo::STPoint& exact) const {
  const geo::TimeInterval window{exact.t - options_.observation_window,
                                 exact.t};
  geo::Rect quadrant = bounds_;
  // Refuse when even the whole world lacks k subjects.
  if (db_.CountUsersWithSampleIn(geo::STBox{quadrant, window}) <
      options_.k) {
    return geo::STBox::Empty();
  }
  for (int depth = 0; depth < options_.max_depth; ++depth) {
    // The child quadrant containing the point.
    const geo::Point center = quadrant.Center();
    geo::Rect child{exact.p.x < center.x ? quadrant.min_x : center.x,
                    exact.p.y < center.y ? quadrant.min_y : center.y, 0.0,
                    0.0};
    child.max_x = child.min_x + quadrant.Width() / 2.0;
    child.max_y = child.min_y + quadrant.Height() / 2.0;
    if (db_.CountUsersWithSampleIn(geo::STBox{child, window}) < options_.k) {
      break;  // Child too sparse: keep the current quadrant.
    }
    quadrant = child;
  }
  return geo::STBox{quadrant, window};
}

void IntervalCloakServer::OnServiceRequest(mod::UserId user,
                                           const geo::STPoint& exact,
                                           const sim::RequestIntent& intent) {
  ++stats_.requests;
  // The request's own position is also an observation.
  db_.Append(user, exact).ok();

  const geo::STBox cloaked = Cloak(exact);
  if (cloaked.IsEmpty()) {
    ++stats_.rejected;
    return;
  }
  ++stats_.forwarded;
  stats_.area_sum += cloaked.area.Area();
  stats_.window_sum += static_cast<double>(cloaked.time.Length());

  if (provider_ != nullptr) {
    auto it = pseudonyms_.find(user);
    if (it == pseudonyms_.end()) {
      it = pseudonyms_
               .emplace(user, common::Format("ic%08llx",
                                             static_cast<unsigned long long>(
                                                 options_.pseudonym_seed +
                                                 pseudonym_counter_++)))
               .first;
    }
    anon::ForwardedRequest request;
    request.msgid = next_msgid_++;
    request.pseudonym = it->second;
    request.context = cloaked;
    request.service = intent.service;
    request.data = intent.data;
    provider_->Handle(request);
  }
}

}  // namespace baselines
}  // namespace histkanon
