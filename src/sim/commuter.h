// The commuter mobility model: home -> office every weekday morning, back
// in the late afternoon — exactly the recurring pattern of the paper's
// Example 1 that makes a home/office LBQID dangerous.

#ifndef HISTKANON_SRC_SIM_COMMUTER_H_
#define HISTKANON_SRC_SIM_COMMUTER_H_

#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/agent.h"
#include "src/tgran/calendar.h"

namespace histkanon {
namespace sim {

/// \brief Commuter behaviour parameters.
struct CommuterOptions {
  /// Mean departure from home, as second-of-day (07:25).
  int64_t depart_home_mean = 7 * 3600 + 25 * 60;
  /// Mean departure from the office, as second-of-day (17:00).
  int64_t depart_office_mean = 17 * 3600;
  /// Gaussian jitter applied to both departures (seconds).
  double schedule_jitter = 12 * 60;
  /// Commute speed (m/s; ~urban driving with stops).
  double speed = 8.0;
  /// Probability of skipping work on a given weekday (sick/leave).
  double skip_day_probability = 0.05;
  /// Probability (per leg endpoint) of issuing a commute-time service
  /// request: shortly before leaving home, after reaching the office,
  /// before leaving the office, and after reaching home.
  double commute_request_probability = 0.9;
  /// Service used for commute-time requests.
  mod::ServiceId commute_service = 0;
  /// Background request rate (requests/hour, Poisson) at any time.
  double background_rate_per_hour = 0.05;
  /// Service used for background requests.
  mod::ServiceId background_service = 1;
};

/// \brief Weekday home<->office commuter; home all weekend.
class CommuterAgent : public Agent {
 public:
  CommuterAgent(mod::UserId user, geo::Point home, geo::Point office,
                CommuterOptions options, common::Rng rng);

  mod::UserId user() const override { return user_; }
  AgentTick Step(geo::Instant t) override;

  const geo::Point& home() const { return home_; }
  const geo::Point& office() const { return office_; }

 private:
  struct DayPlan {
    bool works = false;
    geo::Instant depart_home = 0;
    geo::Instant arrive_office = 0;
    geo::Instant depart_office = 0;
    geo::Instant arrive_home = 0;
    // Commute-request instants (subset of the four endpoints), ascending.
    std::vector<geo::Instant> request_times;
  };

  // (Re)computes the plan for day `day_index`.
  void PlanDay(int64_t day_index);
  geo::Point PositionAt(geo::Instant t) const;

  mod::UserId user_;
  geo::Point home_;
  geo::Point office_;
  CommuterOptions options_;
  common::Rng rng_;
  int64_t planned_day_ = -1;
  DayPlan plan_;
  geo::Instant last_step_ = std::numeric_limits<geo::Instant>::min();
};

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_COMMUTER_H_
