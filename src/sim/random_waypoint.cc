#include "src/sim/random_waypoint.h"

#include <algorithm>

namespace histkanon {
namespace sim {

RandomWaypointAgent::RandomWaypointAgent(mod::UserId user, geo::Rect world,
                                         RandomWaypointOptions options,
                                         common::Rng rng)
    : user_(user), world_(world), options_(options), rng_(rng) {}

void RandomWaypointAgent::PickNextLeg(geo::Instant now) {
  leg_origin_ = position_;
  target_ = geo::Point{rng_.Uniform(world_.min_x, world_.max_x),
                       rng_.Uniform(world_.min_y, world_.max_y)};
  const double speed = rng_.Uniform(options_.min_speed, options_.max_speed);
  const double travel = geo::Distance(leg_origin_, target_) / speed;
  leg_start_ = now;
  leg_end_ = now + std::max<geo::Instant>(1, static_cast<geo::Instant>(travel));
  pause_until_ =
      leg_end_ + rng_.UniformInt(options_.min_pause, options_.max_pause);
}

AgentTick RandomWaypointAgent::Step(geo::Instant t) {
  if (!initialized_) {
    initialized_ = true;
    position_ = geo::Point{rng_.Uniform(world_.min_x, world_.max_x),
                           rng_.Uniform(world_.min_y, world_.max_y)};
    leg_origin_ = position_;
    target_ = position_;
    leg_start_ = leg_end_ = t;
    pause_until_ = t + rng_.UniformInt(options_.min_pause, options_.max_pause);
  }

  while (t >= pause_until_) PickNextLeg(pause_until_);

  if (t >= leg_end_) {
    position_ = target_;
  } else if (t > leg_start_) {
    const double f = static_cast<double>(t - leg_start_) /
                     static_cast<double>(leg_end_ - leg_start_);
    position_ = geo::Point{leg_origin_.x + f * (target_.x - leg_origin_.x),
                           leg_origin_.y + f * (target_.y - leg_origin_.y)};
  }

  AgentTick tick;
  tick.position = position_;
  if (last_step_ != std::numeric_limits<geo::Instant>::min() &&
      options_.request_rate_per_hour > 0.0) {
    const double elapsed_hours = static_cast<double>(t - last_step_) / 3600.0;
    const int64_t count =
        rng_.Poisson(options_.request_rate_per_hour * elapsed_hours);
    for (int64_t i = 0; i < count; ++i) {
      tick.requests.push_back(RequestIntent{options_.service, "background"});
    }
  }
  last_step_ = t;
  return tick;
}

}  // namespace sim
}  // namespace histkanon
