#include "src/sim/road_commuter.h"

#include <algorithm>

namespace histkanon {
namespace sim {

namespace {

constexpr int64_t kMinSod = 5 * 3600;
constexpr int64_t kMaxSod = 23 * 3600;
constexpr geo::Instant kRequestLead = 300;

}  // namespace

RoadCommuterAgent::RoadCommuterAgent(mod::UserId user, geo::Point home,
                                     geo::Point office,
                                     const roadnet::RoadGraph* graph,
                                     CommuterOptions options,
                                     common::Rng rng)
    : user_(user),
      home_(home),
      office_(office),
      graph_(graph),
      options_(options),
      rng_(rng) {
  const roadnet::NodeId home_node = graph_->NearestNode(home_);
  const roadnet::NodeId office_node = graph_->NearestNode(office_);
  auto out = graph_->ShortestPath(home_node, office_node);
  auto back = graph_->ShortestPath(office_node, home_node);
  // MakeGridCity keeps the network connected; a custom disconnected graph
  // degenerates to staying home (empty path).
  outbound_ = std::make_unique<roadnet::PathTracer>(
      graph_, out.ok() ? *out : roadnet::Path{});
  inbound_ = std::make_unique<roadnet::PathTracer>(
      graph_, back.ok() ? *back : roadnet::Path{});
}

void RoadCommuterAgent::PlanDay(int64_t day_index) {
  planned_day_ = day_index;
  plan_ = DayPlan{};
  const geo::Instant day_start = day_index * tgran::kSecondsPerDay;
  const int dow = tgran::DayOfWeek(day_start);
  if (dow >= 5 || rng_.Bernoulli(options_.skip_day_probability) ||
      outbound_->path().empty()) {
    return;
  }
  plan_.works = true;

  const auto travel =
      static_cast<geo::Instant>(std::max(60.0, outbound_->total_time()));
  auto jittered = [this](int64_t mean_sod) {
    return static_cast<int64_t>(std::clamp(
        rng_.Normal(static_cast<double>(mean_sod), options_.schedule_jitter),
        static_cast<double>(kMinSod), static_cast<double>(kMaxSod)));
  };
  plan_.depart_home = day_start + jittered(options_.depart_home_mean);
  plan_.arrive_office = plan_.depart_home + travel;
  plan_.depart_office = day_start + jittered(options_.depart_office_mean);
  plan_.depart_office =
      std::max(plan_.depart_office, plan_.arrive_office + 3600);
  plan_.arrive_home = plan_.depart_office + travel;

  const geo::Instant candidates[4] = {
      plan_.depart_home - kRequestLead, plan_.arrive_office + kRequestLead,
      plan_.depart_office - kRequestLead, plan_.arrive_home + kRequestLead};
  for (const geo::Instant t : candidates) {
    if (rng_.Bernoulli(options_.commute_request_probability)) {
      plan_.request_times.push_back(t);
    }
  }
  std::sort(plan_.request_times.begin(), plan_.request_times.end());
}

geo::Point RoadCommuterAgent::PositionAt(geo::Instant t) const {
  if (!plan_.works) return home_;
  if (t < plan_.depart_home) return home_;
  if (t < plan_.arrive_office) {
    return outbound_->PositionAt(static_cast<double>(t - plan_.depart_home));
  }
  if (t < plan_.depart_office) return office_;
  if (t < plan_.arrive_home) {
    return inbound_->PositionAt(static_cast<double>(t - plan_.depart_office));
  }
  return home_;
}

AgentTick RoadCommuterAgent::Step(geo::Instant t) {
  const int64_t day = tgran::DayIndex(t);
  if (day != planned_day_) PlanDay(day);

  AgentTick tick;
  tick.position = PositionAt(t);
  for (const geo::Instant rt : plan_.request_times) {
    if (rt > last_step_ && rt <= t) {
      tick.requests.push_back(
          RequestIntent{options_.commute_service, "commute"});
    }
  }
  if (last_step_ != std::numeric_limits<geo::Instant>::min() &&
      options_.background_rate_per_hour > 0.0) {
    const double elapsed_hours = static_cast<double>(t - last_step_) / 3600.0;
    const int64_t extra =
        rng_.Poisson(options_.background_rate_per_hour * elapsed_hours);
    for (int64_t i = 0; i < extra; ++i) {
      tick.requests.push_back(
          RequestIntent{options_.background_service, "background"});
    }
  }
  last_step_ = t;
  return tick;
}

}  // namespace sim
}  // namespace histkanon
