#include "src/sim/simulator.h"

namespace histkanon {
namespace sim {

Simulator::Simulator(std::vector<std::unique_ptr<Agent>> agents,
                     SimulationOptions options)
    : agents_(std::move(agents)), options_(options) {}

void Simulator::Run(EventSink* sink) {
  const int64_t ticks_per_update =
      std::max<int64_t>(1, options_.location_update_period / options_.tick);
  int64_t tick_number = 0;
  for (geo::Instant now = options_.start; now < options_.end;
       now += options_.tick, ++tick_number) {
    for (size_t i = 0; i < agents_.size(); ++i) {
      Agent* agent = agents_[i].get();
      const AgentTick tick = agent->Step(now);
      const geo::STPoint here{tick.position, now};
      // Staggered periodic updates: user i reports on ticks where
      // (tick_number + i) is a multiple of the update period.
      if ((tick_number + static_cast<int64_t>(i)) % ticks_per_update == 0) {
        sink->OnLocationUpdate(agent->user(), here);
      }
      for (const RequestIntent& intent : tick.requests) {
        sink->OnServiceRequest(agent->user(), here, intent);
      }
    }
  }
}

}  // namespace sim
}  // namespace histkanon
