// The simulation driver: advances every agent tick by tick, feeding
// location updates and service requests into an event sink (normally the
// trusted server).

#ifndef HISTKANON_SRC_SIM_SIMULATOR_H_
#define HISTKANON_SRC_SIM_SIMULATOR_H_

#include <memory>
#include <vector>

#include "src/sim/agent.h"
#include "src/tgran/calendar.h"

namespace histkanon {
namespace sim {

/// \brief Consumer of simulation events (implemented by ts::TrustedServer
/// and by the baseline anonymizers).
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// A periodic location update ("a location update may be received by the
  /// TS even if the user did not make a request", Section 5.3).
  virtual void OnLocationUpdate(mod::UserId user,
                                const geo::STPoint& sample) = 0;

  /// A service request issued from the exact position `exact`.
  virtual void OnServiceRequest(mod::UserId user, const geo::STPoint& exact,
                                const RequestIntent& intent) = 0;
};

/// \brief Simulation-clock parameters.
struct SimulationOptions {
  geo::Instant start = 0;
  geo::Instant end = 14 * tgran::kSecondsPerDay;
  /// Agent step (seconds).
  int64_t tick = 60;
  /// Per-user location-update period (seconds; staggered across users).
  int64_t location_update_period = 300;
};

/// \brief Drives the agents through [start, end).
class Simulator {
 public:
  Simulator(std::vector<std::unique_ptr<Agent>> agents,
            SimulationOptions options);

  /// Runs the whole simulation, delivering events to `sink`.  Within a
  /// tick, a user's location update precedes their requests.
  void Run(EventSink* sink);

  const SimulationOptions& options() const { return options_; }

 private:
  std::vector<std::unique_ptr<Agent>> agents_;
  SimulationOptions options_;
};

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_SIMULATOR_H_
