// Random-waypoint mobility: the background population mass that supplies
// anonymity sets between the structured commuters.

#ifndef HISTKANON_SRC_SIM_RANDOM_WAYPOINT_H_
#define HISTKANON_SRC_SIM_RANDOM_WAYPOINT_H_

#include <limits>

#include "src/common/rng.h"
#include "src/geo/rect.h"
#include "src/sim/agent.h"

namespace histkanon {
namespace sim {

/// \brief Random-waypoint behaviour parameters.
struct RandomWaypointOptions {
  /// Movement speed bounds (m/s): sampled per leg.
  double min_speed = 1.0;
  double max_speed = 12.0;
  /// Pause-at-waypoint bounds (seconds): sampled per waypoint.
  int64_t min_pause = 60;
  int64_t max_pause = 1800;
  /// Background request rate (requests/hour, Poisson).
  double request_rate_per_hour = 0.2;
  mod::ServiceId service = 1;
};

/// \brief Classic random-waypoint agent over a rectangular world.
class RandomWaypointAgent : public Agent {
 public:
  RandomWaypointAgent(mod::UserId user, geo::Rect world,
                      RandomWaypointOptions options, common::Rng rng);

  mod::UserId user() const override { return user_; }
  AgentTick Step(geo::Instant t) override;

 private:
  void PickNextLeg(geo::Instant now);

  mod::UserId user_;
  geo::Rect world_;
  RandomWaypointOptions options_;
  common::Rng rng_;

  geo::Point position_;
  geo::Point target_;
  geo::Instant leg_start_ = 0;
  geo::Instant leg_end_ = 0;       // Arrival at target.
  geo::Instant pause_until_ = 0;   // Idle at target until this instant.
  geo::Point leg_origin_;
  bool initialized_ = false;
  geo::Instant last_step_ = std::numeric_limits<geo::Instant>::min();
};

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_RANDOM_WAYPOINT_H_
