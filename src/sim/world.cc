#include "src/sim/world.h"

#include <limits>

namespace histkanon {
namespace sim {

World World::Generate(const WorldOptions& options, common::Rng* rng) {
  World world;
  world.options_ = options;

  // Homes: rejection-sampled for minimum spacing (bounded retries so that
  // over-dense configurations still terminate).
  world.homes_.reserve(options.num_homes);
  for (size_t i = 0; i < options.num_homes; ++i) {
    geo::Point candidate;
    for (int attempt = 0; attempt < 32; ++attempt) {
      candidate = geo::Point{rng->Uniform(0.0, options.width),
                             rng->Uniform(0.0, options.height)};
      bool spaced = true;
      for (const geo::Point& home : world.homes_) {
        if (geo::Distance(candidate, home) < options.home_spacing) {
          spaced = false;
          break;
        }
      }
      if (spaced) break;
    }
    world.homes_.push_back(candidate);
  }

  // Offices: clustered downtown (city center).
  const geo::Point center{options.width / 2.0, options.height / 2.0};
  const double downtown_radius =
      options.downtown_fraction * std::min(options.width, options.height);
  world.offices_.reserve(options.num_offices);
  for (size_t i = 0; i < options.num_offices; ++i) {
    world.offices_.push_back(geo::Point{
        center.x + rng->Uniform(-downtown_radius, downtown_radius),
        center.y + rng->Uniform(-downtown_radius, downtown_radius)});
  }

  // Hospitals: spread across the city.
  world.hospitals_.reserve(options.num_hospitals);
  for (size_t i = 0; i < options.num_hospitals; ++i) {
    world.hospitals_.push_back(
        geo::Point{rng->Uniform(0.1 * options.width, 0.9 * options.width),
                   rng->Uniform(0.1 * options.height, 0.9 * options.height)});
  }
  return world;
}

void World::RegisterResident(size_t home_index, mod::UserId resident) {
  registry_.push_back(HomeRecord{homes_[home_index], resident});
}

std::optional<mod::UserId> World::LookupResidentNear(
    const geo::Point& p, double max_distance) const {
  const HomeRecord* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const HomeRecord& record : registry_) {
    const double d = geo::Distance(record.address, p);
    if (d < best_distance) {
      best_distance = d;
      best = &record;
    }
  }
  if (best == nullptr || best_distance > max_distance) return std::nullopt;
  return best->resident;
}

}  // namespace sim
}  // namespace histkanon
