// Mobility agents: deterministic (per seed) movement + request generators
// driven by the simulator clock.

#ifndef HISTKANON_SRC_SIM_AGENT_H_
#define HISTKANON_SRC_SIM_AGENT_H_

#include <string>
#include <vector>

#include "src/geo/point.h"
#include "src/mod/types.h"

namespace histkanon {
namespace sim {

/// \brief A service request the agent wants to issue this tick.
struct RequestIntent {
  mod::ServiceId service = 0;
  std::string data;
};

/// \brief What one simulation tick produced for an agent.
struct AgentTick {
  geo::Point position;
  std::vector<RequestIntent> requests;
};

/// \brief A simulated mobile user.  Step() is called with strictly
/// increasing, tick-aligned instants.
class Agent {
 public:
  virtual ~Agent() = default;

  virtual mod::UserId user() const = 0;

  /// Advances the agent to instant `t`, returning its position and any
  /// requests issued at this tick.
  virtual AgentTick Step(geo::Instant t) = 0;
};

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_AGENT_H_
