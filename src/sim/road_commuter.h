// A commuter whose home<->office trips follow the road network's fastest
// route rather than a straight line.  The observable request pattern is
// the same as CommuterAgent's (Example 1/2), but the trajectory geometry
// is road-constrained, which matters to network-aware linking attacks
// (experiment E10).

#ifndef HISTKANON_SRC_SIM_ROAD_COMMUTER_H_
#define HISTKANON_SRC_SIM_ROAD_COMMUTER_H_

#include <limits>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/roadnet/graph.h"
#include "src/sim/agent.h"
#include "src/sim/commuter.h"
#include "src/tgran/calendar.h"

namespace histkanon {
namespace sim {

/// \brief Road-constrained weekday commuter.  Reuses CommuterOptions; the
/// `speed` option is ignored for travel (edge speeds govern), but still
/// bounds the schedule so requests land in the LBQID windows.
class RoadCommuterAgent : public Agent {
 public:
  /// `graph` must outlive the agent.  Home and office snap to their
  /// nearest road nodes for routing; positions off the path are the exact
  /// home/office points.
  RoadCommuterAgent(mod::UserId user, geo::Point home, geo::Point office,
                    const roadnet::RoadGraph* graph, CommuterOptions options,
                    common::Rng rng);

  mod::UserId user() const override { return user_; }
  AgentTick Step(geo::Instant t) override;

  const geo::Point& home() const { return home_; }
  const geo::Point& office() const { return office_; }
  /// Seconds the routed trip takes (for tests).
  double route_time() const { return outbound_->total_time(); }

 private:
  struct DayPlan {
    bool works = false;
    geo::Instant depart_home = 0;
    geo::Instant arrive_office = 0;
    geo::Instant depart_office = 0;
    geo::Instant arrive_home = 0;
    std::vector<geo::Instant> request_times;
  };

  void PlanDay(int64_t day_index);
  geo::Point PositionAt(geo::Instant t) const;

  mod::UserId user_;
  geo::Point home_;
  geo::Point office_;
  const roadnet::RoadGraph* graph_;
  CommuterOptions options_;
  common::Rng rng_;
  std::unique_ptr<roadnet::PathTracer> outbound_;
  std::unique_ptr<roadnet::PathTracer> inbound_;
  int64_t planned_day_ = -1;
  DayPlan plan_;
  geo::Instant last_step_ = std::numeric_limits<geo::Instant>::min();
};

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_ROAD_COMMUTER_H_
