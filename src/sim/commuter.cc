#include "src/sim/commuter.h"

#include <algorithm>

namespace histkanon {
namespace sim {

namespace {

constexpr int64_t kMinSod = 5 * 3600;        // Never leave before 05:00.
constexpr int64_t kMaxSod = 23 * 3600;       // Never move after 23:00.
constexpr geo::Instant kRequestLead = 300;   // Request 5 min around events.

}  // namespace

CommuterAgent::CommuterAgent(mod::UserId user, geo::Point home,
                             geo::Point office, CommuterOptions options,
                             common::Rng rng)
    : user_(user),
      home_(home),
      office_(office),
      options_(options),
      rng_(rng) {}

void CommuterAgent::PlanDay(int64_t day_index) {
  planned_day_ = day_index;
  plan_ = DayPlan{};
  const geo::Instant day_start = day_index * tgran::kSecondsPerDay;
  const int dow = tgran::DayOfWeek(day_start);
  const bool weekday = dow < 5;
  if (!weekday || rng_.Bernoulli(options_.skip_day_probability)) {
    return;  // Home all day.
  }
  plan_.works = true;

  const double travel_seconds =
      geo::Distance(home_, office_) / options_.speed;
  auto jittered = [this](int64_t mean_sod) {
    return static_cast<int64_t>(std::clamp(
        rng_.Normal(static_cast<double>(mean_sod), options_.schedule_jitter),
        static_cast<double>(kMinSod), static_cast<double>(kMaxSod)));
  };
  plan_.depart_home = day_start + jittered(options_.depart_home_mean);
  plan_.arrive_office =
      plan_.depart_home + static_cast<geo::Instant>(travel_seconds);
  plan_.depart_office = day_start + jittered(options_.depart_office_mean);
  // A pathological draw could put the office departure before arrival.
  plan_.depart_office =
      std::max(plan_.depart_office, plan_.arrive_office + 3600);
  plan_.arrive_home =
      plan_.depart_office + static_cast<geo::Instant>(travel_seconds);

  // Commute-time requests around the four leg endpoints (Example 1's
  // observable home/office pattern).
  const geo::Instant candidates[4] = {
      plan_.depart_home - kRequestLead, plan_.arrive_office + kRequestLead,
      plan_.depart_office - kRequestLead, plan_.arrive_home + kRequestLead};
  for (const geo::Instant t : candidates) {
    if (rng_.Bernoulli(options_.commute_request_probability)) {
      plan_.request_times.push_back(t);
    }
  }
  std::sort(plan_.request_times.begin(), plan_.request_times.end());
}

geo::Point CommuterAgent::PositionAt(geo::Instant t) const {
  if (!plan_.works) return home_;
  auto lerp = [this](geo::Instant from, geo::Instant to, geo::Instant now,
                     const geo::Point& a, const geo::Point& b) {
    const double f = static_cast<double>(now - from) /
                     static_cast<double>(std::max<geo::Instant>(1, to - from));
    return geo::Point{a.x + f * (b.x - a.x), a.y + f * (b.y - a.y)};
  };
  if (t < plan_.depart_home) return home_;
  if (t < plan_.arrive_office) {
    return lerp(plan_.depart_home, plan_.arrive_office, t, home_, office_);
  }
  if (t < plan_.depart_office) return office_;
  if (t < plan_.arrive_home) {
    return lerp(plan_.depart_office, plan_.arrive_home, t, office_, home_);
  }
  return home_;
}

AgentTick CommuterAgent::Step(geo::Instant t) {
  const int64_t day = tgran::DayIndex(t);
  if (day != planned_day_) PlanDay(day);

  AgentTick tick;
  tick.position = PositionAt(t);

  // Commute requests whose scheduled instant fell inside (last_step_, t].
  for (const geo::Instant rt : plan_.request_times) {
    if (rt > last_step_ && rt <= t) {
      tick.requests.push_back(
          RequestIntent{options_.commute_service, "commute"});
    }
  }

  // Background Poisson requests over the elapsed tick.
  if (last_step_ != std::numeric_limits<geo::Instant>::min() &&
      options_.background_rate_per_hour > 0.0) {
    const double elapsed_hours =
        static_cast<double>(t - last_step_) / 3600.0;
    const int64_t extra =
        rng_.Poisson(options_.background_rate_per_hour * elapsed_hours);
    for (int64_t i = 0; i < extra; ++i) {
      tick.requests.push_back(
          RequestIntent{options_.background_service, "background"});
    }
  }
  last_step_ = t;
  return tick;
}

}  // namespace sim
}  // namespace histkanon
