#include "src/sim/population.h"

#include "src/common/str.h"
#include "src/sim/road_commuter.h"

namespace histkanon {
namespace sim {

Population BuildPopulation(const PopulationOptions& options,
                           common::Rng* rng) {
  Population population;
  population.options = options;

  WorldOptions world_options = options.world;
  if (world_options.num_homes < options.num_commuters) {
    world_options.num_homes = options.num_commuters;
  }
  population.world = World::Generate(world_options, rng);
  if (options.use_road_network) {
    population.road_graph = std::make_shared<roadnet::RoadGraph>(
        roadnet::RoadGraph::MakeGridCity(population.world.Bounds(),
                                         options.road_city, rng));
  }

  mod::UserId next_user = 0;
  for (size_t i = 0; i < options.num_commuters; ++i) {
    const mod::UserId user = next_user++;
    const geo::Point home = population.world.homes()[i];
    const geo::Point office =
        population.world
            .offices()[rng->UniformInt(
                0,
                static_cast<int64_t>(population.world.offices().size()) - 1)];
    population.world.RegisterResident(i, user);
    population.commuters.push_back(CommuterInfo{user, home, office});
    if (population.road_graph != nullptr) {
      population.agents.push_back(std::make_unique<RoadCommuterAgent>(
          user, home, office, population.road_graph.get(), options.commuter,
          rng->Fork()));
    } else {
      population.agents.push_back(std::make_unique<CommuterAgent>(
          user, home, office, options.commuter, rng->Fork()));
    }
  }
  for (size_t i = 0; i < options.num_wanderers; ++i) {
    population.agents.push_back(std::make_unique<RandomWaypointAgent>(
        next_user++, population.world.Bounds(), options.wanderer,
        rng->Fork()));
  }
  return population;
}

common::Result<lbqid::Lbqid> MakeCommuteLbqid(
    const CommuterInfo& commuter, const PopulationOptions& options,
    const tgran::GranularityRegistry& registry,
    const std::string& recurrence_text) {
  HISTKANON_ASSIGN_OR_RETURN(
      tgran::Recurrence recurrence,
      tgran::Recurrence::Parse(recurrence_text, registry));

  const geo::Rect home_area = geo::Rect::FromCenter(
      commuter.home, 2 * options.home_area_half, 2 * options.home_area_half);
  const geo::Rect office_area =
      geo::Rect::FromCenter(commuter.office, 2 * options.office_area_half,
                            2 * options.office_area_half);

  auto hours = [](int begin, int end) {
    // Bounds are compile-time-known valid; ValueOrDie is safe.
    return tgran::UTimeInterval::FromHours(begin, end).ValueOrDie();
  };
  std::vector<lbqid::LbqidElement> elements = {
      {home_area, hours(7, 9)},
      {office_area, hours(7, 10)},
      {office_area, hours(16, 18)},
      {home_area, hours(16, 19)},
  };
  return lbqid::Lbqid::Create(
      common::Format("commute-u%lld", static_cast<long long>(commuter.user)),
      std::move(elements), std::move(recurrence));
}

}  // namespace sim
}  // namespace histkanon
