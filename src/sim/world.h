// The synthetic city: a planar region with residential homes, office
// buildings, and hospitals, plus the ground-truth home registry that plays
// the role of the paper's external identification source ("a simple look
// up in a phone book ... can reveal the people who live there", Section 1).

#ifndef HISTKANON_SRC_SIM_WORLD_H_
#define HISTKANON_SRC_SIM_WORLD_H_

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/geo/rect.h"
#include "src/mod/types.h"

namespace histkanon {
namespace sim {

/// \brief World-generation parameters.
struct WorldOptions {
  /// City extent (meters): [0,width] x [0,height].
  double width = 10000.0;
  double height = 10000.0;
  /// Homes are scattered over the whole city; offices cluster downtown.
  size_t num_homes = 400;
  size_t num_offices = 12;
  size_t num_hospitals = 4;
  /// Downtown (office district) half-extent as a fraction of city size.
  double downtown_fraction = 0.15;
  /// Minimum spacing between homes (meters); keeps homes identifiable as
  /// distinct addresses.
  double home_spacing = 60.0;
};

/// \brief A phone-book entry: a home address and its registered resident.
struct HomeRecord {
  geo::Point address;
  mod::UserId resident = mod::kInvalidUser;
};

/// \brief The synthetic city.
class World {
 public:
  /// Generates a city deterministically from `rng`.
  static World Generate(const WorldOptions& options, common::Rng* rng);

  const WorldOptions& options() const { return options_; }
  geo::Rect Bounds() const {
    return geo::Rect{0.0, 0.0, options_.width, options_.height};
  }

  const std::vector<geo::Point>& homes() const { return homes_; }
  const std::vector<geo::Point>& offices() const { return offices_; }
  const std::vector<geo::Point>& hospitals() const { return hospitals_; }

  /// Registers `resident` as living at home `home_index` (the phone book).
  void RegisterResident(size_t home_index, mod::UserId resident);

  /// The phone book, in home-index order.
  const std::vector<HomeRecord>& registry() const { return registry_; }

  /// Phone-book lookup: the resident registered at the home nearest to
  /// `p`, provided it is within `max_distance` meters (the external-source
  /// attack of Section 1); nullopt when no registered home is close enough.
  std::optional<mod::UserId> LookupResidentNear(const geo::Point& p,
                                                double max_distance) const;

 private:
  WorldOptions options_;
  std::vector<geo::Point> homes_;
  std::vector<geo::Point> offices_;
  std::vector<geo::Point> hospitals_;
  std::vector<HomeRecord> registry_;
};

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_WORLD_H_
