// Population assembly: a synthetic city plus a mixed population of
// commuters (the structured, LBQID-vulnerable users) and random-waypoint
// wanderers (the anonymity-set mass), with helpers for building each
// commuter's Example-2-style home/office LBQID.

#ifndef HISTKANON_SRC_SIM_POPULATION_H_
#define HISTKANON_SRC_SIM_POPULATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/lbqid/lbqid.h"
#include "src/roadnet/graph.h"
#include "src/sim/agent.h"
#include "src/sim/commuter.h"
#include "src/sim/random_waypoint.h"
#include "src/sim/world.h"

namespace histkanon {
namespace sim {

/// \brief Population parameters.
struct PopulationOptions {
  size_t num_commuters = 60;
  size_t num_wanderers = 140;
  WorldOptions world;
  CommuterOptions commuter = DefaultCommuterOptions();
  RandomWaypointOptions wanderer;
  /// Half-extent of the "AreaCondominium" LBQID element around a home (m).
  double home_area_half = 150.0;
  /// Half-extent of the "AreaOfficeBldg" LBQID element around an office (m).
  double office_area_half = 250.0;
  /// When true, commuters travel on a generated road network (see
  /// src/roadnet) instead of straight lines.
  bool use_road_network = false;
  roadnet::GridCityOptions road_city;

  /// Commuter schedule tuned so the four commute requests land inside the
  /// default LBQID element windows (morning home [7,9], morning office
  /// [7,10], evening office [16,18], evening home [16,19]).
  static CommuterOptions DefaultCommuterOptions() {
    CommuterOptions options;
    options.depart_home_mean = 7 * 3600 + 50 * 60;  // 07:50
    options.depart_office_mean = 17 * 3600;         // 17:00
    return options;
  }
};

/// \brief A commuter's ground truth (TS-side knowledge).
struct CommuterInfo {
  mod::UserId user = mod::kInvalidUser;
  geo::Point home;
  geo::Point office;
};

/// \brief A generated population.
struct Population {
  World world;
  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<CommuterInfo> commuters;
  PopulationOptions options;
  /// Set when options.use_road_network; shared with the agents.
  std::shared_ptr<const roadnet::RoadGraph> road_graph;
};

/// Builds a population deterministically from `rng`.  Commuters get user
/// ids [0, num_commuters); wanderers follow.  Every commuter's home is
/// entered in the world's phone-book registry.
Population BuildPopulation(const PopulationOptions& options,
                           common::Rng* rng);

/// The Example-2 LBQID for one commuter:
///   <home, [7,9]> <office, [7,10]> <office, [16,18]> <home, [16,19]>
///   Recurrence: parsed from `recurrence_text` (default "3.weekdays *
///   2.week", the paper's "3 weekdays in the same week, for at least 2
///   weeks").
common::Result<lbqid::Lbqid> MakeCommuteLbqid(
    const CommuterInfo& commuter, const PopulationOptions& options,
    const tgran::GranularityRegistry& registry,
    const std::string& recurrence_text = "3.weekdays * 2.week");

}  // namespace sim
}  // namespace histkanon

#endif  // HISTKANON_SRC_SIM_POPULATION_H_
