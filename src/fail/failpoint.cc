#include "src/fail/failpoint.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/fail/sites.h"

namespace histkanon {
namespace fail {

common::Status Action::ToStatus() const {
  if (kind != ActionKind::kError) return common::Status::OK();
  std::string what = message;
  if (what.empty()) what = "injected fault";
  if (!site.empty()) {
    what += " at ";
    what += site;
  }
  return common::Status(code, std::move(what));
}

Action ErrorAction(common::StatusCode code, std::string message) {
  Action action;
  action.kind = ActionKind::kError;
  action.code = code;
  action.message = std::move(message);
  return action;
}

Action DelayAction(int64_t delay_ms) {
  Action action;
  action.kind = ActionKind::kDelay;
  action.delay_ms = delay_ms;
  return action;
}

Action PartialWriteAction(double keep_fraction) {
  Action action;
  action.kind = ActionKind::kPartialWrite;
  action.keep_fraction = keep_fraction;
  return action;
}

Schedule Always() { return Schedule{}; }

Schedule OnNth(uint64_t n) {
  Schedule schedule;
  schedule.kind = ScheduleKind::kOnNth;
  schedule.n = n;
  return schedule;
}

Schedule EveryNth(uint64_t n) {
  Schedule schedule;
  schedule.kind = ScheduleKind::kEveryNth;
  schedule.n = n;
  return schedule;
}

Schedule WithProbability(double p, uint64_t seed) {
  Schedule schedule;
  schedule.kind = ScheduleKind::kProbability;
  schedule.probability = p;
  schedule.seed = seed;
  return schedule;
}

size_t ClipWrite(const Action& action, size_t n) {
  if (action.kind != ActionKind::kPartialWrite) return n;
  double keep = action.keep_fraction;
  if (keep < 0.0) keep = 0.0;
  if (keep > 1.0) keep = 1.0;
  return static_cast<size_t>(static_cast<double>(n) * keep);
}

FailPoint::FailPoint(std::string name) : name_(std::move(name)) {}

FailPoint::~FailPoint() = default;

void FailPoint::Arm(const Action& action, const Schedule& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  action_ = action;
  schedule_ = schedule;
  hit_counter_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  rng_.reset();
  if (schedule.kind == ScheduleKind::kProbability) {
    rng_ = std::make_unique<common::Rng>(schedule.seed);
  }
  armed_.store(true, std::memory_order_release);
}

void FailPoint::Disarm() { armed_.store(false, std::memory_order_release); }

Action FailPoint::Evaluate() {
  // Disarmed fast path: this load is the entire cost of a quiet site.
  if (!armed_.load(std::memory_order_relaxed)) return Action{};
  Action fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return Action{};  // raced
    const uint64_t hit = ++hit_counter_;
    hits_.fetch_add(1, std::memory_order_relaxed);
    bool fire = false;
    switch (schedule_.kind) {
      case ScheduleKind::kAlways:
        fire = true;
        break;
      case ScheduleKind::kOnNth:
        fire = schedule_.n != 0 && hit == schedule_.n;
        break;
      case ScheduleKind::kEveryNth:
        fire = schedule_.n != 0 && hit % schedule_.n == 0;
        break;
      case ScheduleKind::kProbability:
        fire = rng_ != nullptr && rng_->Bernoulli(schedule_.probability);
        break;
    }
    if (!fire) return Action{};
    fires_.fetch_add(1, std::memory_order_relaxed);
    fired = action_;
    fired.site = name_;
  }
  // Delays sleep here, outside the lock, so a stalled site cannot block
  // Arm/Disarm or other threads hitting the same site.
  if (fired.kind == ActionKind::kDelay && fired.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
  }
  return fired;
}

Registry& Registry::Instance() {
  static Registry* const kInstance = new Registry();  // never destroyed
  return *kInstance;
}

Registry::Registry() {
  for (const char* name : kAllSites) {
    sites_.emplace(name, std::make_unique<FailPoint>(name));
  }
}

FailPoint* Registry::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(name),
                        std::make_unique<FailPoint>(std::string(name)))
             .first;
  }
  return it->second.get();
}

std::vector<FailPoint*> Registry::Sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailPoint*> sites;
  sites.reserve(sites_.size());
  for (const auto& [name, point] : sites_) sites.push_back(point.get());
  return sites;  // std::map iterates in name order
}

void Registry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, point] : sites_) point->Disarm();
}

ScopedFailPoint::ScopedFailPoint(std::string_view site, const Action& action,
                                 const Schedule& schedule)
    : point_(Registry::Instance().Get(site)) {
  point_->Arm(action, schedule);
}

ScopedFailPoint::~ScopedFailPoint() { point_->Disarm(); }

}  // namespace fail
}  // namespace histkanon
