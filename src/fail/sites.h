// The site inventory: every failpoint name used anywhere in the library.
//
// Add new sites HERE (and to kAllSites) so the registry pre-registers them
// and the CI sweep (tests/failpoint_sweep_test.cc) refuses to pass until
// the new site has a driver that fires it.

#ifndef HISTKANON_SRC_FAIL_SITES_H_
#define HISTKANON_SRC_FAIL_SITES_H_

#include <cstddef>

namespace histkanon {
namespace fail {

// -- dur: journal + file sink I/O -------------------------------------------

/// TsJournal::AppendEvent — the write-ahead append a mutation admission
/// depends on (fires = the event is NOT journaled and must be suppressed).
inline constexpr const char kDurJournalAppend[] = "dur.journal.append";
/// TsJournal::AppendSnapshot — checkpoint blob append.
inline constexpr const char kDurJournalSnapshot[] = "dur.journal.snapshot";
/// FileSink::Open — fopen failure (permission / missing directory).
inline constexpr const char kDurFileOpen[] = "dur.file.open";
/// FileSink::Append — whole-write failure (disk full before any byte).
inline constexpr const char kDurFileWrite[] = "dur.file.write";
/// FileSink::Append — short write: a PREFIX reaches the disk (torn tail
/// for the recovery scan), then the append reports an error.
inline constexpr const char kDurFilePartialWrite[] = "dur.file.partial_write";
/// FileSink::Sync — fflush failure.
inline constexpr const char kDurFileFlush[] = "dur.file.flush";
/// FileSink::Sync — fsync failure (torn sync: data may or may not be
/// durable).
inline constexpr const char kDurFileSync[] = "dur.file.sync";

/// TsJournal::Compact — failure while writing/syncing the copied-forward
/// journal tmp file (disk full mid-compaction; the original journal stays
/// the durable artifact).
inline constexpr const char kDurCompactWrite[] = "dur.compact.write";
/// TsJournal::Compact — rename(tmp, journal) failure: the compacted bytes
/// are complete but never became the journal; the original file survives.
inline constexpr const char kDurCompactRename[] = "dur.compact.rename";
/// TsJournal::Compact — reopening the compacted file in append mode
/// failed.  The journal marks its sink broken: every later append fails
/// and the breaker sheds fail-closed (an applied-but-unjournaled event is
/// never possible).
inline constexpr const char kDurCompactReopen[] = "dur.compact.reopen";

// -- mod: store reads --------------------------------------------------------

/// MovingObjectDb::GetPhl — store read failure.  Unit-test only: arming it
/// mid-pipeline changes request outcomes, so the chaos differential (which
/// requires byte-identical convergence on accepted events) must not.
inline constexpr const char kModStoreGetPhl[] = "mod.store.get_phl";

// -- mod: tiered cold storage ------------------------------------------------

/// ColdTier::WriteSegment — segment write/sync failure (disk full on
/// seal).  Nothing is evicted from the hot tier: the seal-failure breaker
/// counts it and retries later.
inline constexpr const char kModColdSeal[] = "mod.cold.seal";
/// ColdTier::WriteSegment — rename(tmp, segment) failure after a complete
/// tmp write (same fail-closed contract: the hot tier is untouched).
inline constexpr const char kModColdSealRename[] = "mod.cold.seal_rename";
/// ColdTier segment fault-in — read/open failure or CRC mismatch loading a
/// cold segment.  The read answers hot-only and bumps the fault counter;
/// the serving layer must shed the affected request (Throttled), never
/// serve a wrong anonymity set.
inline constexpr const char kModColdLoad[] = "mod.cold.load";

// -- mod: columnar hot tier --------------------------------------------------

/// ColumnArena::Allocate — arena block growth failure (allocation would
/// need a NEW backing block and the reservation fails).  Surfaces as an
/// Unavailable append: nothing is applied, the store is unchanged.
inline constexpr const char kModArenaGrow[] = "mod.arena.grow";
/// Phl::DropPrefix — failure allocating the right-sized replacement slab
/// while sealing a column prefix.  Fail-open: the drop falls back to an
/// in-place shift (answers identical, the slab just isn't shrunk).
inline constexpr const char kModColumnSeal[] = "mod.column.seal";

// -- ts: shard workers + checkpoint ------------------------------------------

/// Shard::WorkerLoop — stall after popping an event (wedged worker:
/// produces queue backpressure against the front-end).
inline constexpr const char kTsShardWorkerStall[] = "ts.shard.worker.stall";
/// Shard::Serve — stall before serving a request (slow pipeline).
inline constexpr const char kTsShardServeStall[] = "ts.shard.serve.stall";
/// TrustedServer::Checkpoint — snapshot serialization failure.
inline constexpr const char kTsCheckpoint[] = "ts.checkpoint";

// -- net: RPC serving layer --------------------------------------------------

/// RpcServer accept path — accept(2) failure (fd exhaustion, aborted
/// handshake); the acceptor must log-and-continue, never exit.
inline constexpr const char kNetAccept[] = "net.accept";
/// RpcServer read path — recv(2) failure on an established session
/// (connection reset mid-frame); the session closes, admitted state stays.
inline constexpr const char kNetRead[] = "net.read";
/// RpcServer write path — send(2) failure while flushing replies (peer
/// vanished); the session closes, replies for other sessions still flow.
inline constexpr const char kNetWrite[] = "net.write";
/// RpcServer close path — close(2) failure (fires = the error is swallowed;
/// the fd table must not leak the session).
inline constexpr const char kNetClose[] = "net.close";

// -- bench -------------------------------------------------------------------

/// bench/micro_overload.cc — a site that guards nothing, for measuring the
/// disarmed-site overhead.
inline constexpr const char kBenchNoop[] = "bench.noop";

/// Every site above, for registry pre-registration and the CI sweep.
inline constexpr const char* kAllSites[] = {
    kDurJournalAppend, kDurJournalSnapshot, kDurFileOpen,
    kDurFileWrite,     kDurFilePartialWrite, kDurFileFlush,
    kDurFileSync,      kDurCompactWrite,     kDurCompactRename,
    kDurCompactReopen, kModStoreGetPhl,      kModColdSeal,
    kModColdSealRename, kModColdLoad,        kModArenaGrow,
    kModColumnSeal,     kTsShardWorkerStall,
    kTsShardServeStall, kTsCheckpoint,       kNetAccept,
    kNetRead,          kNetWrite,            kNetClose,
    kBenchNoop,
};
inline constexpr size_t kNumSites = sizeof(kAllSites) / sizeof(kAllSites[0]);

}  // namespace fail
}  // namespace histkanon

#endif  // HISTKANON_SRC_FAIL_SITES_H_
