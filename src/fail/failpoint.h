// Deterministic fault injection: named failpoint sites threaded through
// the I/O and concurrency layers, armed per-test with a schedule (fire on
// the Nth hit, every Nth hit, or with a seeded probability) and an action
// (inject a typed error Status, stall the caller, or truncate a write).
//
// Cost model: a DISARMED site is a single relaxed atomic load behind a
// function-local static pointer (no registry lookup after the first hit);
// with -DHISTKANON_NO_FAILPOINTS (CMake: -DHISTKANON_FAILPOINTS=OFF) every
// site macro compiles to nothing at all.  bench/micro_overload.cc measures
// the disarmed-site cost and gates it against a no-site control loop.
//
// Usage at a site:
//
//   common::Status FileSink::Append(std::string_view bytes) {
//     HISTKANON_FAILPOINT_RETURN(fail::kDurFileWrite);   // injected errors
//     size_t keep = HISTKANON_FAILPOINT_CLIP(fail::kDurFilePartialWrite,
//                                            bytes.size());
//     ...
//
// Usage in a test:
//
//   fail::ScopedFailPoint fp(fail::kDurFileWrite,
//                            fail::ErrorAction(common::StatusCode::kInternal,
//                                              "disk full"),
//                            fail::OnNth(2));          // disarmed on exit

#ifndef HISTKANON_SRC_FAIL_FAILPOINT_H_
#define HISTKANON_SRC_FAIL_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace histkanon {
namespace common {
class Rng;
}  // namespace common

namespace fail {

/// True when failpoint sites are compiled into the library.  Tests that
/// need sites to fire should GTEST_SKIP when this is false (the
/// HISTKANON_FAILPOINTS=OFF build still compiles and links everything).
#ifdef HISTKANON_NO_FAILPOINTS
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// What a firing site does to its caller.
enum class ActionKind : uint8_t {
  kOff = 0,           ///< Did not fire; the site proceeds normally.
  kError = 1,         ///< Inject a typed common::Status error.
  kDelay = 2,         ///< Stall the calling thread for delay_ms.
  kPartialWrite = 3,  ///< Truncate the site's write to keep_fraction.
};

/// \brief The effect evaluated at a site.  A default-constructed Action is
/// kOff ("nothing fired").
struct Action {
  ActionKind kind = ActionKind::kOff;
  /// kError: the injected status code.
  common::StatusCode code = common::StatusCode::kInternal;
  /// kError: the injected message ("injected fault at <site>" if empty).
  std::string message;
  /// kDelay: how long Evaluate() stalls the caller, in milliseconds.
  int64_t delay_ms = 0;
  /// kPartialWrite: fraction of the write to keep, in [0, 1).
  double keep_fraction = 0.0;
  /// Name of the site that fired (filled in by Evaluate()).
  std::string site;

  /// True iff the action fired (any kind but kOff).
  bool fired() const { return kind != ActionKind::kOff; }
  /// The injected error for a kError action; OK for every other kind.
  common::Status ToStatus() const;
};

/// An error-injecting action.
Action ErrorAction(common::StatusCode code, std::string message = "");
/// A caller-stalling action.
Action DelayAction(int64_t delay_ms);
/// A write-truncating action (keep_fraction of the bytes reach the sink).
Action PartialWriteAction(double keep_fraction);

/// When an armed site fires, as a function of its hit count since arming.
enum class ScheduleKind : uint8_t {
  kAlways = 0,       ///< Every hit.
  kOnNth = 1,        ///< Exactly the Nth hit (1-based), once.
  kEveryNth = 2,     ///< Every Nth hit (N, 2N, 3N, ...).
  kProbability = 3,  ///< Each hit independently with probability p (seeded).
};

/// \brief Firing schedule for an armed site.
struct Schedule {
  ScheduleKind kind = ScheduleKind::kAlways;
  /// kOnNth / kEveryNth: the N (1-based; 0 never fires).
  uint64_t n = 1;
  /// kProbability: per-hit firing probability in [0, 1].
  double probability = 1.0;
  /// kProbability: seed of the schedule's private RNG stream — two runs
  /// with the same seed fire on the same hit numbers.
  uint64_t seed = 0;
};

/// Fire on every hit.
Schedule Always();
/// Fire exactly once, on the Nth hit (1-based).
Schedule OnNth(uint64_t n);
/// Fire on hits N, 2N, 3N, ...
Schedule EveryNth(uint64_t n);
/// Fire each hit independently with probability p, from a seeded stream.
Schedule WithProbability(double p, uint64_t seed);

/// \brief One named injection site.  Sites are created once (by the
/// registry) and never destroyed; Evaluate() is safe from any thread.
class FailPoint {
 public:
  explicit FailPoint(std::string name);
  ~FailPoint();

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const std::string& name() const { return name_; }

  /// Arms the site: subsequent Evaluate() calls run `schedule` and return
  /// `action` on the hits it selects.  Resets the hit counter.
  void Arm(const Action& action, const Schedule& schedule);

  /// Disarms the site (Evaluate() returns kOff again).  Counters persist
  /// until the next Arm.
  void Disarm();

  /// True while armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// \brief The hot path, called at the site.  Disarmed: one relaxed
  /// atomic load, returns kOff.  Armed: runs the schedule; a kDelay action
  /// sleeps HERE (callers need no delay handling); kError/kPartialWrite
  /// are returned for the site to apply.
  Action Evaluate();

  /// Hits evaluated while armed (since the last Arm).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Hits on which the schedule fired (since the last Arm).
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
  std::mutex mu_;  // guards the armed-state fields below
  Action action_;
  Schedule schedule_;
  uint64_t hit_counter_ = 0;  // schedule position (reset by Arm)
  std::unique_ptr<common::Rng> rng_;
};

/// \brief Process-wide site registry.  Every site named in
/// src/fail/sites.h is pre-registered at first use, so test sweeps can
/// enumerate the full site inventory without having executed the sites.
class Registry {
 public:
  static Registry& Instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The site with this name, creating it on first use.  The returned
  /// pointer is valid for the life of the process.
  FailPoint* Get(std::string_view name);

  /// Every registered site, sorted by name.
  std::vector<FailPoint*> Sites() const;

  /// Disarms every site (test teardown safety net).
  void DisarmAll();

 private:
  Registry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FailPoint>, std::less<>> sites_;
};

/// \brief RAII arming for tests: arms a site on construction, disarms on
/// scope exit.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string_view site, const Action& action,
                  const Schedule& schedule = Always());
  ~ScopedFailPoint();

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  FailPoint* point() { return point_; }
  uint64_t fires() const { return point_->fires(); }
  uint64_t hits() const { return point_->hits(); }

 private:
  FailPoint* point_;
};

/// Applies a kPartialWrite action to a write of n bytes: the truncated
/// length for a fired partial write, n otherwise.
size_t ClipWrite(const Action& action, size_t n);

}  // namespace fail
}  // namespace histkanon

// -- Site macros ------------------------------------------------------------
//
// HISTKANON_FAILPOINT(name)         -> fail::Action   (evaluate; delays
//                                      already applied)
// HISTKANON_FAILPOINT_HIT(name)        statement: evaluate and discard
//                                      (stall-only sites)
// HISTKANON_FAILPOINT_RETURN(name)     statement: if an error action fired,
//                                      return its Status from the enclosing
//                                      function (also works for Result<T>)
// HISTKANON_FAILPOINT_CLIP(name, n) -> size_t: n, or the truncated length
//                                      when a partial-write action fired

#ifndef HISTKANON_NO_FAILPOINTS

#define HISTKANON_FAILPOINT(site_name)                          \
  ([&]() -> ::histkanon::fail::Action {                         \
    static ::histkanon::fail::FailPoint* const _hk_fp =         \
        ::histkanon::fail::Registry::Instance().Get(site_name); \
    return _hk_fp->Evaluate();                                  \
  }())

#define HISTKANON_FAILPOINT_HIT(site_name) \
  do {                                     \
    (void)HISTKANON_FAILPOINT(site_name);  \
  } while (false)

#define HISTKANON_FAILPOINT_RETURN(site_name)                        \
  do {                                                               \
    const ::histkanon::fail::Action _hk_action =                     \
        HISTKANON_FAILPOINT(site_name);                              \
    if (_hk_action.kind == ::histkanon::fail::ActionKind::kError)    \
      return _hk_action.ToStatus();                                  \
  } while (false)

#define HISTKANON_FAILPOINT_CLIP(site_name, n) \
  (::histkanon::fail::ClipWrite(HISTKANON_FAILPOINT(site_name), (n)))

#else  // HISTKANON_NO_FAILPOINTS

#define HISTKANON_FAILPOINT(site_name) (::histkanon::fail::Action{})
#define HISTKANON_FAILPOINT_HIT(site_name) \
  do {                                     \
  } while (false)
#define HISTKANON_FAILPOINT_RETURN(site_name) \
  do {                                        \
  } while (false)
#define HISTKANON_FAILPOINT_CLIP(site_name, n) (n)

#endif  // HISTKANON_NO_FAILPOINTS

#endif  // HISTKANON_SRC_FAIL_FAILPOINT_H_
