// Crash safety for the Trusted Server: a write-ahead journal of every
// ingested event, versioned whole-state snapshots, and replay-based
// recovery.
//
// The durability model (DESIGN.md §11):
//
//  - every entry point (service/user/LBQID registration, rule attachment,
//    location update, request) is journaled BEFORE it is applied; the
//    pipeline is deterministic given the journaled stream and the
//    checkpointed RNG states, so replaying the journal against the last
//    intact snapshot reproduces the crashed server's state — including
//    pseudonyms and message ids — byte for byte;
//  - snapshots are embedded in the journal as records of their own type,
//    so a snapshot torn by the crash is discarded by the same CRC/length
//    scan that discards torn events, and recovery falls back to the
//    previous intact snapshot (or genesis) plus a longer replay;
//  - the framing (src/dur/framing.h) guarantees torn tails and corrupted
//    records are detected and cleanly discarded, never replayed.
//
// The recovery invariant, proved by tests/recovery_differential_test.cc:
// for a crash after ANY journal byte, RecoverTrustedServer + replay of the
// not-yet-journaled suffix yields SP-visible output (dispositions, boxes,
// stats, Theorem-1 audits, pseudonyms, msgids) identical to a run that
// never crashed.

#ifndef HISTKANON_SRC_TS_DURABILITY_H_
#define HISTKANON_SRC_TS_DURABILITY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/dur/sink.h"
#include "src/tgran/granularity.h"
#include "src/ts/concurrent_server.h"
#include "src/ts/trusted_server.h"
#include "src/ts/workload.h"

namespace histkanon {
namespace ts {

/// Journal record types (first payload byte of every framed record).
inline constexpr uint8_t kJournalEventRecord = 0x01;
inline constexpr uint8_t kJournalSnapshotRecord = 0x02;
/// Trace-id annotation: carries the allocator position (next trace id) so
/// a recovered server resumes the exact id sequence.  Annotations are
/// observability metadata — replay ignores them for state, and a server
/// running without a tracer never writes them (journal bytes stay
/// bit-identical to a tracing-off run).
inline constexpr uint8_t kJournalAnnotationRecord = 0x03;

/// \brief One journaled Trusted-Server input event.
struct JournalEvent {
  enum class Kind : uint8_t {
    kRegisterService = 1,
    kRegisterUser = 2,
    kRegisterLbqid = 3,
    kSetRules = 4,
    kUpdate = 5,
    kRequest = 6,
    /// Epoch boundary of a ConcurrentServer stream (no-op on a serial
    /// replay, EndEpoch on a concurrent one).
    kEpochEnd = 7,
    /// A whole ProcessBatch window, admitted as ONE composite event so
    /// replay reproduces the batch semantics (up-front ingest + prewarm)
    /// rather than per-request semantics.
    kBatch = 8,
  };

  Kind kind = Kind::kUpdate;
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint point;
  mod::ServiceId service_id = 0;
  std::string data;
  /// kRegisterService payload.
  anon::ServiceProfile service;
  /// kRegisterUser payload.
  PrivacyPolicy policy;
  /// kRegisterLbqid payload.
  std::shared_ptr<const lbqid::Lbqid> lbqid;
  /// kSetRules payload.
  std::shared_ptr<const PolicyRuleSet> rules;
  /// kBatch payload.
  std::shared_ptr<const std::vector<BatchRequest>> batch;
};

/// Serializes an event into a record payload (kJournalEventRecord-tagged).
std::string EncodeJournalEvent(const JournalEvent& event);

/// Decodes an event payload.  Granularity names inside LBQID recurrences
/// are resolved through `registry`; unknown names fail (custom
/// granularities must be re-registered before recovery).
common::Result<JournalEvent> DecodeJournalEvent(
    std::string_view payload, const tgran::GranularityRegistry& registry);

/// \brief An in-memory write-ahead journal (the byte string is the
/// durable artifact: persist it with WriteToFile or your own I/O, append
/// granularity = one framed record), optionally teed record-by-record to
/// a dur::JournalSink.
///
/// Appends are all-or-nothing from the caller's view: on a non-OK return
/// (injected fault at dur.journal.*, or a sink I/O error) neither the
/// in-memory bytes nor event_count() change — the event was NOT journaled
/// and a fail-closed server must suppress it.  A sink may still hold a
/// torn physical prefix; the recovery scan discards it by CRC.
class TsJournal {
 public:
  TsJournal();

  /// Appends one event record.
  common::Status AppendEvent(const JournalEvent& event);

  /// Appends a snapshot record embedding `snapshot` (a TrustedServer::
  /// Checkpoint() or ConcurrentServer::Checkpoint() blob) tagged with the
  /// number of events journaled so far — recovery replays only the events
  /// after the last intact snapshot.
  common::Status AppendSnapshot(std::string_view snapshot);

  /// Appends a trace-id annotation record (kJournalAnnotationRecord).
  /// Does not count as an event.  Only written when a tracer is attached;
  /// failures are ignorable (the annotation is an optimization — replay of
  /// the admitted events reconstructs the same counter).
  common::Status AppendAnnotation(uint64_t next_trace_id);

  /// Tees every subsequent append to `sink` (not owned, must outlive the
  /// journal; nullptr detaches).  Bytes already journaled are written to
  /// the sink immediately, so sink contents == bytes() at every OK
  /// return.
  common::Status AttachSink(dur::JournalSink* sink);

  /// Syncs the attached sink (no-op without one).
  common::Status Sync();

  /// The journal bytes (magic + records), crash-consistent at any record
  /// boundary.
  const std::string& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

  /// Events appended so far (snapshot records do not count).
  size_t event_count() const { return event_count_; }

  common::Status WriteToFile(const std::string& path) const;

  // -- Snapshot-anchored compaction (DESIGN.md §16).

  /// Opens (creating or truncating) `path` as this journal's OWNED file
  /// sink, with AttachSink catch-up semantics (bytes journaled so far are
  /// written through immediately).  Owning the sink is what lets
  /// Compact() atomically swap the underlying file.
  common::Status OpenFileSink(std::string path);

  /// Drops the journal prefix the last intact snapshot record subsumes:
  /// the journal becomes magic + that snapshot record + everything after
  /// it.  Recovery is unchanged — the snapshot record carries the
  /// absolute event count, so replay resumes from the same position.
  ///
  /// With an owned file sink the swap is crash-safe: the compacted image
  /// is written to a tmp file, synced, and renamed over the journal — a
  /// crash at any byte leaves either the full or the compacted file, both
  /// valid.  If the post-rename reopen fails, the journal goes
  /// fail-closed (sink_broken(): every later append errors) rather than
  /// silently diverging from the file.  No-op without a snapshot;
  /// FailedPrecondition when a non-owned sink is attached (its contents
  /// could not be rewritten).
  common::Status Compact();

  /// Compacts automatically after every successful AppendSnapshot.
  void SetAutoCompact(bool on) { auto_compact_ = on; }

  /// Compactions completed.
  uint64_t compactions() const { return compactions_; }
  /// Byte offset of the last snapshot record in bytes() (0 = none yet).
  size_t last_snapshot_offset() const { return last_snapshot_offset_; }
  /// True after a compaction renamed the file but could not reopen it;
  /// the journal refuses further appends (fail-closed).
  bool sink_broken() const { return sink_broken_; }

 private:
  /// Appends the bytes_ suffix starting at `old_size` to the sink; on
  /// failure rolls bytes_ back to old_size (the record never happened).
  common::Status CommitAppend(size_t old_size);

  std::string bytes_;
  size_t event_count_ = 0;
  dur::JournalSink* sink_ = nullptr;
  /// Compaction state: the owned sink (when OpenFileSink wired one), its
  /// path, and the offset of the last durable snapshot record.
  std::unique_ptr<dur::FileSink> owned_sink_;
  std::string path_;
  size_t last_snapshot_offset_ = 0;
  bool auto_compact_ = false;
  bool sink_broken_ = false;
  uint64_t compactions_ = 0;
};

/// \brief What a scan recovered from (possibly damaged) journal bytes.
struct RecoveredJournal {
  /// The last intact snapshot blob (empty: recover from genesis).
  std::string snapshot;
  /// Events journaled before that snapshot (skipped by replay).
  size_t events_before_snapshot = 0;
  /// The intact events AFTER the snapshot, in journal order.
  std::vector<JournalEvent> events;
  /// events_before_snapshot + events.size(): the journal position a
  /// recovered server resumes from.
  size_t total_events = 0;
  /// Bytes of the intact prefix (truncate the file here to clean it).
  size_t valid_bytes = 0;
  /// False when a torn or corrupted tail was discarded.
  bool clean = true;
  std::string tail_error;
  /// Last intact trace-id annotation, when one was journaled (a run with a
  /// tracer attached).  Recovery seeds the trace-id allocator from it and
  /// replay of the event suffix advances it to the crash position.
  bool has_trace_annotation = false;
  uint64_t next_trace_id = 0;
  /// Events journaled before the last intact annotation (replayed events
  /// past this point each advance the recovered allocator).
  size_t events_before_annotation = 0;
};

/// Scans journal bytes, decoding events and locating the last intact
/// snapshot.  Damage (torn tail, CRC mismatch, undecodable record) stops
/// the scan: everything after the last intact record is discarded and
/// reported via clean/tail_error.  Fails only when the bytes are not a
/// journal at all.
common::Result<RecoveredJournal> ScanJournal(
    std::string_view bytes, const tgran::GranularityRegistry& registry);

/// Every intact event in the journal, ignoring snapshots (the full input
/// stream — the kill-point harness uses it to continue a recovered run).
common::Result<std::vector<JournalEvent>> DecodeAllEvents(
    std::string_view bytes, const tgran::GranularityRegistry& registry);

/// Applies one event to a serial server by invoking the corresponding
/// entry point (kEpochEnd is a no-op: the serial replay order already is
/// the epoch-normalized order).  Failing registrations are ignored — the
/// original call failed identically.
void ApplyJournalEvent(TrustedServer* server, const JournalEvent& event);

/// Applies one event to a concurrent server (Submit*/EndEpoch;
/// kRegisterService applies synchronously and must precede streaming,
/// which journal order guarantees).
void ApplyConcurrentJournalEvent(ConcurrentServer* server,
                                 const JournalEvent& event);

/// The exact call sequence ReplayEpochsSerial makes, as journal events:
/// service registrations, then per epoch the ingest pass (every event;
/// requests contribute their exact point as a kUpdate) followed by the
/// serve pass (kRequest).  Feeding these through ApplyJournalEvent
/// reproduces ReplayEpochsSerial(workload, server) exactly.
std::vector<JournalEvent> FlattenSerialWorkload(
    const EpochedWorkload& workload);

/// The ReplayEpochsConcurrent submission stream as journal events (every
/// epoch's events in submission order, each epoch closed by kEpochEnd).
std::vector<JournalEvent> FlattenConcurrentWorkload(
    const EpochedWorkload& workload);

/// \brief A server rebuilt from a journal.
struct RecoveredServer {
  std::unique_ptr<TrustedServer> server;
  /// Journal position recovered to: the caller resumes the input stream
  /// from this event index.
  size_t events_applied = 0;
  bool clean_tail = true;
  std::string tail_error;
};

/// Rebuilds a serial server from journal bytes: constructs it with
/// `options`, restores the last intact snapshot, replays the intact event
/// suffix.  The recovered server has NO journal attached; attach a fresh
/// one before resuming ingestion.  `options` must match the crashed
/// server's (the snapshot fingerprint is verified).
common::Result<RecoveredServer> RecoverTrustedServer(
    std::string_view journal_bytes, const TrustedServerOptions& options,
    const tgran::GranularityRegistry& registry);

/// \brief A concurrent server rebuilt from a journal.
struct RecoveredConcurrentServer {
  std::unique_ptr<ConcurrentServer> server;
  size_t events_applied = 0;
  bool clean_tail = true;
  std::string tail_error;
};

/// Rebuilds a sharded server from journal bytes: constructs it with
/// `options` (same shard count as the crashed server), restores the last
/// intact composite snapshot into the shards, and re-submits the intact
/// event suffix.  The caller resumes the submission stream from
/// events_applied and must still EndEpoch/Finish as usual.
common::Result<RecoveredConcurrentServer> RecoverConcurrentServer(
    std::string_view journal_bytes, ConcurrentServerOptions options,
    const tgran::GranularityRegistry& registry);

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_DURABILITY_H_
