// Implementation of the durability layer: the journal event codec, the
// TrustedServer snapshot codec, and replay-based recovery.  The
// TrustedServer member functions declared under "Durability" in
// trusted_server.h live here too, next to the record formats they depend
// on.

#include "src/ts/durability.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <utility>

#include "src/common/str.h"
#include "src/dur/encode.h"
#include "src/dur/framing.h"
#include "src/fail/failpoint.h"
#include "src/fail/sites.h"
#include "src/ts/shard.h"

namespace histkanon {
namespace ts {
namespace {

constexpr std::string_view kSnapshotMagic = "HKSNAP01";
constexpr std::string_view kConcurrentSnapshotMagic = "HKCCKPT1";

// ---------------------------------------------------------------------
// Primitive codecs.  Every decoder is Status-returning and validates
// enum ranges: snapshot bytes come from disk and a CRC only proves the
// bytes are the ones written, not that they are sane.

void PutPoint(dur::ByteWriter* writer, const geo::STPoint& point) {
  writer->PutDouble(point.p.x);
  writer->PutDouble(point.p.y);
  writer->PutI64(point.t);
}

common::Status ReadPoint(dur::ByteReader* reader, geo::STPoint* point) {
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&point->p.x));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&point->p.y));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&point->t));
  return common::Status::OK();
}

void PutBox(dur::ByteWriter* writer, const geo::STBox& box) {
  writer->PutDouble(box.area.min_x);
  writer->PutDouble(box.area.min_y);
  writer->PutDouble(box.area.max_x);
  writer->PutDouble(box.area.max_y);
  writer->PutI64(box.time.lo);
  writer->PutI64(box.time.hi);
}

common::Status ReadBox(dur::ByteReader* reader, geo::STBox* box) {
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.min_x));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.min_y));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.max_x));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&box->area.max_y));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&box->time.lo));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&box->time.hi));
  return common::Status::OK();
}

void PutRngState(dur::ByteWriter* writer, const common::Rng::State& state) {
  for (const uint64_t word : state.s) writer->PutU64(word);
  writer->PutBool(state.has_cached_normal);
  writer->PutDouble(state.cached_normal);
}

common::Status ReadRngState(dur::ByteReader* reader,
                            common::Rng::State* state) {
  for (uint64_t& word : state->s) HISTKANON_RETURN_NOT_OK(reader->ReadU64(&word));
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&state->has_cached_normal));
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&state->cached_normal));
  return common::Status::OK();
}

void PutPolicy(dur::ByteWriter* writer, const PrivacyPolicy& policy) {
  writer->PutU8(static_cast<uint8_t>(policy.concern));
  writer->PutU64(policy.k);
  writer->PutDouble(policy.theta);
  writer->PutDouble(policy.k_schedule.initial_factor);
  writer->PutU64(policy.k_schedule.decrement_per_step);
  writer->PutDouble(policy.default_context_scale);
}

common::Status ReadPolicy(dur::ByteReader* reader, PrivacyPolicy* policy) {
  uint8_t concern = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU8(&concern));
  if (concern > static_cast<uint8_t>(PrivacyConcern::kHigh)) {
    return common::Status::InvalidArgument("bad privacy concern byte");
  }
  policy->concern = static_cast<PrivacyConcern>(concern);
  uint64_t k = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&k));
  policy->k = static_cast<size_t>(k);
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&policy->theta));
  HISTKANON_RETURN_NOT_OK(
      reader->ReadDouble(&policy->k_schedule.initial_factor));
  uint64_t decrement = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&decrement));
  policy->k_schedule.decrement_per_step = static_cast<size_t>(decrement);
  HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&policy->default_context_scale));
  return common::Status::OK();
}

void PutService(dur::ByteWriter* writer, const anon::ServiceProfile& service) {
  writer->PutI32(service.id);
  writer->PutString(service.name);
  writer->PutDouble(service.tolerance.max_area_width);
  writer->PutDouble(service.tolerance.max_area_height);
  writer->PutI64(service.tolerance.max_time_window);
}

common::Status ReadService(dur::ByteReader* reader,
                           anon::ServiceProfile* service) {
  HISTKANON_RETURN_NOT_OK(reader->ReadI32(&service->id));
  HISTKANON_RETURN_NOT_OK(reader->ReadString(&service->name));
  HISTKANON_RETURN_NOT_OK(
      reader->ReadDouble(&service->tolerance.max_area_width));
  HISTKANON_RETURN_NOT_OK(
      reader->ReadDouble(&service->tolerance.max_area_height));
  HISTKANON_RETURN_NOT_OK(
      reader->ReadI64(&service->tolerance.max_time_window));
  return common::Status::OK();
}

void PutRuleSet(dur::ByteWriter* writer, const PolicyRuleSet& rules) {
  PutPolicy(writer, rules.fallback());
  writer->PutU64(rules.rules().size());
  for (const PolicyRule& rule : rules.rules()) {
    writer->PutBool(rule.service.has_value());
    if (rule.service.has_value()) writer->PutI32(*rule.service);
    writer->PutBool(rule.window.has_value());
    if (rule.window.has_value()) {
      writer->PutI64(rule.window->begin_second_of_day());
      writer->PutI64(rule.window->end_second_of_day());
    }
    writer->PutBool(rule.weekdays_only.has_value());
    if (rule.weekdays_only.has_value()) writer->PutBool(*rule.weekdays_only);
    PutPolicy(writer, rule.policy);
  }
}

common::Result<PolicyRuleSet> ReadRuleSet(dur::ByteReader* reader) {
  PrivacyPolicy fallback;
  HISTKANON_RETURN_NOT_OK(ReadPolicy(reader, &fallback));
  PolicyRuleSet rules(fallback);
  uint64_t count = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    PolicyRule rule;
    bool has = false;
    HISTKANON_RETURN_NOT_OK(reader->ReadBool(&has));
    if (has) {
      mod::ServiceId service = 0;
      HISTKANON_RETURN_NOT_OK(reader->ReadI32(&service));
      rule.service = service;
    }
    HISTKANON_RETURN_NOT_OK(reader->ReadBool(&has));
    if (has) {
      int64_t begin = 0;
      int64_t end = 0;
      HISTKANON_RETURN_NOT_OK(reader->ReadI64(&begin));
      HISTKANON_RETURN_NOT_OK(reader->ReadI64(&end));
      HISTKANON_ASSIGN_OR_RETURN(rule.window,
                                 tgran::UTimeInterval::Create(begin, end));
    }
    HISTKANON_RETURN_NOT_OK(reader->ReadBool(&has));
    if (has) {
      bool weekdays = false;
      HISTKANON_RETURN_NOT_OK(reader->ReadBool(&weekdays));
      rule.weekdays_only = weekdays;
    }
    HISTKANON_RETURN_NOT_OK(ReadPolicy(reader, &rule.policy));
    rules.AddRule(std::move(rule));
  }
  return rules;
}

void PutLbqid(dur::ByteWriter* writer, const lbqid::Lbqid& lbqid) {
  writer->PutString(lbqid.name());
  writer->PutU64(lbqid.elements().size());
  for (const lbqid::LbqidElement& element : lbqid.elements()) {
    writer->PutDouble(element.area.min_x);
    writer->PutDouble(element.area.min_y);
    writer->PutDouble(element.area.max_x);
    writer->PutDouble(element.area.max_y);
    writer->PutI64(element.time.begin_second_of_day());
    writer->PutI64(element.time.end_second_of_day());
  }
  // Granularities travel by NAME and are resolved against the decoder's
  // registry; custom granularities must be re-registered before recovery.
  writer->PutU64(lbqid.recurrence().terms().size());
  for (const tgran::RecurrenceTerm& term : lbqid.recurrence().terms()) {
    writer->PutI64(term.count);
    writer->PutString(term.granularity->name());
  }
}

common::Result<lbqid::Lbqid> ReadLbqid(
    dur::ByteReader* reader, const tgran::GranularityRegistry& registry) {
  std::string name;
  HISTKANON_RETURN_NOT_OK(reader->ReadString(&name));
  uint64_t element_count = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&element_count));
  std::vector<lbqid::LbqidElement> elements;
  for (uint64_t i = 0; i < element_count; ++i) {
    geo::Rect area;
    HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&area.min_x));
    HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&area.min_y));
    HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&area.max_x));
    HISTKANON_RETURN_NOT_OK(reader->ReadDouble(&area.max_y));
    int64_t begin = 0;
    int64_t end = 0;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&begin));
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&end));
    HISTKANON_ASSIGN_OR_RETURN(tgran::UTimeInterval time,
                               tgran::UTimeInterval::Create(begin, end));
    elements.push_back(lbqid::LbqidElement{area, time});
  }
  uint64_t term_count = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&term_count));
  std::vector<tgran::RecurrenceTerm> terms;
  for (uint64_t i = 0; i < term_count; ++i) {
    int64_t count = 0;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&count));
    std::string granularity_name;
    HISTKANON_RETURN_NOT_OK(reader->ReadString(&granularity_name));
    HISTKANON_ASSIGN_OR_RETURN(tgran::GranularityPtr granularity,
                               registry.Find(granularity_name));
    terms.push_back(
        tgran::RecurrenceTerm{static_cast<int>(count), granularity});
  }
  HISTKANON_ASSIGN_OR_RETURN(tgran::Recurrence recurrence,
                             tgran::Recurrence::Create(std::move(terms)));
  return lbqid::Lbqid::Create(std::move(name), std::move(elements),
                              std::move(recurrence));
}

void PutMatcherState(dur::ByteWriter* writer,
                     const lbqid::LbqidMatcher::DurableState& state) {
  writer->PutU64(state.partial_times.size());
  for (const geo::Instant t : state.partial_times) writer->PutI64(t);
  writer->PutBool(state.partial_granule.has_value());
  if (state.partial_granule.has_value()) writer->PutI64(*state.partial_granule);
  writer->PutU64(state.completions.size());
  for (const geo::Instant t : state.completions) writer->PutI64(t);
  writer->PutBool(state.complete);
}

common::Status ReadMatcherState(dur::ByteReader* reader,
                                lbqid::LbqidMatcher::DurableState* state) {
  uint64_t count = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    geo::Instant t = 0;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&t));
    state->partial_times.push_back(t);
  }
  bool has_granule = false;
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&has_granule));
  if (has_granule) {
    int64_t granule = 0;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&granule));
    state->partial_granule = granule;
  }
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    geo::Instant t = 0;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&t));
    state->completions.push_back(t);
  }
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&state->complete));
  return common::Status::OK();
}

void PutPseudonymState(dur::ByteWriter* writer,
                       const anon::PseudonymManager::DurableState& state) {
  PutRngState(writer, state.rng);
  writer->PutU64(state.current.size());
  for (const auto& [user, pseudonym] : state.current) {
    writer->PutI64(user);
    writer->PutString(pseudonym);
  }
  writer->PutU64(state.generation.size());
  for (const auto& [user, generation] : state.generation) {
    writer->PutI64(user);
    writer->PutU64(generation);
  }
  writer->PutU64(state.reverse.size());
  for (const auto& [pseudonym, user] : state.reverse) {
    writer->PutString(pseudonym);
    writer->PutI64(user);
  }
}

common::Status ReadPseudonymState(
    dur::ByteReader* reader, anon::PseudonymManager::DurableState* state) {
  HISTKANON_RETURN_NOT_OK(ReadRngState(reader, &state->rng));
  uint64_t count = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    mod::UserId user = mod::kInvalidUser;
    std::string pseudonym;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&user));
    HISTKANON_RETURN_NOT_OK(reader->ReadString(&pseudonym));
    state->current[user] = std::move(pseudonym);
  }
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    mod::UserId user = mod::kInvalidUser;
    uint64_t generation = 0;
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&user));
    HISTKANON_RETURN_NOT_OK(reader->ReadU64(&generation));
    state->generation[user] = static_cast<size_t>(generation);
  }
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string pseudonym;
    mod::UserId user = mod::kInvalidUser;
    HISTKANON_RETURN_NOT_OK(reader->ReadString(&pseudonym));
    HISTKANON_RETURN_NOT_OK(reader->ReadI64(&user));
    state->reverse[std::move(pseudonym)] = user;
  }
  return common::Status::OK();
}

void PutOutcome(dur::ByteWriter* writer, const ProcessOutcome& outcome) {
  writer->PutU8(static_cast<uint8_t>(outcome.disposition));
  writer->PutBool(outcome.forwarded);
  PutPoint(writer, outcome.exact);
  writer->PutI64(outcome.forwarded_request.msgid);
  writer->PutString(outcome.forwarded_request.pseudonym);
  PutBox(writer, outcome.forwarded_request.context);
  writer->PutI32(outcome.forwarded_request.service);
  writer->PutString(outcome.forwarded_request.data);
  writer->PutBool(outcome.hk_anonymity);
  writer->PutBool(outcome.matched_lbqid);
  writer->PutU64(outcome.lbqid_index);
  writer->PutU64(outcome.element_index);
  writer->PutBool(outcome.lbqid_completed);
}

common::Status ReadOutcome(dur::ByteReader* reader, ProcessOutcome* outcome) {
  uint8_t disposition = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU8(&disposition));
  if (disposition > static_cast<uint8_t>(Disposition::kRejected)) {
    return common::Status::InvalidArgument("bad disposition byte");
  }
  outcome->disposition = static_cast<Disposition>(disposition);
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&outcome->forwarded));
  HISTKANON_RETURN_NOT_OK(ReadPoint(reader, &outcome->exact));
  HISTKANON_RETURN_NOT_OK(reader->ReadI64(&outcome->forwarded_request.msgid));
  HISTKANON_RETURN_NOT_OK(
      reader->ReadString(&outcome->forwarded_request.pseudonym));
  HISTKANON_RETURN_NOT_OK(ReadBox(reader, &outcome->forwarded_request.context));
  HISTKANON_RETURN_NOT_OK(
      reader->ReadI32(&outcome->forwarded_request.service));
  HISTKANON_RETURN_NOT_OK(reader->ReadString(&outcome->forwarded_request.data));
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&outcome->hk_anonymity));
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&outcome->matched_lbqid));
  uint64_t index = 0;
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&index));
  outcome->lbqid_index = static_cast<size_t>(index);
  HISTKANON_RETURN_NOT_OK(reader->ReadU64(&index));
  outcome->element_index = static_cast<size_t>(index);
  HISTKANON_RETURN_NOT_OK(reader->ReadBool(&outcome->lbqid_completed));
  return common::Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------
// Journal event codec.

std::string EncodeJournalEvent(const JournalEvent& event) {
  dur::ByteWriter writer;
  writer.PutU8(kJournalEventRecord);
  writer.PutU8(static_cast<uint8_t>(event.kind));
  writer.PutI64(event.user);
  PutPoint(&writer, event.point);
  writer.PutI32(event.service_id);
  writer.PutString(event.data);
  switch (event.kind) {
    case JournalEvent::Kind::kRegisterService:
      PutService(&writer, event.service);
      break;
    case JournalEvent::Kind::kRegisterUser:
      PutPolicy(&writer, event.policy);
      break;
    case JournalEvent::Kind::kRegisterLbqid:
      PutLbqid(&writer, *event.lbqid);
      break;
    case JournalEvent::Kind::kSetRules:
      PutRuleSet(&writer, *event.rules);
      break;
    case JournalEvent::Kind::kBatch: {
      static const std::vector<BatchRequest> kEmptyBatch;
      const std::vector<BatchRequest>& batch =
          event.batch == nullptr ? kEmptyBatch : *event.batch;
      writer.PutU64(batch.size());
      for (const BatchRequest& request : batch) {
        writer.PutI64(request.user);
        PutPoint(&writer, request.exact);
        writer.PutI32(request.service);
        writer.PutString(request.data);
      }
      break;
    }
    case JournalEvent::Kind::kUpdate:
    case JournalEvent::Kind::kRequest:
    case JournalEvent::Kind::kEpochEnd:
      break;
  }
  return writer.TakeBytes();
}

common::Result<JournalEvent> DecodeJournalEvent(
    std::string_view payload, const tgran::GranularityRegistry& registry) {
  dur::ByteReader reader(payload);
  uint8_t record_type = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU8(&record_type));
  if (record_type != kJournalEventRecord) {
    return common::Status::InvalidArgument("not an event record");
  }
  uint8_t kind = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU8(&kind));
  if (kind < static_cast<uint8_t>(JournalEvent::Kind::kRegisterService) ||
      kind > static_cast<uint8_t>(JournalEvent::Kind::kBatch)) {
    return common::Status::InvalidArgument("bad journal event kind");
  }
  JournalEvent event;
  event.kind = static_cast<JournalEvent::Kind>(kind);
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&event.user));
  HISTKANON_RETURN_NOT_OK(ReadPoint(&reader, &event.point));
  HISTKANON_RETURN_NOT_OK(reader.ReadI32(&event.service_id));
  HISTKANON_RETURN_NOT_OK(reader.ReadString(&event.data));
  switch (event.kind) {
    case JournalEvent::Kind::kRegisterService:
      HISTKANON_RETURN_NOT_OK(ReadService(&reader, &event.service));
      break;
    case JournalEvent::Kind::kRegisterUser:
      HISTKANON_RETURN_NOT_OK(ReadPolicy(&reader, &event.policy));
      break;
    case JournalEvent::Kind::kRegisterLbqid: {
      HISTKANON_ASSIGN_OR_RETURN(lbqid::Lbqid lbqid,
                                 ReadLbqid(&reader, registry));
      event.lbqid = std::make_shared<const lbqid::Lbqid>(std::move(lbqid));
      break;
    }
    case JournalEvent::Kind::kSetRules: {
      HISTKANON_ASSIGN_OR_RETURN(PolicyRuleSet rules, ReadRuleSet(&reader));
      event.rules = std::make_shared<const PolicyRuleSet>(std::move(rules));
      break;
    }
    case JournalEvent::Kind::kBatch: {
      uint64_t count = 0;
      HISTKANON_RETURN_NOT_OK(reader.ReadU64(&count));
      std::vector<BatchRequest> batch;
      for (uint64_t i = 0; i < count; ++i) {
        BatchRequest request;
        HISTKANON_RETURN_NOT_OK(reader.ReadI64(&request.user));
        HISTKANON_RETURN_NOT_OK(ReadPoint(&reader, &request.exact));
        HISTKANON_RETURN_NOT_OK(reader.ReadI32(&request.service));
        HISTKANON_RETURN_NOT_OK(reader.ReadString(&request.data));
        batch.push_back(std::move(request));
      }
      event.batch = std::make_shared<const std::vector<BatchRequest>>(
          std::move(batch));
      break;
    }
    case JournalEvent::Kind::kUpdate:
    case JournalEvent::Kind::kRequest:
    case JournalEvent::Kind::kEpochEnd:
      break;
  }
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument(
        "trailing bytes after journal event");
  }
  return event;
}

// ---------------------------------------------------------------------
// TsJournal.

TsJournal::TsJournal() { dur::AppendMagic(&bytes_); }

common::Status TsJournal::AppendEvent(const JournalEvent& event) {
  HISTKANON_FAILPOINT_RETURN(fail::kDurJournalAppend);
  const size_t old_size = bytes_.size();
  dur::AppendRecord(&bytes_, EncodeJournalEvent(event));
  HISTKANON_RETURN_NOT_OK(CommitAppend(old_size));
  ++event_count_;
  return common::Status::OK();
}

common::Status TsJournal::AppendSnapshot(std::string_view snapshot) {
  HISTKANON_FAILPOINT_RETURN(fail::kDurJournalSnapshot);
  dur::ByteWriter writer;
  writer.PutU8(kJournalSnapshotRecord);
  writer.PutU64(event_count_);
  writer.PutString(snapshot);
  const size_t old_size = bytes_.size();
  dur::AppendRecord(&bytes_, writer.bytes());
  HISTKANON_RETURN_NOT_OK(CommitAppend(old_size));
  // The prefix before this record is subsumed: recovery scans forward to
  // the LAST intact snapshot, so everything earlier is dead weight that
  // Compact() may reclaim.
  last_snapshot_offset_ = old_size;
  if (auto_compact_) {
    // Best-effort: a failed compaction leaves the uncompacted journal
    // fully valid (a failed reopen poisons the sink fail-closed instead);
    // either way THIS snapshot append succeeded.
    (void)Compact();
  }
  return common::Status::OK();
}

common::Status TsJournal::AppendAnnotation(uint64_t next_trace_id) {
  dur::ByteWriter writer;
  writer.PutU8(kJournalAnnotationRecord);
  writer.PutU64(next_trace_id);
  const size_t old_size = bytes_.size();
  dur::AppendRecord(&bytes_, writer.bytes());
  return CommitAppend(old_size);
}

common::Status TsJournal::CommitAppend(size_t old_size) {
  if (sink_broken_) {
    // A compaction renamed the file but could not reopen it: appending
    // in memory only would diverge from the durable artifact, so the
    // journal fails closed and the caller suppresses the event.
    bytes_.resize(old_size);
    return common::Status::Internal(
        "journal sink lost by a failed compaction reopen");
  }
  if (sink_ == nullptr) return common::Status::OK();
  common::Status status = sink_->Append(
      std::string_view(bytes_).substr(old_size));
  if (!status.ok()) {
    // The record never happened: the in-memory journal stays the intact
    // prefix; whatever torn bytes reached the sink's medium are discarded
    // by the recovery scan's CRC check.
    bytes_.resize(old_size);
    return status;
  }
  return common::Status::OK();
}

common::Status TsJournal::AttachSink(dur::JournalSink* sink) {
  sink_ = sink;
  if (sink_ == nullptr) return common::Status::OK();
  // Catch up: the sink must hold everything journaled so far.
  common::Status status = sink_->Append(bytes_);
  if (!status.ok()) sink_ = nullptr;
  return status;
}

common::Status TsJournal::Sync() {
  if (sink_ == nullptr) return common::Status::OK();
  return sink_->Sync();
}

common::Status TsJournal::WriteToFile(const std::string& path) const {
  HISTKANON_ASSIGN_OR_RETURN(std::unique_ptr<dur::FileSink> sink,
                             dur::FileSink::Open(path));
  HISTKANON_RETURN_NOT_OK(sink->Append(bytes_));
  return sink->Close();
}

common::Status TsJournal::OpenFileSink(std::string path) {
  HISTKANON_ASSIGN_OR_RETURN(std::unique_ptr<dur::FileSink> sink,
                             dur::FileSink::Open(path));
  HISTKANON_RETURN_NOT_OK(AttachSink(sink.get()));
  owned_sink_ = std::move(sink);
  path_ = std::move(path);
  sink_broken_ = false;
  return common::Status::OK();
}

common::Status TsJournal::Compact() {
  if (sink_broken_) {
    return common::Status::Internal(
        "journal sink lost by a failed compaction reopen");
  }
  if (sink_ != nullptr && owned_sink_ == nullptr) {
    return common::Status::FailedPrecondition(
        "compaction requires an owned file sink (or none): an externally "
        "attached sink's contents cannot be rewritten");
  }
  const size_t magic_size = dur::JournalMagic().size();
  if (last_snapshot_offset_ <= magic_size) {
    return common::Status::OK();  // no snapshot yet, or nothing before it
  }
  std::string compacted;
  compacted.reserve(magic_size + bytes_.size() - last_snapshot_offset_);
  dur::AppendMagic(&compacted);
  compacted.append(bytes_, last_snapshot_offset_, std::string::npos);
  if (owned_sink_ != nullptr) {
    // Copy-forward + atomic rename.  The tmp file is synced before the
    // rename, so the snapshot record is durable in the NEW file before
    // the old one (and the prefix it subsumed) disappears; a crash at
    // any byte leaves either the full or the compacted journal, both of
    // which recover to the same state.
    const std::string tmp = path_ + ".compact";
    {
      HISTKANON_FAILPOINT_RETURN(fail::kDurCompactWrite);
      HISTKANON_ASSIGN_OR_RETURN(std::unique_ptr<dur::FileSink> sink,
                                 dur::FileSink::Open(tmp));
      common::Status written = sink->Append(compacted);
      if (written.ok()) written = sink->Close();
      if (!written.ok()) {
        std::remove(tmp.c_str());
        return written;  // original journal untouched
      }
    }
    HISTKANON_FAILPOINT_RETURN(fail::kDurCompactRename);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      return common::Status::Internal(
          common::Format("rename(%s, %s) failed compacting the journal",
                         tmp.c_str(), path_.c_str()));
    }
    // Point of no return: the visible file IS the compacted journal, and
    // the old handle points at the unlinked inode.  Failing to reopen
    // leaves no sink, and CommitAppend refuses to diverge (fail-closed).
    sink_ = nullptr;
    owned_sink_.reset();
    const fail::Action reopen_gate =
        HISTKANON_FAILPOINT(fail::kDurCompactReopen);
    if (reopen_gate.kind == fail::ActionKind::kError) {
      sink_broken_ = true;
      return reopen_gate.ToStatus();
    }
    common::Result<std::unique_ptr<dur::FileSink>> reopened =
        dur::FileSink::OpenAppend(path_);
    if (!reopened.ok()) {
      sink_broken_ = true;
      return reopened.status();
    }
    owned_sink_ = std::move(*reopened);
    sink_ = owned_sink_.get();
  }
  bytes_ = std::move(compacted);
  last_snapshot_offset_ = magic_size;
  ++compactions_;
  return common::Status::OK();
}

// ---------------------------------------------------------------------
// Journal scan.

common::Result<RecoveredJournal> ScanJournal(
    std::string_view bytes, const tgran::GranularityRegistry& registry) {
  HISTKANON_ASSIGN_OR_RETURN(dur::ScanResult scan, dur::ScanRecords(bytes));
  const std::vector<size_t> boundaries = dur::RecordBoundaries(bytes);
  RecoveredJournal out;
  out.valid_bytes = scan.valid_bytes;
  out.clean = scan.clean;
  out.tail_error = scan.tail_error;
  size_t accepted = 0;
  for (const std::string_view payload : scan.records) {
    dur::ByteReader reader(payload);
    uint8_t record_type = 0;
    common::Status status = reader.ReadU8(&record_type);
    if (status.ok() && record_type == kJournalEventRecord) {
      common::Result<JournalEvent> event =
          DecodeJournalEvent(payload, registry);
      if (event.ok()) {
        out.events.push_back(std::move(*event));
      } else {
        status = event.status();
      }
    } else if (status.ok() && record_type == kJournalSnapshotRecord) {
      uint64_t events_before = 0;
      std::string snapshot;
      status = reader.ReadU64(&events_before);
      if (status.ok()) status = reader.ReadString(&snapshot);
      if (status.ok() && !reader.AtEnd()) {
        status = common::Status::InvalidArgument(
            "trailing bytes after snapshot record");
      }
      if (status.ok()) {
        // An intact snapshot supersedes everything before it: recovery
        // restores it and replays only the events after.  An annotation
        // preceding this snapshot is stale (its replay suffix is gone), so
        // it is dropped too; the writer re-annotates right after every
        // snapshot append.
        out.snapshot = std::move(snapshot);
        out.events_before_snapshot = static_cast<size_t>(events_before);
        out.events.clear();
        out.has_trace_annotation = false;
        out.next_trace_id = 0;
        out.events_before_annotation = 0;
      }
    } else if (status.ok() && record_type == kJournalAnnotationRecord) {
      uint64_t next_trace_id = 0;
      status = reader.ReadU64(&next_trace_id);
      if (status.ok() && !reader.AtEnd()) {
        status = common::Status::InvalidArgument(
            "trailing bytes after annotation record");
      }
      if (status.ok()) {
        out.has_trace_annotation = true;
        out.next_trace_id = next_trace_id;
        out.events_before_annotation = out.events.size();
      }
    } else if (status.ok()) {
      status = common::Status::InvalidArgument("unknown record type byte");
    }
    if (!status.ok()) {
      // A CRC-valid but semantically undecodable record: treat it and
      // everything after as damage, exactly like a torn tail.
      out.clean = false;
      out.tail_error = status.message();
      out.valid_bytes = boundaries[accepted];
      break;
    }
    ++accepted;
  }
  out.total_events = out.events_before_snapshot + out.events.size();
  return out;
}

common::Result<std::vector<JournalEvent>> DecodeAllEvents(
    std::string_view bytes, const tgran::GranularityRegistry& registry) {
  HISTKANON_ASSIGN_OR_RETURN(dur::ScanResult scan, dur::ScanRecords(bytes));
  std::vector<JournalEvent> events;
  for (const std::string_view payload : scan.records) {
    if (payload.empty()) break;
    const uint8_t record_type = static_cast<uint8_t>(payload[0]);
    if (record_type == kJournalSnapshotRecord ||
        record_type == kJournalAnnotationRecord) {
      continue;
    }
    common::Result<JournalEvent> event = DecodeJournalEvent(payload, registry);
    if (!event.ok()) break;
    events.push_back(std::move(*event));
  }
  return events;
}

// ---------------------------------------------------------------------
// Replay.

void ApplyJournalEvent(TrustedServer* server, const JournalEvent& event) {
  switch (event.kind) {
    case JournalEvent::Kind::kRegisterService:
      (void)server->RegisterService(event.service);
      break;
    case JournalEvent::Kind::kRegisterUser:
      (void)server->RegisterUser(event.user, event.policy);
      break;
    case JournalEvent::Kind::kRegisterLbqid:
      if (event.lbqid != nullptr) {
        (void)server->RegisterLbqid(event.user, *event.lbqid);
      }
      break;
    case JournalEvent::Kind::kSetRules:
      if (event.rules != nullptr) {
        (void)server->SetUserRules(event.user, *event.rules);
      }
      break;
    case JournalEvent::Kind::kUpdate:
      server->OnLocationUpdate(event.user, event.point);
      break;
    case JournalEvent::Kind::kRequest:
      server->ProcessRequest(event.user, event.point, event.service_id,
                             event.data);
      break;
    case JournalEvent::Kind::kBatch:
      // Replay with batch semantics: up-front ingest + prewarm, serve in
      // submission order.  The recovered server has no journal attached,
      // so the internal JournalBatch admission is a breaker-only check.
      if (event.batch != nullptr) server->ProcessBatch(*event.batch);
      break;
    case JournalEvent::Kind::kEpochEnd:
      break;
  }
}

void ApplyConcurrentJournalEvent(ConcurrentServer* server,
                                 const JournalEvent& event) {
  switch (event.kind) {
    case JournalEvent::Kind::kRegisterService:
      (void)server->RegisterService(event.service);
      break;
    case JournalEvent::Kind::kRegisterUser:
      server->SubmitRegisterUser(event.user, event.policy);
      break;
    case JournalEvent::Kind::kRegisterLbqid:
      if (event.lbqid != nullptr) {
        server->SubmitRegisterLbqid(event.user, *event.lbqid);
      }
      break;
    case JournalEvent::Kind::kSetRules:
      if (event.rules != nullptr) {
        server->SubmitSetUserRules(event.user, *event.rules);
      }
      break;
    case JournalEvent::Kind::kUpdate:
      server->SubmitLocationUpdate(event.user, event.point);
      break;
    case JournalEvent::Kind::kRequest:
      server->SubmitRequest(event.user, event.point, event.service_id,
                            event.data);
      break;
    case JournalEvent::Kind::kBatch:
      // A concurrent stream has no composite batch submit; the window's
      // requests enter the epoch individually (the shard serve phase
      // already batches: frozen epoch + cell-sorted prewarm).
      if (event.batch != nullptr) {
        for (const BatchRequest& request : *event.batch) {
          server->SubmitRequest(request.user, request.exact, request.service,
                                request.data);
        }
      }
      break;
    case JournalEvent::Kind::kEpochEnd:
      server->EndEpoch();
      break;
  }
}

// ---------------------------------------------------------------------
// Workload flattening.

namespace {

JournalEvent FromWorkloadEvent(const WorkloadEvent& event) {
  JournalEvent out;
  out.user = event.user;
  out.point = event.point;
  out.service_id = event.service;
  out.data = event.data;
  switch (event.kind) {
    case WorkloadEvent::Kind::kUpdate:
      out.kind = JournalEvent::Kind::kUpdate;
      break;
    case WorkloadEvent::Kind::kRequest:
      out.kind = JournalEvent::Kind::kRequest;
      break;
    case WorkloadEvent::Kind::kRegisterUser:
      out.kind = JournalEvent::Kind::kRegisterUser;
      out.policy = event.policy;
      break;
    case WorkloadEvent::Kind::kRegisterLbqid:
      out.kind = JournalEvent::Kind::kRegisterLbqid;
      out.lbqid = event.lbqid;
      break;
    case WorkloadEvent::Kind::kSetRules:
      out.kind = JournalEvent::Kind::kSetRules;
      out.rules = event.rules;
      break;
  }
  return out;
}

std::vector<JournalEvent> ServiceEvents(const EpochedWorkload& workload) {
  std::vector<JournalEvent> events;
  for (const anon::ServiceProfile& service : workload.services) {
    JournalEvent event;
    event.kind = JournalEvent::Kind::kRegisterService;
    event.service = service;
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace

std::vector<JournalEvent> FlattenSerialWorkload(
    const EpochedWorkload& workload) {
  std::vector<JournalEvent> events = ServiceEvents(workload);
  for (const std::vector<WorkloadEvent>& epoch : workload.epochs) {
    // Ingest pass: every event, a request contributing its exact point as
    // a location update (mirrors ReplayEpochsSerial).
    for (const WorkloadEvent& event : epoch) {
      JournalEvent flattened = FromWorkloadEvent(event);
      if (event.kind == WorkloadEvent::Kind::kRequest) {
        flattened.kind = JournalEvent::Kind::kUpdate;
        flattened.service_id = 0;
        flattened.data.clear();
      }
      events.push_back(std::move(flattened));
    }
    // Serve pass: the requests, in submission order.
    for (const WorkloadEvent& event : epoch) {
      if (event.kind != WorkloadEvent::Kind::kRequest) continue;
      events.push_back(FromWorkloadEvent(event));
    }
  }
  return events;
}

std::vector<JournalEvent> FlattenConcurrentWorkload(
    const EpochedWorkload& workload) {
  std::vector<JournalEvent> events = ServiceEvents(workload);
  for (const std::vector<WorkloadEvent>& epoch : workload.epochs) {
    for (const WorkloadEvent& event : epoch) {
      events.push_back(FromWorkloadEvent(event));
    }
    JournalEvent epoch_end;
    epoch_end.kind = JournalEvent::Kind::kEpochEnd;
    events.push_back(std::move(epoch_end));
  }
  return events;
}

// ---------------------------------------------------------------------
// TrustedServer admission hooks (write-ahead: called at the top of each
// entry point, before any state changes; a non-OK return means the entry
// point suppresses the mutation fail-closed).

common::Status TrustedServer::AdmitEvent(const JournalEvent& event) {
  const bool traced = options_.causal != nullptr;
  const bool is_request = event.kind == JournalEvent::Kind::kRequest;
  // A refused batch sheds ONE event but batch-size requests: its fail
  // path rejects every request in the window.
  const uint64_t shed_request_count =
      event.kind == JournalEvent::Kind::kBatch
          ? (event.batch == nullptr ? 0 : event.batch->size())
          : (is_request ? 1 : 0);
  const auto count_shed = [&] {
    ++shed_events_;
    if (obs_.shed_events != nullptr) obs_.shed_events->Increment();
    if (shed_request_count > 0) {
      shed_requests_ += shed_request_count;
      if (obs_.shed_requests != nullptr) {
        obs_.shed_requests->Increment(shed_request_count);
      }
    }
  };
  if (!breaker_.Admit()) {
    if (traced) admit_shed_reason_ = "degraded";
    count_shed();
    return common::Status::Unavailable(
        "trusted server degraded: event suppressed fail-closed");
  }
  if (journal_ != nullptr) {
    const int64_t append_start = traced ? obs::MonotonicNanos() : 0;
    common::Status status = journal_->AppendEvent(event);
    if (traced) {
      admit_journal_start_ns_ = append_start;
      admit_journal_dur_ns_ = obs::MonotonicNanos() - append_start;
      admit_journal_ran_ = true;
    }
    if (!status.ok()) {
      if (traced) admit_shed_reason_ = "journal_error";
      ++journal_failures_;
      if (obs_.journal_failures != nullptr) obs_.journal_failures->Increment();
      breaker_.RecordFailure();
      count_shed();
      return status;
    }
  }
  breaker_.RecordSuccess();
  ++admitted_events_;
  return common::Status::OK();
}

common::Status TrustedServer::JournalRegisterService(
    const anon::ServiceProfile& service) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRegisterService;
  event.service = service;
  return AdmitEvent(event);
}

common::Status TrustedServer::JournalRegisterUser(mod::UserId user,
                                                  const PrivacyPolicy& policy) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRegisterUser;
  event.user = user;
  event.policy = policy;
  return AdmitEvent(event);
}

common::Status TrustedServer::JournalRegisterLbqid(mod::UserId user,
                                                   const lbqid::Lbqid& lbqid) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRegisterLbqid;
  event.user = user;
  event.lbqid = std::make_shared<const lbqid::Lbqid>(lbqid);
  return AdmitEvent(event);
}

common::Status TrustedServer::JournalSetUserRules(mod::UserId user,
                                                  const PolicyRuleSet& rules) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kSetRules;
  event.user = user;
  event.rules = std::make_shared<const PolicyRuleSet>(rules);
  return AdmitEvent(event);
}

common::Status TrustedServer::JournalUpdate(mod::UserId user,
                                            const geo::STPoint& sample) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kUpdate;
  event.user = user;
  event.point = sample;
  return AdmitEvent(event);
}

common::Status TrustedServer::JournalRequest(mod::UserId user,
                                             const geo::STPoint& exact,
                                             mod::ServiceId service,
                                             const std::string& data) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRequest;
  event.user = user;
  event.point = exact;
  event.service_id = service;
  event.data = data;
  return AdmitEvent(event);
}

common::Status TrustedServer::JournalBatch(
    const std::vector<BatchRequest>& requests) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kBatch;
  event.batch = std::make_shared<const std::vector<BatchRequest>>(requests);
  return AdmitEvent(event);
}

// ---------------------------------------------------------------------
// Resource accounting.

void TrustedServer::RegisterResourceProbes(obs::ResourceAccountant* accountant,
                                           const std::string& prefix) const {
  if (accountant == nullptr) return;
  // Probes run on the accountant's Collect() caller, which the contract
  // requires not to race this server's writer thread; `this` is captured
  // raw and must outlive the accountant's probe set.
  accountant->RegisterProbe(prefix + "phl_samples", [this] {
    return static_cast<uint64_t>(db_.total_samples() * sizeof(geo::STPoint));
  });
  accountant->RegisterProbe(prefix + "journal", [this] {
    return static_cast<uint64_t>(journal_ == nullptr ? 0 : journal_->size());
  });
  accountant->RegisterProbe(
      prefix + "snapshot", [this] { return last_checkpoint_bytes_; });
  // Nominal per-entry cost: a cached vector of ~k user ids plus map
  // overhead.  An estimate — the gauge tracks growth, not exact heap use.
  constexpr uint64_t kAnchorCacheEntryBytes = 128;
  accountant->RegisterProbe(prefix + "anchor_cache", [this] {
    return static_cast<uint64_t>(generalizer_->cache_entries()) *
           kAnchorCacheEntryBytes;
  });
  accountant->RegisterProbe(prefix + "event_log", [this] {
    return options_.event_sink == nullptr
               ? uint64_t{0}
               : options_.event_sink->bytes_written();
  });
  accountant->RegisterProbe(prefix + "outcomes", [this] {
    return static_cast<uint64_t>(outcomes_.size() * sizeof(ProcessOutcome));
  });
  if (cold_ != nullptr) {
    // Tiered storage: what is actually RESIDENT — the flat-RSS soak
    // watches these stay bounded while phl_samples (hot + archived)
    // grows without limit.
    accountant->RegisterProbe(prefix + "phl_hot", [this] {
      return static_cast<uint64_t>(db_.hot_samples() * sizeof(geo::STPoint));
    });
    accountant->RegisterProbe(prefix + "cold_resident",
                              [this] { return cold_->resident_bytes(); });
  }
}

// ---------------------------------------------------------------------
// TrustedServer snapshot / restore.

common::Result<std::string> TrustedServer::Checkpoint() const {
  HISTKANON_FAILPOINT_RETURN(fail::kTsCheckpoint);
  dur::ByteWriter writer;
  writer.PutString(kSnapshotMagic);
  // Determinism fingerprint: the option fields recovery must match for a
  // restored server to continue the crashed server's exact streams.
  writer.PutU64(options_.pseudonym_seed);
  writer.PutU64(options_.randomizer_seed);
  writer.PutBool(options_.enable_unlinking);
  writer.PutBool(options_.enable_randomization);
  writer.PutBool(options_.forward_when_at_risk);
  writer.PutBool(options_.per_request_randomization);
  writer.PutDouble(options_.randomizer.max_expand_fraction);
  // Retention is part of the fingerprint (DESIGN.md §16): it decides
  // which samples are evictable, when seals fire on the event timeline,
  // and how much outcome history survives — a twin with different
  // retention diverges, so RestoreFrom must refuse its blobs.
  writer.PutBool(options_.retention.enabled);
  writer.PutI64(options_.retention.hot_window_seconds);
  writer.PutI64(options_.retention.seal_period_seconds);
  writer.PutU64(options_.retention.min_hot_samples_per_user);
  writer.PutU64(options_.retention.min_seal_samples);
  writer.PutU64(options_.retention.max_outcomes);
  // Moving-object db (the index is rebuilt from it on restore).  Per
  // user: the constant-size archived summary, then the HOT samples —
  // archived contents stay in their cold segments, referenced by the
  // manifest below.
  const std::vector<mod::UserId> db_users = db_.Users();
  writer.PutU64(db_users.size());
  for (const mod::UserId user : db_users) {
    writer.PutI64(user);
    HISTKANON_ASSIGN_OR_RETURN(const mod::Phl* phl, db_.GetPhl(user));
    writer.PutU64(phl->archived_count());
    writer.PutI64(phl->archived_lo());
    writer.PutI64(phl->archived_hi());
    writer.PutU64(phl->hot_size());
    for (size_t i = 0; i < phl->hot_size(); ++i) {
      PutPoint(&writer, phl->HotSample(i));
    }
  }
  // LBQID monitor: definitions + automaton states.
  const std::vector<mod::UserId> monitor_users = monitor_.Users();
  writer.PutU64(monitor_users.size());
  for (const mod::UserId user : monitor_users) {
    writer.PutI64(user);
    const std::vector<const lbqid::Lbqid*> lbqids = monitor_.LbqidsOf(user);
    writer.PutU64(lbqids.size());
    for (size_t i = 0; i < lbqids.size(); ++i) {
      PutLbqid(&writer, *lbqids[i]);
      const lbqid::LbqidMatcher* matcher = monitor_.MatcherOf(user, i);
      if (matcher == nullptr) {
        return common::Status::Internal("monitor lists an unknown matcher");
      }
      PutMatcherState(&writer, matcher->SaveDurable());
    }
  }
  PutPseudonymState(&writer, pseudonyms_.SaveDurable());
  PutRngState(&writer, randomizer_.SaveRngState());
  // Services.
  writer.PutU64(services_.size());
  for (const auto& [id, service] : services_) PutService(&writer, service);
  // Per-user pipeline state.
  writer.PutU64(users_.size());
  for (const auto& [user, state] : users_) {
    writer.PutI64(user);
    PutPolicy(&writer, state.policy);
    writer.PutBool(state.rules.has_value());
    if (state.rules.has_value()) PutRuleSet(&writer, *state.rules);
    writer.PutI64(state.quiet_until);
    writer.PutU64(state.requests_seen);
    writer.PutU64(state.traces.size());
    for (const auto& [index, trace] : state.traces) {
      writer.PutU64(index);
      writer.PutU64(trace.anchors.size());
      for (const mod::UserId anchor : trace.anchors) writer.PutI64(anchor);
      writer.PutU64(trace.steps);
      writer.PutU64(trace.contexts.size());
      for (const geo::STBox& context : trace.contexts) {
        PutBox(&writer, context);
      }
      writer.PutBool(trace.tainted);
    }
  }
  writer.PutI64(next_msgid_);
  writer.PutU64(stats_.requests);
  writer.PutU64(stats_.forwarded_default);
  writer.PutU64(stats_.forwarded_generalized);
  writer.PutU64(stats_.suppressed_mixzone);
  writer.PutU64(stats_.unlink_attempts);
  writer.PutU64(stats_.unlink_successes);
  writer.PutU64(stats_.at_risk_notifications);
  writer.PutU64(stats_.lbqid_completions);
  writer.PutDouble(stats_.generalized_area_sum);
  writer.PutDouble(stats_.generalized_window_sum);
  writer.PutU64(outcomes_.size());
  for (const ProcessOutcome& outcome : outcomes_) {
    PutOutcome(&writer, outcome);
  }
  // Seal schedule + cold manifest: recovery resumes sealing at exactly
  // the same event-stream points (the schedule advances on attempt, a
  // pure function of the admitted stream), so post-snapshot seals are
  // re-executed byte-identically during replay.
  writer.PutBool(seal_initialized_);
  writer.PutI64(next_seal_at_);
  writer.PutU64(next_segment_seq_);
  if (cold_ != nullptr) {
    const std::vector<mod::ColdSegmentInfo>& manifest = cold_->manifest();
    writer.PutU64(manifest.size());
    for (const mod::ColdSegmentInfo& info : manifest) {
      writer.PutU64(info.seq);
      writer.PutI64(info.t_lo);
      writer.PutI64(info.t_hi);
      writer.PutU64(info.samples);
    }
  } else {
    writer.PutU64(0);
  }
  std::string blob = writer.TakeBytes();
  // Resource-accounting bookkeeping only; the blob itself is unaffected
  // (and deliberately excludes the trace-id counter, so snapshot bytes are
  // identical with and without a tracer attached).
  last_checkpoint_bytes_ = blob.size();
  return blob;
}

common::Status TrustedServer::RestoreFrom(
    std::string_view snapshot, const tgran::GranularityRegistry& registry) {
  const bool fresh = users_.empty() && services_.empty() &&
                     db_.Users().empty() && monitor_.Users().empty() &&
                     outcomes_.empty() && stats_.requests == 0 &&
                     next_msgid_ == 1 && !seal_initialized_ &&
                     (cold_ == nullptr || cold_->manifest().empty());
  if (!fresh) {
    return common::Status::FailedPrecondition(
        "restore requires a freshly constructed server");
  }
  dur::ByteReader reader(snapshot);
  std::string magic;
  HISTKANON_RETURN_NOT_OK(reader.ReadString(&magic));
  if (magic != kSnapshotMagic) {
    return common::Status::InvalidArgument("not a snapshot: bad magic");
  }
  uint64_t pseudonym_seed = 0;
  uint64_t randomizer_seed = 0;
  bool enable_unlinking = false;
  bool enable_randomization = false;
  bool forward_when_at_risk = false;
  bool per_request_randomization = false;
  double max_expand_fraction = 0.0;
  bool retention_enabled = false;
  geo::Instant hot_window_seconds = 0;
  geo::Instant seal_period_seconds = 0;
  uint64_t min_hot_samples_per_user = 0;
  uint64_t min_seal_samples = 0;
  uint64_t max_outcomes = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&pseudonym_seed));
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&randomizer_seed));
  HISTKANON_RETURN_NOT_OK(reader.ReadBool(&enable_unlinking));
  HISTKANON_RETURN_NOT_OK(reader.ReadBool(&enable_randomization));
  HISTKANON_RETURN_NOT_OK(reader.ReadBool(&forward_when_at_risk));
  HISTKANON_RETURN_NOT_OK(reader.ReadBool(&per_request_randomization));
  HISTKANON_RETURN_NOT_OK(reader.ReadDouble(&max_expand_fraction));
  HISTKANON_RETURN_NOT_OK(reader.ReadBool(&retention_enabled));
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&hot_window_seconds));
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&seal_period_seconds));
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&min_hot_samples_per_user));
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&min_seal_samples));
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&max_outcomes));
  if (pseudonym_seed != options_.pseudonym_seed ||
      randomizer_seed != options_.randomizer_seed ||
      enable_unlinking != options_.enable_unlinking ||
      enable_randomization != options_.enable_randomization ||
      forward_when_at_risk != options_.forward_when_at_risk ||
      per_request_randomization != options_.per_request_randomization ||
      max_expand_fraction != options_.randomizer.max_expand_fraction ||
      retention_enabled != options_.retention.enabled ||
      hot_window_seconds != options_.retention.hot_window_seconds ||
      seal_period_seconds != options_.retention.seal_period_seconds ||
      min_hot_samples_per_user != options_.retention.min_hot_samples_per_user ||
      min_seal_samples != options_.retention.min_seal_samples ||
      max_outcomes != options_.retention.max_outcomes) {
    return common::Status::FailedPrecondition(
        "snapshot fingerprint mismatch: the server was constructed with "
        "different determinism-relevant options than the checkpointed one");
  }
  uint64_t user_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&user_count));
  for (uint64_t i = 0; i < user_count; ++i) {
    mod::UserId user = mod::kInvalidUser;
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&user));
    uint64_t archived_count = 0;
    geo::Instant archived_lo = 0;
    geo::Instant archived_hi = 0;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&archived_count));
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&archived_lo));
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&archived_hi));
    if (archived_count > 0) {
      db_.SetArchivedSummary(user, static_cast<size_t>(archived_count),
                             archived_lo, archived_hi);
    }
    uint64_t sample_count = 0;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&sample_count));
    for (uint64_t j = 0; j < sample_count; ++j) {
      geo::STPoint sample;
      HISTKANON_RETURN_NOT_OK(ReadPoint(&reader, &sample));
      HISTKANON_RETURN_NOT_OK(db_.Append(user, sample));
      index_.Insert(user, sample);
    }
  }
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&user_count));
  for (uint64_t i = 0; i < user_count; ++i) {
    mod::UserId user = mod::kInvalidUser;
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&user));
    uint64_t lbqid_count = 0;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&lbqid_count));
    for (uint64_t j = 0; j < lbqid_count; ++j) {
      HISTKANON_ASSIGN_OR_RETURN(lbqid::Lbqid lbqid,
                                 ReadLbqid(&reader, registry));
      lbqid::LbqidMatcher::DurableState state;
      HISTKANON_RETURN_NOT_OK(ReadMatcherState(&reader, &state));
      const size_t index = monitor_.Register(user, std::move(lbqid));
      lbqid::LbqidMatcher* matcher = monitor_.MutableMatcherOf(user, index);
      if (matcher == nullptr) {
        return common::Status::Internal("freshly registered matcher missing");
      }
      matcher->RestoreDurable(std::move(state));
    }
  }
  anon::PseudonymManager::DurableState pseudonym_state;
  HISTKANON_RETURN_NOT_OK(ReadPseudonymState(&reader, &pseudonym_state));
  pseudonyms_.RestoreDurable(std::move(pseudonym_state));
  common::Rng::State randomizer_state;
  HISTKANON_RETURN_NOT_OK(ReadRngState(&reader, &randomizer_state));
  randomizer_.RestoreRngState(randomizer_state);
  uint64_t service_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&service_count));
  for (uint64_t i = 0; i < service_count; ++i) {
    anon::ServiceProfile service;
    HISTKANON_RETURN_NOT_OK(ReadService(&reader, &service));
    services_[service.id] = std::move(service);
  }
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&user_count));
  for (uint64_t i = 0; i < user_count; ++i) {
    mod::UserId user = mod::kInvalidUser;
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&user));
    UserState state;
    HISTKANON_RETURN_NOT_OK(ReadPolicy(&reader, &state.policy));
    bool has_rules = false;
    HISTKANON_RETURN_NOT_OK(reader.ReadBool(&has_rules));
    if (has_rules) {
      HISTKANON_ASSIGN_OR_RETURN(PolicyRuleSet rules, ReadRuleSet(&reader));
      state.rules = std::move(rules);
    }
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&state.quiet_until));
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&state.requests_seen));
    uint64_t trace_count = 0;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&trace_count));
    for (uint64_t j = 0; j < trace_count; ++j) {
      uint64_t index = 0;
      HISTKANON_RETURN_NOT_OK(reader.ReadU64(&index));
      TraceState trace;
      uint64_t anchor_count = 0;
      HISTKANON_RETURN_NOT_OK(reader.ReadU64(&anchor_count));
      for (uint64_t a = 0; a < anchor_count; ++a) {
        mod::UserId anchor = mod::kInvalidUser;
        HISTKANON_RETURN_NOT_OK(reader.ReadI64(&anchor));
        trace.anchors.push_back(anchor);
      }
      uint64_t steps = 0;
      HISTKANON_RETURN_NOT_OK(reader.ReadU64(&steps));
      trace.steps = static_cast<size_t>(steps);
      uint64_t context_count = 0;
      HISTKANON_RETURN_NOT_OK(reader.ReadU64(&context_count));
      for (uint64_t c = 0; c < context_count; ++c) {
        geo::STBox context;
        HISTKANON_RETURN_NOT_OK(ReadBox(&reader, &context));
        trace.contexts.push_back(context);
      }
      HISTKANON_RETURN_NOT_OK(reader.ReadBool(&trace.tainted));
      state.traces[static_cast<size_t>(index)] = std::move(trace);
    }
    users_[user] = std::move(state);
  }
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&next_msgid_));
  uint64_t counter = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.requests = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.forwarded_default = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.forwarded_generalized = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.suppressed_mixzone = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.unlink_attempts = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.unlink_successes = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.at_risk_notifications = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter));
  stats_.lbqid_completions = static_cast<size_t>(counter);
  HISTKANON_RETURN_NOT_OK(reader.ReadDouble(&stats_.generalized_area_sum));
  HISTKANON_RETURN_NOT_OK(reader.ReadDouble(&stats_.generalized_window_sum));
  uint64_t outcome_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&outcome_count));
  for (uint64_t i = 0; i < outcome_count; ++i) {
    ProcessOutcome outcome;
    HISTKANON_RETURN_NOT_OK(ReadOutcome(&reader, &outcome));
    outcomes_.push_back(std::move(outcome));
  }
  HISTKANON_RETURN_NOT_OK(reader.ReadBool(&seal_initialized_));
  HISTKANON_RETURN_NOT_OK(reader.ReadI64(&next_seal_at_));
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&next_segment_seq_));
  uint64_t segment_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&segment_count));
  if (segment_count > 0 && cold_ == nullptr) {
    return common::Status::FailedPrecondition(
        "snapshot references cold segments but this server has no cold "
        "tier configured");
  }
  for (uint64_t i = 0; i < segment_count; ++i) {
    mod::ColdSegmentInfo info;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&info.seq));
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&info.t_lo));
    HISTKANON_RETURN_NOT_OK(reader.ReadI64(&info.t_hi));
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&info.samples));
    // Verifies the file is present and its header matches — a snapshot
    // that references a missing/corrupt segment fails restore outright.
    HISTKANON_RETURN_NOT_OK(cold_->RegisterExisting(info));
  }
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument("trailing bytes after snapshot");
  }
  return common::Status::OK();
}

common::Status TrustedServer::WriteCheckpoint() {
  if (journal_ == nullptr) {
    return common::Status::FailedPrecondition("no journal attached");
  }
  HISTKANON_ASSIGN_OR_RETURN(const std::string snapshot, Checkpoint());
  // A failed snapshot append leaves the journal exactly as before (the
  // event suffix just replays from the previous snapshot) — checkpointing
  // is an optimization, not an admission, so it does not trip the breaker.
  HISTKANON_RETURN_NOT_OK(journal_->AppendSnapshot(snapshot));
  if (options_.causal != nullptr) {
    // Pin the trace-id allocator next to the snapshot so a recovered
    // server resumes the exact id sequence.  Best-effort: a torn or
    // failed annotation only costs trace-id continuity, never state.
    (void)journal_->AppendAnnotation(next_trace_id_).ok();
  }
  return common::Status::OK();
}

// ---------------------------------------------------------------------
// ConcurrentServer checkpoint / restore.  (The front-end admission hooks
// live in concurrent_server.cc; this file keeps the codec and recovery.)

common::Result<std::string> ConcurrentServer::Checkpoint() {
  if (finished_) {
    return common::Status::FailedPrecondition(
        "cannot checkpoint a finished server");
  }
  // Close the current epoch first: after EndEpoch every worker has
  // ingested and served its buffered events, so once the checkpoint
  // events drain, each shard's state is epoch-consistent.  (The extra
  // boundary is journaled too, so replay crosses it identically.)
  EndEpoch();
  auto collector = std::make_shared<CheckpointCollector>();
  collector->remaining = shards_.size();
  collector->blobs.resize(shards_.size());
  collector->errors.resize(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kCheckpoint;
    event.checkpoint = collector;
    shard->Enqueue(std::move(event));
  }
  // Block the (single) producer until every shard has serialized itself:
  // no new events can race the workers' reads of their own state.
  {
    std::unique_lock<std::mutex> lock(collector->mu);
    collector->cv.wait(lock, [&collector] { return collector->remaining == 0; });
  }
  for (size_t shard = 0; shard < collector->errors.size(); ++shard) {
    if (!collector->errors[shard].empty()) {
      return common::Status::Internal(
          common::Format("shard %zu checkpoint failed: %s", shard,
                         collector->errors[shard].c_str()));
    }
  }
  dur::ByteWriter writer;
  writer.PutString(kConcurrentSnapshotMagic);
  writer.PutU64(shards_.size());
  for (const std::string& blob : collector->blobs) writer.PutString(blob);
  // Front-end realignment state: which shard each submitted request went
  // to, and the per-shard request counters.
  writer.PutU64(submissions_.size());
  for (const auto& [shard, ordinal] : submissions_) {
    writer.PutU64(shard);
    writer.PutU64(ordinal);
  }
  writer.PutU64(per_shard_requests_.size());
  for (const size_t count : per_shard_requests_) writer.PutU64(count);
  std::string blob = writer.TakeBytes();
  if (options_.journal != nullptr) {
    // Like the serial WriteCheckpoint: a failed snapshot append leaves
    // the journal as before (replay just starts from the previous
    // snapshot), so it neither fails the checkpoint nor trips the
    // breaker.
    if (options_.journal->AppendSnapshot(blob).ok() &&
        options_.server.causal != nullptr) {
      // Pin the front-end trace-id allocator next to the snapshot
      // (best-effort, same contract as the serial WriteCheckpoint).
      (void)options_.journal->AppendAnnotation(next_trace_id_).ok();
    }
  }
  return blob;
}

common::Status ConcurrentServer::RestoreFrom(
    std::string_view snapshot, const tgran::GranularityRegistry& registry) {
  if (streaming_started_ || finished_) {
    return common::Status::FailedPrecondition(
        "restore requires a fresh server (nothing submitted yet)");
  }
  dur::ByteReader reader(snapshot);
  std::string magic;
  HISTKANON_RETURN_NOT_OK(reader.ReadString(&magic));
  if (magic != kConcurrentSnapshotMagic) {
    return common::Status::InvalidArgument(
        "not a concurrent snapshot: bad magic");
  }
  uint64_t shard_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&shard_count));
  if (shard_count != shards_.size()) {
    return common::Status::FailedPrecondition(common::Format(
        "snapshot has %llu shards, server has %zu",
        static_cast<unsigned long long>(shard_count), shards_.size()));
  }
  // The workers are idle (blocked in Pop); writing their servers from the
  // producer here is published by the queue-mutex handoff on the first
  // Submit, the same argument that covers the synchronous Register* path.
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::string blob;
    HISTKANON_RETURN_NOT_OK(reader.ReadString(&blob));
    HISTKANON_RETURN_NOT_OK(
        shards_[shard]->server().RestoreFrom(blob, registry));
  }
  uint64_t submission_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&submission_count));
  submissions_.clear();
  for (uint64_t i = 0; i < submission_count; ++i) {
    uint64_t shard = 0;
    uint64_t ordinal = 0;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&shard));
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&ordinal));
    if (shard >= shards_.size()) {
      return common::Status::InvalidArgument("submission shard out of range");
    }
    submissions_.emplace_back(static_cast<size_t>(shard),
                              static_cast<size_t>(ordinal));
  }
  uint64_t counter_count = 0;
  HISTKANON_RETURN_NOT_OK(reader.ReadU64(&counter_count));
  if (counter_count != per_shard_requests_.size()) {
    return common::Status::InvalidArgument(
        "per-shard request counter count mismatch");
  }
  for (size_t shard = 0; shard < per_shard_requests_.size(); ++shard) {
    uint64_t count = 0;
    HISTKANON_RETURN_NOT_OK(reader.ReadU64(&count));
    per_shard_requests_[shard] = static_cast<size_t>(count);
  }
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument("trailing bytes after snapshot");
  }
  // The restored submissions were answered by the pre-crash server; a
  // recovered front-end drains only traffic submitted after the restore.
  drained_through_ = submissions_.size();
  return common::Status::OK();
}

// ---------------------------------------------------------------------
// Recovery.

common::Result<RecoveredServer> RecoverTrustedServer(
    std::string_view journal_bytes, const TrustedServerOptions& options,
    const tgran::GranularityRegistry& registry) {
  HISTKANON_ASSIGN_OR_RETURN(RecoveredJournal journal,
                             ScanJournal(journal_bytes, registry));
  RecoveredServer recovered;
  recovered.server = std::make_unique<TrustedServer>(options);
  if (!journal.snapshot.empty()) {
    HISTKANON_RETURN_NOT_OK(
        recovered.server->RestoreFrom(journal.snapshot, registry));
  }
  if (journal.has_trace_annotation) {
    // Seed the trace-id allocator from the journaled annotation BEFORE
    // replay: replayed admitted requests advance it exactly as the
    // crashed server's did (when `options` attaches the same tracer
    // configuration), so post-recovery ids continue the pre-crash
    // sequence.
    recovered.server->SetNextTraceId(journal.next_trace_id);
  }
  for (const JournalEvent& event : journal.events) {
    ApplyJournalEvent(recovered.server.get(), event);
  }
  recovered.events_applied = journal.total_events;
  recovered.clean_tail = journal.clean;
  recovered.tail_error = journal.tail_error;
  return recovered;
}

common::Result<RecoveredConcurrentServer> RecoverConcurrentServer(
    std::string_view journal_bytes, ConcurrentServerOptions options,
    const tgran::GranularityRegistry& registry) {
  HISTKANON_ASSIGN_OR_RETURN(RecoveredJournal journal,
                             ScanJournal(journal_bytes, registry));
  // The recovered server gets no journal: re-journaling the replayed
  // suffix without the restored snapshot would leave a journal that does
  // not stand alone.  Attach a fresh journal by checkpointing after
  // recovery instead.
  options.journal = nullptr;
  RecoveredConcurrentServer recovered;
  recovered.server = std::make_unique<ConcurrentServer>(std::move(options));
  if (!journal.snapshot.empty()) {
    HISTKANON_RETURN_NOT_OK(
        recovered.server->RestoreFrom(journal.snapshot, registry));
  }
  if (journal.has_trace_annotation) {
    // Same contract as the serial recovery: seed before re-submitting the
    // suffix so front-end admissions advance from the annotated position.
    recovered.server->SetNextTraceId(journal.next_trace_id);
  }
  for (const JournalEvent& event : journal.events) {
    ApplyConcurrentJournalEvent(recovered.server.get(), event);
  }
  recovered.events_applied = journal.total_events;
  recovered.clean_tail = journal.clean;
  recovered.tail_error = journal.tail_error;
  return recovered;
}

}  // namespace ts
}  // namespace histkanon
