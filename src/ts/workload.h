// Epoched workloads for the serial/sharded differential harness: three
// workload shapes (uniform, hotspot, commuter) plus replay drivers that
// feed the SAME event stream to a serial TrustedServer (in the epoch-
// normalized order the determinism contract is stated against) and to a
// ConcurrentServer (via Submit*/EndEpoch).

#ifndef HISTKANON_SRC_TS_WORKLOAD_H_
#define HISTKANON_SRC_TS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/anon/tolerance.h"
#include "src/lbqid/lbqid.h"
#include "src/tgran/calendar.h"
#include "src/ts/concurrent_server.h"
#include "src/ts/trusted_server.h"

namespace histkanon {
namespace ts {

/// \brief One workload event (the submission-order unit of an epoch).
struct WorkloadEvent {
  enum class Kind {
    kUpdate,
    kRequest,
    kRegisterUser,
    kRegisterLbqid,
    kSetRules,
  };

  Kind kind = Kind::kUpdate;
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint point;
  mod::ServiceId service = 0;
  std::string data;
  PrivacyPolicy policy;
  std::shared_ptr<const lbqid::Lbqid> lbqid;
  std::shared_ptr<const PolicyRuleSet> rules;
};

/// \brief An epoch-partitioned event stream.  Services are global setup
/// (registered on every shard before streaming); everything else —
/// including user/LBQID registrations — is an in-stream event.
struct EpochedWorkload {
  std::vector<anon::ServiceProfile> services;
  std::vector<std::vector<WorkloadEvent>> epochs;

  size_t request_count() const;
};

/// \brief Parameters of the synthetic (uniform / hotspot) generators.
struct SyntheticWorkloadOptions {
  size_t num_users = 32;
  size_t num_epochs = 6;
  /// Service requests per epoch (issuers drawn per the workload shape).
  size_t requests_per_epoch = 48;
  uint64_t seed = 7;
  /// Side of the square world (meters).
  double extent = 8000.0;
  /// Every user with user id % lbqid_every == 0 carries a commute-style
  /// LBQID anchored at their base position (exercises the generalization
  /// pipeline).  0 disables LBQIDs.
  size_t lbqid_every = 2;
  geo::Instant start = tgran::At(0, 8, 0);
  int64_t epoch_seconds = 120;
};

/// Uniform shape: every user wanders the whole world; requests come from
/// users drawn uniformly.
EpochedWorkload MakeUniformWorkload(const SyntheticWorkloadOptions& options);

/// Hotspot shape: a quarter of the users are confined to a small central
/// square and issue ~80% of the requests (the shard-imbalance stressor).
EpochedWorkload MakeHotspotWorkload(const SyntheticWorkloadOptions& options);

/// Commuter shape: a small sim::Population driven through sim::Simulator,
/// recorded and cut into epochs of `epoch_seconds`; commuters carry the
/// Example-2 home/office LBQID.
struct CommuterWorkloadOptions {
  size_t num_commuters = 8;
  size_t num_wanderers = 24;
  uint64_t seed = 11;
  /// Simulated span (seconds), starting 07:30 on day 0.
  int64_t duration = 2 * 3600;
  int64_t epoch_seconds = 300;
};
EpochedWorkload MakeCommuterWorkload(const CommuterWorkloadOptions& options);

/// Replays the workload on a serial server in epoch-normalized order: per
/// epoch, pass 1 ingests every event (a request's exact point counts as a
/// location update) in submission order; pass 2 processes the requests in
/// submission order.  Returns the outcomes in global submission order.
std::vector<ProcessOutcome> ReplayEpochsSerial(const EpochedWorkload& workload,
                                               TrustedServer* server);

/// ReplayEpochsSerial with a batched serve pass: pass 1 is identical;
/// pass 2 hands each epoch's requests to TrustedServer::ProcessBatch as
/// one window.  Because pass 1 already ingested every request point, the
/// batch's up-front ingest no-ops and its output — outcomes AND
/// Checkpoint() — is byte-identical to ReplayEpochsSerial on a twin
/// server (proved by tests/batch_differential_test.cc).
std::vector<ProcessOutcome> ReplayEpochsBatched(
    const EpochedWorkload& workload, TrustedServer* server);

/// Streams the workload through Submit*/EndEpoch and Finish()es the
/// server.  Returns the outcomes in global submission order.
std::vector<ProcessOutcome> ReplayEpochsConcurrent(
    const EpochedWorkload& workload, ConcurrentServer* server);

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_WORKLOAD_H_
