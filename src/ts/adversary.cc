#include "src/ts/adversary.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/tgran/calendar.h"

namespace histkanon {
namespace ts {

namespace {

// Union-find over dense ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Adversary::Adversary(const sim::World* world, AdversaryOptions options)
    : world_(world), options_(options), tracker_(options.tracker) {
  if (tracker_ == nullptr) {
    tracker_ = std::make_shared<anon::ProximityLinker>(options_.tracking);
  }
}

std::vector<std::vector<mod::Pseudonym>> Adversary::LinkPseudonyms(
    const std::vector<anon::ForwardedRequest>& log) const {
  // Per-pseudonym trace boundaries: its first and last request in time.
  // A pseudonym CHANGE leaves a signature the tracker can exploit — one
  // pseudonym's stream ends where another's begins — so the adversary
  // tries to stitch trace tails to trace heads.  Transitive closure over
  // arbitrary co-located requests would merge unrelated users, so a stitch
  // is committed only when it is kinematically plausible AND unambiguous
  // (exactly one plausible successor for the tail and one plausible
  // predecessor for the head): this is exactly the ambiguity a mix-zone
  // manufactures.
  std::map<mod::Pseudonym, size_t> ids;
  std::vector<const anon::ForwardedRequest*> first;
  std::vector<const anon::ForwardedRequest*> last;
  std::vector<mod::Pseudonym> names;
  for (const anon::ForwardedRequest& request : log) {
    const auto [it, inserted] = ids.emplace(request.pseudonym, ids.size());
    if (inserted) {
      first.push_back(&request);
      last.push_back(&request);
      names.push_back(request.pseudonym);
      continue;
    }
    const size_t id = it->second;
    if (request.context.time.lo < first[id]->context.time.lo) {
      first[id] = &request;
    }
    if (request.context.time.hi > last[id]->context.time.hi) {
      last[id] = &request;
    }
  }

  const size_t n = ids.size();
  // Candidate stitches: tail of A -> head of B.
  std::vector<std::vector<size_t>> successors(n);
  std::vector<std::vector<size_t>> predecessors(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const int64_t gap =
          first[b]->context.time.lo - last[a]->context.time.hi;
      if (gap <= 0 || gap > options_.tracking.max_time_gap) continue;
      const std::optional<double> likelihood =
          tracker_->Link(*last[a], *first[b]);
      if (likelihood.has_value() && *likelihood >= options_.theta) {
        successors[a].push_back(b);
        predecessors[b].push_back(a);
      }
    }
  }

  UnionFind groups(n);
  for (size_t a = 0; a < n; ++a) {
    if (successors[a].size() != 1) continue;  // Ambiguous or none.
    const size_t b = successors[a].front();
    if (predecessors[b].size() != 1) continue;  // Contested head.
    groups.Union(a, b);
  }

  std::map<size_t, std::vector<mod::Pseudonym>> by_root;
  for (size_t id = 0; id < n; ++id) {
    by_root[groups.Find(id)].push_back(names[id]);
  }
  std::vector<std::vector<mod::Pseudonym>> traces;
  traces.reserve(by_root.size());
  for (auto& [root, pseudonyms] : by_root) {
    traces.push_back(std::move(pseudonyms));
  }
  return traces;
}

std::vector<Identification> Adversary::Attack(
    const std::vector<anon::ForwardedRequest>& log) const {
  std::vector<Identification> identifications;
  const std::vector<std::vector<mod::Pseudonym>> traces = LinkPseudonyms(log);

  // Requests per pseudonym.
  std::map<mod::Pseudonym, std::vector<const anon::ForwardedRequest*>>
      by_pseudonym;
  for (const anon::ForwardedRequest& request : log) {
    by_pseudonym[request.pseudonym].push_back(&request);
  }

  for (const std::vector<mod::Pseudonym>& trace : traces) {
    Identification identification;
    identification.pseudonyms = trace;

    // Home evidence: small-area contexts at home hours.
    std::vector<geo::Point> evidence_points;
    size_t trace_size = 0;
    for (const mod::Pseudonym& pseudonym : trace) {
      for (const anon::ForwardedRequest* request : by_pseudonym[pseudonym]) {
        ++trace_size;
        const geo::Rect& area = request->context.area;
        if (area.Width() > options_.max_home_area_extent ||
            area.Height() > options_.max_home_area_extent) {
          continue;
        }
        const int64_t sod =
            tgran::SecondOfDay(request->context.time.Center());
        if (sod >= options_.home_morning_end &&
            sod < options_.home_evening_start) {
          continue;
        }
        evidence_points.push_back(area.Center());
      }
    }
    identification.trace_size = trace_size;
    if (evidence_points.size() < options_.min_home_evidence) continue;

    // The densest evidence cluster is the home guess: home-hour requests
    // from elsewhere (early office arrivals, errands) would otherwise
    // contaminate a global centroid.  For each point, gather the evidence
    // within twice the lookup radius; keep the largest such cluster.
    const double cluster_radius = 2.0 * options_.home_lookup_radius;
    size_t best_count = 0;
    geo::Point best_centroid{0, 0};
    for (const geo::Point& seed : evidence_points) {
      double sum_x = 0.0;
      double sum_y = 0.0;
      size_t count = 0;
      for (const geo::Point& other : evidence_points) {
        if (geo::Distance(seed, other) > cluster_radius) continue;
        sum_x += other.x;
        sum_y += other.y;
        ++count;
      }
      if (count > best_count) {
        best_count = count;
        best_centroid = geo::Point{sum_x / static_cast<double>(count),
                                   sum_y / static_cast<double>(count)};
      }
    }
    identification.evidence = best_count;
    if (best_count < options_.min_home_evidence) continue;

    const std::optional<mod::UserId> resident =
        world_->LookupResidentNear(best_centroid,
                                   options_.home_lookup_radius);
    if (!resident.has_value()) continue;
    identification.claimed_user = *resident;
    identifications.push_back(std::move(identification));
  }
  return identifications;
}

}  // namespace ts
}  // namespace histkanon
