// One shard of the concurrent Trusted Server: a worker thread owning the
// TrustedServer instance for its slice of the user space, fed through a
// bounded MPSC event queue.
//
// Epoch protocol (the determinism contract, DESIGN.md §10): events arrive
// tagged to an epoch, terminated by an kEpochEnd marker fanned out to
// every shard.  Each worker first INGESTS its epoch events — location
// updates, the exact points of requests (a request is itself a location
// update, paper Section 5.3), and user registrations — mutating only its
// own db/index/monitor state.  All workers then meet at a barrier; after
// it, every shard's writes for the epoch are visible and no shard writes
// again until the next epoch.  Each worker then SERVES its buffered
// requests read-only against the global (cross-shard) views, and a second
// barrier closes the epoch.  Because the serve phase re-appends an
// already-ingested point, the db/index self-writes always no-op, keeping
// the phase free of shared-state mutation (ThreadSanitizer-verifiable).
//
// Lockstep mode replaces the free-running serve phase with a
// barrier-stepped schedule: all shards serve their i-th pending request,
// then meet at a barrier, for max-pending rounds.  This pins a single
// deterministic interleaving for the stress harness.

#ifndef HISTKANON_SRC_TS_SHARD_H_
#define HISTKANON_SRC_TS_SHARD_H_

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/lbqid/lbqid.h"
#include "src/ts/trusted_server.h"

namespace histkanon {
namespace ts {

/// \brief Rendezvous for a checkpoint fanned out to every shard: each
/// worker serializes its own server and deposits the blob (or error) at
/// its shard index; the producer blocks until `remaining` hits zero.
struct CheckpointCollector {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
  std::vector<std::string> blobs;
  /// Per-shard error message; empty = the shard checkpointed fine.
  std::vector<std::string> errors;
};

/// \brief One queued event for a shard worker.
struct ShardEvent {
  enum class Kind {
    kLocationUpdate,  ///< Ingest: db/index append.
    kRequest,         ///< Ingest exact point now, serve after the barrier.
    kRegisterUser,    ///< Ingest: apply registration (duplicate = no-op).
    kRegisterLbqid,   ///< Ingest: attach LBQID (unknown user = no-op).
    kSetUserRules,    ///< Ingest: attach rule set (unknown user = no-op).
    kEpochEnd,        ///< Epoch marker: barrier, serve, barrier.
    kCheckpoint,      ///< Serialize own server into the shared collector.
    kShutdown,        ///< Worker exits (preceded by a final kEpochEnd).
  };

  Kind kind = Kind::kLocationUpdate;
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint point;
  mod::ServiceId service = 0;
  std::string data;
  PrivacyPolicy policy;
  std::shared_ptr<const lbqid::Lbqid> lbqid;
  std::shared_ptr<const PolicyRuleSet> rules;
  std::shared_ptr<CheckpointCollector> checkpoint;
};

/// \brief Bounded multi-producer single-consumer event queue
/// (mutex + condvar; Push blocks while full, Pop while empty).
class BoundedEventQueue {
 public:
  explicit BoundedEventQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(ShardEvent event);
  ShardEvent Pop();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<ShardEvent> items_;
  const size_t capacity_;
};

/// \brief One worker shard.  Owned and orchestrated by ConcurrentServer.
class Shard {
 public:
  /// Synchronization shared across all shards of one ConcurrentServer.
  struct SharedPhase {
    std::barrier<>* ingest_done = nullptr;  ///< End of the write phase.
    std::barrier<>* step = nullptr;         ///< Lockstep per-round barrier.
    std::barrier<>* serve_done = nullptr;   ///< End of the read phase.
    /// Per-shard buffered-request counts, published before ingest_done and
    /// read by every worker after it (the lockstep round count).
    std::vector<size_t>* pending_counts = nullptr;
    bool lockstep = false;
  };

  Shard(size_t index, size_t queue_capacity,
        const TrustedServerOptions& server_options, SharedPhase phase);

  TrustedServer& server() { return server_; }
  const TrustedServer& server() const { return server_; }
  size_t index() const { return index_; }

  /// Enqueues an event (blocks while the queue is full).  Multi-producer
  /// safe; event order from a single producer is preserved.
  void Enqueue(ShardEvent event);

  void Start();
  void Join();

  size_t queue_depth() const { return queue_.size(); }

 private:
  void WorkerLoop();
  void Serve(const ShardEvent& event);
  void UpdateDepthGauge();

  const size_t index_;
  BoundedEventQueue queue_;
  TrustedServer server_;
  SharedPhase phase_;
  /// Per-shard observability (nullptr without a registry).
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Histogram* latency_ = nullptr;
  std::thread worker_;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_SHARD_H_
