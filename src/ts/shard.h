// One shard of the concurrent Trusted Server: a worker thread owning the
// TrustedServer instance for its slice of the user space, fed through a
// bounded MPSC event queue.
//
// Epoch protocol (the determinism contract, DESIGN.md §10): events arrive
// tagged to an epoch, terminated by an kEpochEnd marker fanned out to
// every shard.  Each worker first INGESTS its epoch events — location
// updates, the exact points of requests (a request is itself a location
// update, paper Section 5.3), and user registrations — mutating only its
// own db/index/monitor state.  All workers then meet at a barrier; after
// it, every shard's writes for the epoch are visible and no shard writes
// again until the next epoch.  Each worker then SERVES its buffered
// requests read-only against the global (cross-shard) views, and a second
// barrier closes the epoch.  Because the serve phase re-appends an
// already-ingested point, the db/index self-writes always no-op, keeping
// the phase free of shared-state mutation (ThreadSanitizer-verifiable).
//
// Lockstep mode replaces the free-running serve phase with a
// barrier-stepped schedule: all shards serve their i-th pending request,
// then meet at a barrier, for max-pending rounds.  This pins a single
// deterministic interleaving for the stress harness.

#ifndef HISTKANON_SRC_TS_SHARD_H_
#define HISTKANON_SRC_TS_SHARD_H_

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/lbqid/lbqid.h"
#include "src/ts/trusted_server.h"

namespace histkanon {
namespace ts {

/// \brief Rendezvous for a checkpoint fanned out to every shard: each
/// worker serializes its own server and deposits the blob (or error) at
/// its shard index; the producer blocks until `remaining` hits zero.
struct CheckpointCollector {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
  std::vector<std::string> blobs;
  /// Per-shard error message; empty = the shard checkpointed fine.
  std::vector<std::string> errors;
};

/// \brief One queued event for a shard worker.
struct ShardEvent {
  enum class Kind {
    kLocationUpdate,  ///< Ingest: db/index append.
    kRequest,         ///< Ingest exact point now, serve after the barrier.
    kRegisterUser,    ///< Ingest: apply registration (duplicate = no-op).
    kRegisterLbqid,   ///< Ingest: attach LBQID (unknown user = no-op).
    kSetUserRules,    ///< Ingest: attach rule set (unknown user = no-op).
    kEpochEnd,        ///< Epoch marker: barrier, serve, barrier.
    kCheckpoint,      ///< Serialize own server into the shared collector.
    kSync,            ///< Ack the collector without serializing: the
                      ///< producer-blocking rendezvous of DrainWindow().
    kShutdown,        ///< Worker exits (preceded by a final kEpochEnd).
  };

  Kind kind = Kind::kLocationUpdate;
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint point;
  mod::ServiceId service = 0;
  std::string data;
  PrivacyPolicy policy;
  std::shared_ptr<const lbqid::Lbqid> lbqid;
  std::shared_ptr<const PolicyRuleSet> rules;
  std::shared_ptr<CheckpointCollector> checkpoint;
  /// obs::MonotonicNanos() at submission; 0 when neither the queue-wait
  /// deadline nor causal tracing is on (no clock read on the submit path).
  int64_t enqueue_ns = 0;
  /// Causal coordinates assigned at front-end admission (trace_id 0 = the
  /// event is untraced).  parent_span is the front-end admission span; the
  /// worker parents its queue_wait/shard_serve spans to it.
  obs::TraceContext trace;
};

/// \brief Bounded multi-producer single-consumer event queue
/// (mutex + condvar; Push blocks while full, Pop while empty).
///
/// The slot-reservation protocol exists for the write-ahead ordering of
/// the ConcurrentServer front-end: under a shed/fail full-queue policy
/// the SHED decision must come before the journal append (a journaled
/// event that is then shed would replay as applied), so the producer
/// first reserves capacity (TryAcquireSlot — the only step that can
/// fail), then journals, then fills the slot with PushReserved (which
/// never blocks) or releases it with CancelSlot if journaling failed.
class BoundedEventQueue {
 public:
  explicit BoundedEventQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// AcquireSlot + PushReserved (the classic blocking enqueue).
  void Push(ShardEvent event);

  /// Non-blocking / bounded-wait enqueue: false (event dropped) when no
  /// space freed up within `timeout_ms` (0 = immediate).
  bool TryPush(ShardEvent event, int64_t timeout_ms = 0);

  /// Blocks until capacity is available, then reserves one slot.
  void AcquireSlot();
  /// Reserves one slot, waiting at most `timeout_ms` (0 = immediate).
  bool TryAcquireSlot(int64_t timeout_ms = 0);
  /// Releases a reserved slot without pushing.
  void CancelSlot();
  /// Fills a previously reserved slot; never blocks.
  void PushReserved(ShardEvent event);

  ShardEvent Pop();
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  /// Occupancy counts queued items AND reserved-but-unfilled slots.
  bool HasSpace() const { return items_.size() + reserved_ < capacity_; }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<ShardEvent> items_;
  size_t reserved_ = 0;
  const size_t capacity_;
};

/// \brief One worker shard.  Owned and orchestrated by ConcurrentServer.
class Shard {
 public:
  /// Synchronization shared across all shards of one ConcurrentServer.
  struct SharedPhase {
    std::barrier<>* ingest_done = nullptr;  ///< End of the write phase.
    std::barrier<>* step = nullptr;         ///< Lockstep per-round barrier.
    std::barrier<>* serve_done = nullptr;   ///< End of the read phase.
    /// Per-shard buffered-request counts, published before ingest_done and
    /// read by every worker after it (the lockstep round count).
    std::vector<size_t>* pending_counts = nullptr;
    bool lockstep = false;
  };

  /// `queue_deadline_seconds` > 0: a request that waited in the queue
  /// longer than the budget is shed at serve time (kRejected outcome)
  /// instead of running the pipeline.  Trades the determinism contract
  /// for bounded staleness; default off.
  Shard(size_t index, size_t queue_capacity,
        const TrustedServerOptions& server_options, SharedPhase phase,
        double queue_deadline_seconds = 0.0);

  TrustedServer& server() { return server_; }
  const TrustedServer& server() const { return server_; }
  size_t index() const { return index_; }

  /// Enqueues an event (blocks while the queue is full).  Multi-producer
  /// safe; event order from a single producer is preserved.
  void Enqueue(ShardEvent event);

  /// Bounded-wait enqueue: false (event dropped) when the queue stayed
  /// full for `timeout_ms` (0 = immediate).  The non-wedging alternative
  /// to Enqueue when this shard's worker may be stalled.
  bool TryEnqueue(ShardEvent event, int64_t timeout_ms = 0);

  // Slot-reservation protocol (see BoundedEventQueue): reserve, then
  // journal, then PushReserved / CancelSlot.
  void AcquireSlot() { queue_.AcquireSlot(); }
  bool TryAcquireSlot(int64_t timeout_ms = 0) {
    return queue_.TryAcquireSlot(timeout_ms);
  }
  void CancelSlot() { queue_.CancelSlot(); }
  void PushReserved(ShardEvent event);

  void Start();
  void Join();

  size_t queue_depth() const { return queue_.size(); }
  /// Requests shed by the queue-wait deadline (worker thread's count;
  /// stable after Join).
  uint64_t deadline_sheds() const { return deadline_sheds_; }

 private:
  void WorkerLoop();
  void Serve(const ShardEvent& event);
  void UpdateDepthGauge();

  const size_t index_;
  BoundedEventQueue queue_;
  TrustedServer server_;
  SharedPhase phase_;
  const double queue_deadline_seconds_;
  /// Mirror of the server options' causal tracer + track name (the tracer
  /// is internally synchronized, so the worker thread records directly).
  obs::CausalTracer* causal_ = nullptr;
  std::string trace_track_;
  uint64_t deadline_sheds_ = 0;  // worker-thread only
  /// Per-shard observability (nullptr without a registry).
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Histogram* latency_ = nullptr;
  obs::Counter* deadline_shed_counter_ = nullptr;
  std::thread worker_;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_SHARD_H_
