// Rule-based privacy policies (paper Section 3: "More expert users can
// have access to more involved rule-based policy specifications", and "The
// user choice may be applied uniformly to all services or selectively").
//
// A rule set is an ordered list of rules; each rule has a guard (service
// match, time-of-day window, weekday/weekend) and a policy.  The first
// matching rule wins; a mandatory fallback policy applies otherwise.
//
// Text syntax, one rule per line (';'-separated clauses, '#' comments):
//
//   service=2 time=[22:00,06:00] concern=high
//   weekend concern=low k=2
//   time=[07:00,09:30] k=8 theta=0.4
//   default concern=medium
//
// Recognized clauses: `service=<id>`, `time=[HH:MM,HH:MM]` (may wrap
// midnight), `weekday`, `weekend`, `default` (marks the fallback rule),
// `concern=<off|low|medium|high>`, `k=<n>`, `theta=<x>`,
// `kprime=<factor>/<decrement>`, `scale=<x>`.  `concern=` seeds the policy
// via PrivacyPolicy::FromConcern; later clauses override fields.

#ifndef HISTKANON_SRC_TS_POLICY_RULES_H_
#define HISTKANON_SRC_TS_POLICY_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/mod/types.h"
#include "src/tgran/unanchored.h"
#include "src/ts/policy.h"

namespace histkanon {
namespace ts {

/// \brief One policy rule: guard + policy.
struct PolicyRule {
  /// Applies only to this service (nullopt: any service).
  std::optional<mod::ServiceId> service;
  /// Applies only inside this daily window (nullopt: any time).
  std::optional<tgran::UTimeInterval> window;
  /// Day filter: nullopt = any day; true = weekdays only; false = weekends.
  std::optional<bool> weekdays_only;
  /// The policy applied when the guard matches.
  PrivacyPolicy policy;

  /// True iff the guard accepts a request for `service` at instant `t`.
  bool Matches(mod::ServiceId request_service, geo::Instant t) const;
};

/// \brief An ordered, first-match rule set with a fallback.
class PolicyRuleSet {
 public:
  /// A rule set whose fallback is `fallback` and with no rules.
  explicit PolicyRuleSet(PrivacyPolicy fallback) : fallback_(fallback) {}

  /// Parses the text syntax above.  Exactly zero or one `default` rule is
  /// allowed; without one the fallback is kMedium.
  static common::Result<PolicyRuleSet> Parse(const std::string& text);

  /// Appends a rule (evaluated after all earlier rules).
  void AddRule(PolicyRule rule) { rules_.push_back(std::move(rule)); }

  /// The policy for a request: first matching rule, else the fallback.
  const PrivacyPolicy& PolicyFor(mod::ServiceId service,
                                 geo::Instant t) const;

  const std::vector<PolicyRule>& rules() const { return rules_; }
  const PrivacyPolicy& fallback() const { return fallback_; }

 private:
  std::vector<PolicyRule> rules_;
  PrivacyPolicy fallback_;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_POLICY_RULES_H_
