#include "src/ts/policy.h"

namespace histkanon {
namespace ts {

std::string_view PrivacyConcernToString(PrivacyConcern concern) {
  switch (concern) {
    case PrivacyConcern::kOff:
      return "off";
    case PrivacyConcern::kLow:
      return "low";
    case PrivacyConcern::kMedium:
      return "medium";
    case PrivacyConcern::kHigh:
      return "high";
  }
  return "unknown";
}

}  // namespace ts
}  // namespace histkanon
