#include "src/ts/shard.h"

#include <algorithm>
#include <chrono>

#include "src/common/str.h"
#include "src/fail/failpoint.h"
#include "src/fail/sites.h"

namespace histkanon {
namespace ts {

void BoundedEventQueue::Push(ShardEvent event) {
  AcquireSlot();
  PushReserved(std::move(event));
}

bool BoundedEventQueue::TryPush(ShardEvent event, int64_t timeout_ms) {
  if (!TryAcquireSlot(timeout_ms)) return false;
  PushReserved(std::move(event));
  return true;
}

void BoundedEventQueue::AcquireSlot() {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return HasSpace(); });
  ++reserved_;
}

bool BoundedEventQueue::TryAcquireSlot(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_ms <= 0) {
    if (!HasSpace()) return false;
  } else if (!not_full_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                 [this] { return HasSpace(); })) {
    return false;
  }
  ++reserved_;
  return true;
}

void BoundedEventQueue::CancelSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reserved_ > 0) --reserved_;
  }
  // The slot this reservation held open is available again.
  not_full_.notify_one();
}

void BoundedEventQueue::PushReserved(ShardEvent event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reserved_ > 0) --reserved_;
    items_.push_back(std::move(event));
  }
  not_empty_.notify_one();
}

ShardEvent BoundedEventQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !items_.empty(); });
  ShardEvent event = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return event;
}

size_t BoundedEventQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

Shard::Shard(size_t index, size_t queue_capacity,
             const TrustedServerOptions& server_options, SharedPhase phase,
             double queue_deadline_seconds)
    : index_(index),
      queue_(queue_capacity),
      server_(server_options),
      phase_(phase),
      queue_deadline_seconds_(queue_deadline_seconds),
      causal_(server_options.causal),
      trace_track_(server_options.trace_track) {
  if (server_options.registry != nullptr) {
    obs::Registry& registry = *server_options.registry;
    depth_gauge_ = registry.GetGauge(
        common::Format("ts_shard_%zu_queue_depth", index_));
    latency_ = registry.GetHistogram(
        common::Format("ts_shard_%zu_request_seconds", index_));
    deadline_shed_counter_ = registry.GetCounter(
        common::Format("ts_shard_%zu_deadline_sheds_total", index_));
  }
}

void Shard::Enqueue(ShardEvent event) {
  queue_.Push(std::move(event));
  UpdateDepthGauge();
}

bool Shard::TryEnqueue(ShardEvent event, int64_t timeout_ms) {
  const bool pushed = queue_.TryPush(std::move(event), timeout_ms);
  if (pushed) UpdateDepthGauge();
  return pushed;
}

void Shard::PushReserved(ShardEvent event) {
  queue_.PushReserved(std::move(event));
  UpdateDepthGauge();
}

void Shard::Start() {
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Shard::Join() {
  if (worker_.joinable()) worker_.join();
}

void Shard::UpdateDepthGauge() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
}

void Shard::Serve(const ShardEvent& event) {
  HISTKANON_FAILPOINT_HIT(fail::kTsShardServeStall);
  const bool traced = causal_ != nullptr && event.trace.trace_id != 0;
  if (traced && event.enqueue_ns > 0) {
    // Retroactive: the wait started at submission, on the producer's
    // clock (MonotonicNanos is process-wide).  Parented to the front-end
    // admission span, like shard_serve below — the causal chain crosses
    // the queue as admission -> {queue_wait, shard_serve}.
    causal_->RecordSpan(event.trace, "queue_wait", trace_track_,
                        event.enqueue_ns,
                        obs::MonotonicNanos() - event.enqueue_ns, {});
  }
  if (queue_deadline_seconds_ > 0.0 && event.enqueue_ns > 0) {
    const double waited =
        static_cast<double>(obs::MonotonicNanos() - event.enqueue_ns) * 1e-9;
    if (waited > queue_deadline_seconds_) {
      ++deadline_sheds_;
      if (deadline_shed_counter_ != nullptr) deadline_shed_counter_->Increment();
      if (traced) {
        causal_->RecordSpan(event.trace, "shard_shed", trace_track_,
                            obs::MonotonicNanos(), 0,
                            {{"shed_reason", "queue_deadline"}});
      }
      server_.RecordShedRequest(event.point);
      return;
    }
  }
  obs::ScopedTimer timer(latency_);
  if (traced) {
    obs::CausalSpan serve_span =
        causal_->StartSpan(event.trace, "shard_serve", trace_track_);
    // The server's pipeline spans ride the serve span: its trace id came
    // from the front-end, so the whole chain shares one id.
    server_.SetNextTraceContext(
        obs::TraceContext{event.trace.trace_id, serve_span.span_id()});
    server_.ProcessRequest(event.user, event.point, event.service, event.data);
    return;
  }
  server_.ProcessRequest(event.user, event.point, event.service, event.data);
}

void Shard::WorkerLoop() {
  std::vector<ShardEvent> pending;
  for (;;) {
    ShardEvent event = queue_.Pop();
    // Chaos hook: a delay armed here models a stalled worker holding the
    // queue full while the front-end keeps submitting.
    HISTKANON_FAILPOINT_HIT(fail::kTsShardWorkerStall);
    UpdateDepthGauge();
    switch (event.kind) {
      // The shard's own server has no journal and a default-HEALTHY
      // breaker (admission happens at the ConcurrentServer front-end), so
      // these entry points apply unconditionally.
      case ShardEvent::Kind::kLocationUpdate:
        server_.OnLocationUpdate(event.user, event.point);
        break;
      case ShardEvent::Kind::kRequest:
        // Ingest the exact point now (Section 5.3: every request is also
        // a location update); the pipeline's own append after the barrier
        // then no-ops, keeping the serve phase write-free.
        server_.OnLocationUpdate(event.user, event.point);
        pending.push_back(std::move(event));
        break;
      case ShardEvent::Kind::kRegisterUser:
        (void)server_.RegisterUser(event.user, event.policy).ok();
        break;
      case ShardEvent::Kind::kRegisterLbqid:
        if (event.lbqid != nullptr) {
          (void)server_.RegisterLbqid(event.user, *event.lbqid).ok();
        }
        break;
      case ShardEvent::Kind::kSetUserRules:
        if (event.rules != nullptr) {
          (void)server_.SetUserRules(event.user, *event.rules).ok();
        }
        break;
      case ShardEvent::Kind::kEpochEnd: {
        // Publish how many requests this shard buffered, then close the
        // write phase: after the barrier every shard's ingest is visible
        // and nobody writes shared state until serve_done.
        (*phase_.pending_counts)[index_] = pending.size();
        phase_.ingest_done->arrive_and_wait();
        // Serve-phase prewarm (DESIGN.md §13): the epoch is frozen behind
        // the barrier (every shard's ingest visible, nobody writes until
        // serve_done), so the generalizer's shared nearest-users entries
        // computed here stay valid for the whole phase.  Cell order makes
        // co-located requests adjacent so they share one index query;
        // serving below still follows the deterministic schedule.
        {
          std::vector<size_t> warm_order(pending.size());
          for (size_t i = 0; i < warm_order.size(); ++i) warm_order[i] = i;
          std::sort(warm_order.begin(), warm_order.end(),
                    [&](size_t a, size_t b) {
                      const uint64_t cell_a =
                          server_.index().CellIdOf(pending[a].point);
                      const uint64_t cell_b =
                          server_.index().CellIdOf(pending[b].point);
                      if (cell_a != cell_b) return cell_a < cell_b;
                      return a < b;
                    });
          for (const size_t i : warm_order) {
            server_.PrewarmRequest(pending[i].user, pending[i].point,
                                   pending[i].service);
          }
        }
        if (phase_.lockstep) {
          // Deterministic schedule: all shards serve their i-th request,
          // then meet; rounds = the max pending count across shards.
          const size_t rounds = *std::max_element(
              phase_.pending_counts->begin(), phase_.pending_counts->end());
          for (size_t round = 0; round < rounds; ++round) {
            if (round < pending.size()) Serve(pending[round]);
            phase_.step->arrive_and_wait();
          }
        } else {
          for (const ShardEvent& request : pending) Serve(request);
        }
        pending.clear();
        phase_.serve_done->arrive_and_wait();
        break;
      }
      case ShardEvent::Kind::kCheckpoint: {
        // Serialize this shard's server (only this worker touches it) and
        // hand the blob to the blocked producer.
        if (event.checkpoint != nullptr) {
          common::Result<std::string> blob = server_.Checkpoint();
          std::lock_guard<std::mutex> lock(event.checkpoint->mu);
          if (blob.ok()) {
            event.checkpoint->blobs[index_] = std::move(*blob);
          } else {
            event.checkpoint->errors[index_] = blob.status().ToString();
          }
          if (--event.checkpoint->remaining == 0) {
            event.checkpoint->cv.notify_all();
          }
        }
        break;
      }
      case ShardEvent::Kind::kSync: {
        // Bare rendezvous: this worker has drained everything enqueued
        // before the sync (markers come from the single producer, in
        // order), so the ack publishes its state — including the epoch's
        // outcome log — to the blocked producer via the collector mutex.
        if (event.checkpoint != nullptr) {
          std::lock_guard<std::mutex> lock(event.checkpoint->mu);
          if (--event.checkpoint->remaining == 0) {
            event.checkpoint->cv.notify_all();
          }
        }
        break;
      }
      case ShardEvent::Kind::kShutdown:
        return;
    }
  }
}

}  // namespace ts
}  // namespace histkanon
