#include "src/ts/overload.h"

namespace histkanon {
namespace ts {

std::string_view HealthStateToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kProbing:
      return "probing";
  }
  return "unknown";
}

std::string_view FullQueuePolicyToString(FullQueuePolicy policy) {
  switch (policy) {
    case FullQueuePolicy::kBlock:
      return "block";
    case FullQueuePolicy::kShed:
      return "shed";
    case FullQueuePolicy::kFail:
      return "fail";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  if (options_.trip_threshold == 0) options_.trip_threshold = 1;
  if (options_.probe_after == 0) options_.probe_after = 1;
  if (options_.close_after == 0) options_.close_after = 1;
}

bool CircuitBreaker::Admit() {
  switch (state_) {
    case HealthState::kHealthy:
      return true;
    case HealthState::kProbing:
      ++probes_;
      if (probes_counter_ != nullptr) probes_counter_->Increment();
      probe_outstanding_ = true;
      return true;
    case HealthState::kDegraded:
      ++suppressed_;
      if (suppressed_counter_ != nullptr) suppressed_counter_->Increment();
      ++suppressed_since_trip_;
      if (suppressed_since_trip_ >= options_.probe_after) {
        probe_successes_ = 0;
        SetState(HealthState::kProbing);  // the NEXT admission is the probe
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == HealthState::kProbing && probe_outstanding_) {
    probe_outstanding_ = false;
    ++probe_successes_;
    if (probe_successes_ >= options_.close_after) {
      ++recoveries_;
      if (recoveries_counter_ != nullptr) recoveries_counter_->Increment();
      SetState(HealthState::kHealthy);
    }
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state_) {
    case HealthState::kHealthy:
      ++consecutive_failures_;
      if (consecutive_failures_ >= options_.trip_threshold) {
        ++trips_;
        if (trips_counter_ != nullptr) trips_counter_->Increment();
        suppressed_since_trip_ = 0;
        probe_successes_ = 0;
        SetState(HealthState::kDegraded);
      }
      break;
    case HealthState::kProbing:
      // The probe found the fault still present: back to DEGRADED, and the
      // suppression count starts over before the next probe window.
      probe_outstanding_ = false;
      ++trips_;
      if (trips_counter_ != nullptr) trips_counter_->Increment();
      suppressed_since_trip_ = 0;
      probe_successes_ = 0;
      SetState(HealthState::kDegraded);
      break;
    case HealthState::kDegraded:
      break;  // nothing was admitted, nothing to record
  }
}

void CircuitBreaker::AttachRegistry(obs::Registry* registry,
                                    const std::string& prefix) {
  if (registry == nullptr) {
    state_gauge_ = nullptr;
    trips_counter_ = nullptr;
    probes_counter_ = nullptr;
    recoveries_counter_ = nullptr;
    suppressed_counter_ = nullptr;
    return;
  }
  state_gauge_ = registry->GetGauge(prefix + "_health_state");
  trips_counter_ = registry->GetCounter(prefix + "_breaker_trips_total");
  probes_counter_ = registry->GetCounter(prefix + "_breaker_probes_total");
  recoveries_counter_ =
      registry->GetCounter(prefix + "_breaker_recoveries_total");
  suppressed_counter_ = registry->GetCounter(prefix + "_suppressed_total");
  state_gauge_->Set(static_cast<double>(state_));
}

void CircuitBreaker::AttachSloView(obs::SloView* slo, std::string domain) {
  slo_ = slo;
  slo_domain_ = std::move(domain);
}

void CircuitBreaker::SetState(HealthState next) {
  state_ = next;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(next));
  }
  if (slo_ != nullptr) {
    slo_->RecordHealthTransition(slo_domain_, static_cast<int>(next));
  }
}

}  // namespace ts
}  // namespace histkanon
