#include "src/ts/workload.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/common/rng.h"
#include "src/sim/population.h"
#include "src/sim/simulator.h"

namespace histkanon {
namespace ts {
namespace {

WorkloadEvent MakeRegisterUser(mod::UserId user, PrivacyPolicy policy) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kRegisterUser;
  event.user = user;
  event.policy = policy;
  return event;
}

WorkloadEvent MakeRegisterLbqid(mod::UserId user, lbqid::Lbqid lbqid) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kRegisterLbqid;
  event.user = user;
  event.lbqid = std::make_shared<const lbqid::Lbqid>(std::move(lbqid));
  return event;
}

WorkloadEvent MakeUpdate(mod::UserId user, const geo::STPoint& sample) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kUpdate;
  event.user = user;
  event.point = sample;
  return event;
}

WorkloadEvent MakeRequest(mod::UserId user, const geo::STPoint& exact,
                          mod::ServiceId service, std::string data) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kRequest;
  event.user = user;
  event.point = exact;
  event.service = service;
  event.data = std::move(data);
  return event;
}

/// Shared synthetic scaffold: per-user base positions drawn by `place`,
/// request issuers drawn by `issuer`.  Epoch 0 opens with the user (and
/// LBQID) registrations; every epoch then carries one jittered location
/// update per user followed by the epoch's requests.
template <typename PlaceFn, typename IssuerFn>
EpochedWorkload MakeSyntheticWorkload(const SyntheticWorkloadOptions& options,
                                      PlaceFn place, IssuerFn issuer) {
  EpochedWorkload workload;
  workload.services.push_back(anon::service_presets::LocalizedNews(0));

  common::Rng rng(options.seed);
  std::vector<geo::Point> base(options.num_users);
  for (size_t u = 0; u < options.num_users; ++u) {
    base[u] = place(&rng, u);
  }

  const tgran::GranularityRegistry granularities =
      tgran::GranularityRegistry::WithDefaults();
  sim::PopulationOptions lbqid_options;

  workload.epochs.resize(options.num_epochs);
  for (size_t epoch = 0; epoch < options.num_epochs; ++epoch) {
    std::vector<WorkloadEvent>& events = workload.epochs[epoch];
    const geo::Instant t0 =
        options.start +
        static_cast<geo::Instant>(epoch) * options.epoch_seconds;
    if (epoch == 0) {
      for (size_t u = 0; u < options.num_users; ++u) {
        const mod::UserId user = static_cast<mod::UserId>(u);
        events.push_back(MakeRegisterUser(
            user,
            PrivacyPolicy::FromConcern(PrivacyConcern::kMedium)));
        if (options.lbqid_every != 0 && u % options.lbqid_every == 0) {
          // A commute-style LBQID anchored at the user's base position:
          // its first element (<home area, [7,9]>) matches the synthetic
          // morning requests, driving the generalization pipeline.
          sim::CommuterInfo info;
          info.user = user;
          info.home = base[u];
          info.office = {base[u].x + 1500.0, base[u].y + 900.0};
          auto lbqid =
              sim::MakeCommuteLbqid(info, lbqid_options, granularities);
          if (lbqid.ok()) {
            events.push_back(MakeRegisterLbqid(user, *lbqid));
          }
        }
      }
    }
    for (size_t u = 0; u < options.num_users; ++u) {
      const geo::Point jittered = {base[u].x + rng.Uniform(-40.0, 40.0),
                                   base[u].y + rng.Uniform(-40.0, 40.0)};
      events.push_back(MakeUpdate(
          static_cast<mod::UserId>(u),
          {jittered, t0 + rng.UniformInt(0, options.epoch_seconds / 2)}));
    }
    for (size_t r = 0; r < options.requests_per_epoch; ++r) {
      const size_t u = issuer(&rng, r);
      const geo::Point at = {base[u].x + rng.Uniform(-25.0, 25.0),
                             base[u].y + rng.Uniform(-25.0, 25.0)};
      const geo::Instant t =
          t0 + options.epoch_seconds / 2 +
          rng.UniformInt(0, options.epoch_seconds / 2 - 1);
      events.push_back(MakeRequest(static_cast<mod::UserId>(u), {at, t}, 0,
                                   "q"));
    }
  }
  return workload;
}

}  // namespace

size_t EpochedWorkload::request_count() const {
  size_t count = 0;
  for (const std::vector<WorkloadEvent>& epoch : epochs) {
    for (const WorkloadEvent& event : epoch) {
      if (event.kind == WorkloadEvent::Kind::kRequest) ++count;
    }
  }
  return count;
}

EpochedWorkload MakeUniformWorkload(const SyntheticWorkloadOptions& options) {
  const double extent = options.extent;
  return MakeSyntheticWorkload(
      options,
      [extent](common::Rng* rng, size_t) {
        return geo::Point{rng->Uniform(0.0, extent),
                          rng->Uniform(0.0, extent)};
      },
      [&options](common::Rng* rng, size_t) {
        return static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(options.num_users) - 1));
      });
}

EpochedWorkload MakeHotspotWorkload(const SyntheticWorkloadOptions& options) {
  const double extent = options.extent;
  // The central hotspot square and its resident users.
  const double hot_lo = extent * 0.45;
  const double hot_hi = extent * 0.55;
  const size_t hot_users = std::max<size_t>(1, options.num_users / 4);
  return MakeSyntheticWorkload(
      options,
      [=](common::Rng* rng, size_t u) {
        if (u < hot_users) {
          return geo::Point{rng->Uniform(hot_lo, hot_hi),
                            rng->Uniform(hot_lo, hot_hi)};
        }
        return geo::Point{rng->Uniform(0.0, extent),
                          rng->Uniform(0.0, extent)};
      },
      [&options, hot_users](common::Rng* rng, size_t) {
        if (rng->Bernoulli(0.8)) {
          return static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(hot_users) - 1));
        }
        return static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(options.num_users) - 1));
      });
}

namespace {

/// Records the simulator's event stream verbatim (with timestamps, so the
/// recording can be cut into epochs afterwards).
class RecordingSink : public sim::EventSink {
 public:
  struct Recorded {
    WorkloadEvent event;
    geo::Instant t = 0;
  };

  void OnLocationUpdate(mod::UserId user,
                        const geo::STPoint& sample) override {
    recorded_.push_back({MakeUpdate(user, sample), sample.t});
  }

  void OnServiceRequest(mod::UserId user, const geo::STPoint& exact,
                        const sim::RequestIntent& intent) override {
    recorded_.push_back(
        {MakeRequest(user, exact, intent.service, intent.data), exact.t});
  }

  std::vector<Recorded>& recorded() { return recorded_; }

 private:
  std::vector<Recorded> recorded_;
};

}  // namespace

EpochedWorkload MakeCommuterWorkload(const CommuterWorkloadOptions& options) {
  EpochedWorkload workload;
  workload.services.push_back(anon::service_presets::LocalizedNews(0));

  common::Rng rng(options.seed);
  sim::PopulationOptions population_options;
  population_options.num_commuters = options.num_commuters;
  population_options.num_wanderers = options.num_wanderers;
  sim::Population population =
      sim::BuildPopulation(population_options, &rng);

  sim::SimulationOptions sim_options;
  sim_options.start = tgran::At(0, 7, 30);
  sim_options.end = sim_options.start + options.duration;
  RecordingSink sink;
  sim::Simulator simulator(std::move(population.agents), sim_options);
  simulator.Run(&sink);

  const size_t num_epochs = static_cast<size_t>(
      (options.duration + options.epoch_seconds - 1) / options.epoch_seconds);
  workload.epochs.resize(std::max<size_t>(1, num_epochs));

  // Epoch 0 opens with the registrations (commuters carry the Example-2
  // LBQID; wanderers are plain anonymity-set users).
  std::vector<WorkloadEvent>& setup = workload.epochs[0];
  const tgran::GranularityRegistry granularities =
      tgran::GranularityRegistry::WithDefaults();
  const size_t total_users = options.num_commuters + options.num_wanderers;
  for (size_t u = 0; u < total_users; ++u) {
    setup.push_back(MakeRegisterUser(
        static_cast<mod::UserId>(u),
        PrivacyPolicy::FromConcern(PrivacyConcern::kMedium)));
  }
  for (const sim::CommuterInfo& commuter : population.commuters) {
    auto lbqid =
        sim::MakeCommuteLbqid(commuter, population_options, granularities);
    if (lbqid.ok()) setup.push_back(MakeRegisterLbqid(commuter.user, *lbqid));
  }

  for (RecordingSink::Recorded& item : sink.recorded()) {
    size_t epoch = static_cast<size_t>(
        (item.t - sim_options.start) / options.epoch_seconds);
    epoch = std::min(epoch, workload.epochs.size() - 1);
    workload.epochs[epoch].push_back(std::move(item.event));
  }
  return workload;
}

std::vector<ProcessOutcome> ReplayEpochsSerial(const EpochedWorkload& workload,
                                               TrustedServer* server) {
  for (const anon::ServiceProfile& service : workload.services) {
    (void)server->RegisterService(service).ok();
  }
  std::vector<ProcessOutcome> outcomes;
  for (const std::vector<WorkloadEvent>& epoch : workload.epochs) {
    // Pass 1: ingest everything — a request's exact point is a location
    // update (Section 5.3), matching the sharded ingest phase.
    for (const WorkloadEvent& event : epoch) {
      switch (event.kind) {
        case WorkloadEvent::Kind::kUpdate:
        case WorkloadEvent::Kind::kRequest:
          server->OnLocationUpdate(event.user, event.point);
          break;
        case WorkloadEvent::Kind::kRegisterUser:
          (void)server->RegisterUser(event.user, event.policy).ok();
          break;
        case WorkloadEvent::Kind::kRegisterLbqid:
          if (event.lbqid != nullptr) {
            (void)server->RegisterLbqid(event.user, *event.lbqid).ok();
          }
          break;
        case WorkloadEvent::Kind::kSetRules:
          if (event.rules != nullptr) {
            (void)server->SetUserRules(event.user, *event.rules).ok();
          }
          break;
      }
    }
    // Pass 2: serve the epoch's requests in submission order.
    for (const WorkloadEvent& event : epoch) {
      if (event.kind != WorkloadEvent::Kind::kRequest) continue;
      outcomes.push_back(server->ProcessRequest(event.user, event.point,
                                                event.service, event.data));
    }
  }
  return outcomes;
}

std::vector<ProcessOutcome> ReplayEpochsBatched(
    const EpochedWorkload& workload, TrustedServer* server) {
  for (const anon::ServiceProfile& service : workload.services) {
    (void)server->RegisterService(service).ok();
  }
  std::vector<ProcessOutcome> outcomes;
  for (const std::vector<WorkloadEvent>& epoch : workload.epochs) {
    // Pass 1: identical to ReplayEpochsSerial.
    for (const WorkloadEvent& event : epoch) {
      switch (event.kind) {
        case WorkloadEvent::Kind::kUpdate:
        case WorkloadEvent::Kind::kRequest:
          server->OnLocationUpdate(event.user, event.point);
          break;
        case WorkloadEvent::Kind::kRegisterUser:
          (void)server->RegisterUser(event.user, event.policy).ok();
          break;
        case WorkloadEvent::Kind::kRegisterLbqid:
          if (event.lbqid != nullptr) {
            (void)server->RegisterLbqid(event.user, *event.lbqid).ok();
          }
          break;
        case WorkloadEvent::Kind::kSetRules:
          if (event.rules != nullptr) {
            (void)server->SetUserRules(event.user, *event.rules).ok();
          }
          break;
      }
    }
    // Pass 2: the epoch's requests as ONE batch window (submission order
    // preserved inside the window).
    std::vector<BatchRequest> window;
    for (const WorkloadEvent& event : epoch) {
      if (event.kind != WorkloadEvent::Kind::kRequest) continue;
      window.push_back(
          BatchRequest{event.user, event.point, event.service, event.data});
    }
    std::vector<ProcessOutcome> batch_outcomes = server->ProcessBatch(window);
    outcomes.insert(outcomes.end(),
                    std::make_move_iterator(batch_outcomes.begin()),
                    std::make_move_iterator(batch_outcomes.end()));
  }
  return outcomes;
}

std::vector<ProcessOutcome> ReplayEpochsConcurrent(
    const EpochedWorkload& workload, ConcurrentServer* server) {
  for (const anon::ServiceProfile& service : workload.services) {
    (void)server->RegisterService(service).ok();
  }
  for (const std::vector<WorkloadEvent>& epoch : workload.epochs) {
    for (const WorkloadEvent& event : epoch) {
      switch (event.kind) {
        case WorkloadEvent::Kind::kUpdate:
          server->SubmitLocationUpdate(event.user, event.point);
          break;
        case WorkloadEvent::Kind::kRequest:
          server->SubmitRequest(event.user, event.point, event.service,
                                event.data);
          break;
        case WorkloadEvent::Kind::kRegisterUser:
          server->SubmitRegisterUser(event.user, event.policy);
          break;
        case WorkloadEvent::Kind::kRegisterLbqid:
          if (event.lbqid != nullptr) {
            server->SubmitRegisterLbqid(event.user, *event.lbqid);
          }
          break;
        case WorkloadEvent::Kind::kSetRules:
          if (event.rules != nullptr) {
            server->SubmitSetUserRules(event.user, *event.rules);
          }
          break;
      }
    }
    server->EndEpoch();
  }
  server->Finish();
  return server->outcomes();
}

}  // namespace ts
}  // namespace histkanon
