// Overload protection and degraded-mode operation for the Trusted Server.
//
// The TS is the chokepoint between users and Service Providers (paper §3,
// Fig. 1); the only safe failure is to SUPPRESS a request — never to
// forward one that skipped the historical-k-anonymity checks (§5.3, §6.1)
// and never to apply one that was not journaled first (an applied-but-
// unjournaled mutation would be silently lost by crash recovery, breaking
// the replay determinism PR 3 established).  The circuit breaker here
// encodes that policy as an explicit state machine:
//
//     HEALTHY --journal append fails (trip_threshold consecutive)--> DEGRADED
//     DEGRADED --probe_after admissions suppressed--> PROBING
//     PROBING --probe admission journals OK (close_after in a row)--> HEALTHY
//     PROBING --probe admission fails--> DEGRADED  (suppression count resets)
//
// Transitions are COUNT-based, not time-based, so every run of the chaos
// differential test is deterministic for a fixed fault schedule.

#ifndef HISTKANON_SRC_TS_OVERLOAD_H_
#define HISTKANON_SRC_TS_OVERLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/metrics.h"
#include "src/obs/slo.h"

namespace histkanon {
namespace ts {

/// The breaker's externally visible state.
enum class HealthState : uint8_t {
  kHealthy = 0,   ///< Admitting everything.
  kDegraded = 1,  ///< Suppressing everything (fail-closed).
  kProbing = 2,   ///< Admitting probes to test whether the fault cleared.
};

/// "healthy" / "degraded" / "probing".
std::string_view HealthStateToString(HealthState state);

/// \brief Tuning for the journal-failure circuit breaker.
struct CircuitBreakerOptions {
  /// Consecutive journal failures that trip HEALTHY -> DEGRADED.  1 trips
  /// on the first failure (strictest fail-closed posture).
  size_t trip_threshold = 1;
  /// Admissions suppressed in DEGRADED before the breaker half-opens to
  /// PROBING and lets one admission attempt the journal again.
  size_t probe_after = 8;
  /// Consecutive successful probes that close PROBING -> HEALTHY.
  size_t close_after = 1;
};

/// \brief Count-based circuit breaker over journal-append success.
///
/// The owning server calls Admit() before journaling an event; when it
/// returns false the event must be suppressed with ZERO state effect (no
/// stats, no pseudonym, no RNG draw — tests/degraded_mode_test.cc pins
/// this down byte-for-byte).  After an admitted journal attempt the owner
/// reports RecordSuccess() / RecordFailure().  Not thread-safe; each
/// TrustedServer (and the ConcurrentServer front-end) owns one and drives
/// it from its own thread.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  HealthState state() const { return state_; }

  /// True when the caller may proceed to journal the event.  In DEGRADED,
  /// counts the suppression and half-opens to PROBING once probe_after
  /// suppressions accumulate (the NEXT admission is the probe).
  bool Admit();

  /// The admitted event journaled OK.
  void RecordSuccess();
  /// The admitted event's journal append failed (the event was suppressed
  /// by the caller).
  void RecordFailure();

  // -- Lifetime counters (exported through AttachRegistry's handles too).
  uint64_t trips() const { return trips_; }
  uint64_t probes() const { return probes_; }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t suppressed() const { return suppressed_; }

  /// Registers `<prefix>_health_state` (gauge: 0 healthy / 1 degraded /
  /// 2 probing), `<prefix>_breaker_trips_total`,
  /// `<prefix>_breaker_probes_total`, `<prefix>_breaker_recoveries_total`,
  /// `<prefix>_suppressed_total`.  nullptr detaches.
  void AttachRegistry(obs::Registry* registry, const std::string& prefix);

  /// Mirrors every state transition into `slo`'s breaker-state timeline
  /// under `domain` (the telemetry endpoint's /slo view).  nullptr
  /// detaches.
  void AttachSloView(obs::SloView* slo, std::string domain);

 private:
  void SetState(HealthState next);

  CircuitBreakerOptions options_;
  HealthState state_ = HealthState::kHealthy;
  size_t consecutive_failures_ = 0;
  size_t suppressed_since_trip_ = 0;
  size_t probe_successes_ = 0;
  bool probe_outstanding_ = false;
  uint64_t trips_ = 0;
  uint64_t probes_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t suppressed_ = 0;
  obs::Gauge* state_gauge_ = nullptr;
  obs::SloView* slo_ = nullptr;
  std::string slo_domain_;
  obs::Counter* trips_counter_ = nullptr;
  obs::Counter* probes_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
  obs::Counter* suppressed_counter_ = nullptr;
};

/// \brief Overload-protection knobs for a TrustedServer.
struct OverloadOptions {
  /// Journal-failure circuit breaker tuning.
  CircuitBreakerOptions breaker;
  /// Per-request deadline budget in seconds; a request whose pipeline run
  /// exceeds it counts a deadline overrun (the completed outcome still
  /// stands — the budget is an SLO signal, not a mid-pipeline abort,
  /// which could leak partial state).  0 disables the clock reads.
  double request_deadline_seconds = 0.0;
};

/// What a full shard queue does to the producer.
enum class FullQueuePolicy : uint8_t {
  kBlock = 0,  ///< Wait for space (original behavior; unbounded latency).
  /// Wait up to the configured enqueue timeout, then drop the event,
  /// count it, and keep the producer moving.
  kShed = 1,
  kFail = 2,  ///< Like kShed with a zero timeout: drop immediately.
};

/// "block" / "shed" / "fail".
std::string_view FullQueuePolicyToString(FullQueuePolicy policy);

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_OVERLOAD_H_
