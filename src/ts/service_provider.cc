#include "src/ts/service_provider.h"

#include <cmath>
#include <limits>

#include "src/common/str.h"

namespace histkanon {
namespace ts {

ServiceReply ServiceProvider::Handle(const anon::ForwardedRequest& request) {
  log_.push_back(request);

  ServiceReply reply;
  reply.msgid = request.msgid;
  if (world_ == nullptr || world_->hospitals().empty()) {
    reply.payload = "ack";
    return reply;
  }
  // Nearest hospital to the center of the (generalized) area: the service
  // quality naturally degrades as the area grows, which is what the
  // tolerance constraints bound.
  const geo::Point center = request.context.area.Center();
  double best = std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  for (size_t i = 0; i < world_->hospitals().size(); ++i) {
    const double d = geo::Distance(world_->hospitals()[i], center);
    if (d < best) {
      best = d;
      best_index = i;
    }
  }
  reply.payload = common::Format("hospital-%zu at %.0fm", best_index, best);
  return reply;
}

std::map<mod::Pseudonym, std::vector<size_t>>
ServiceProvider::RequestsByPseudonym() const {
  std::map<mod::Pseudonym, std::vector<size_t>> by_pseudonym;
  for (size_t i = 0; i < log_.size(); ++i) {
    by_pseudonym[log_[i].pseudonym].push_back(i);
  }
  return by_pseudonym;
}

}  // namespace ts
}  // namespace histkanon
