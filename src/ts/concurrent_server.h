// The concurrent request front-end for the Trusted Server: N shards, each
// a worker thread owning the TrustedServer for user ids with
// user % N == shard, consuming a bounded MPSC queue.  Cross-shard
// k-anonymity reads (anchor selection, LT-consistency, mix-zones) go
// through fan-out views (mod::ShardedObjectStore, stindex::
// ShardedIndexView) spanning every shard's db/index, so each shard's
// pipeline observes the same global population a single serial
// TrustedServer would.
//
// Determinism contract (proved by tests/concurrent_differential_test.cc):
// with per-request randomization, the outcome of every request — its
// disposition and the exact generalized box — is byte-identical to a
// serial TrustedServer fed the same epochs in "normalized" order (all of
// an epoch's ingests, then its requests in submission order; see
// ts::ReplayEpochsSerial).  Pseudonyms and message ids are the exception:
// they come from per-shard sequential streams and are compared only for
// consistency, not equality.

#ifndef HISTKANON_SRC_TS_CONCURRENT_SERVER_H_
#define HISTKANON_SRC_TS_CONCURRENT_SERVER_H_

#include <barrier>
#include <memory>
#include <string>
#include <vector>

#include "src/mod/sharded_store.h"
#include "src/stindex/sharded_view.h"
#include "src/ts/shard.h"
#include "src/ts/trusted_server.h"

namespace histkanon {
namespace ts {

/// \brief Construction parameters for the sharded server.
struct ConcurrentServerOptions {
  size_t num_shards = 4;
  /// Bounded capacity of each shard's event queue (backpressure: Submit*
  /// blocks while the owning shard's queue is full).
  size_t queue_capacity = 1024;
  /// What a Submit* does when the owning shard's queue is full.  kBlock
  /// (the historical behavior) waits indefinitely — a stalled shard then
  /// stalls the producer.  kShed waits up to enqueue_timeout_ms, then
  /// drops the event (SubmitRequest returns kShedSubmission, the other
  /// Submit* return false, last_submit_error() explains).  kFail drops
  /// immediately without waiting.
  FullQueuePolicy full_queue_policy = FullQueuePolicy::kBlock;
  /// kShed's bounded wait for queue space, in milliseconds.
  int64_t enqueue_timeout_ms = 0;
  /// Front-end journal-failure circuit breaker (fail-closed degraded
  /// mode, src/ts/overload.h).  Gates the Submit*/Register* stream; the
  /// per-shard servers keep their own (idle) breakers.
  CircuitBreakerOptions breaker;
  /// > 0: requests that waited in a shard queue longer than this budget
  /// are shed at serve time instead of running the pipeline (kRejected
  /// outcome).  Breaks the determinism contract; default off.
  double queue_deadline_seconds = 0.0;
  /// Barrier-stepped serve phase (deterministic stress schedule).
  bool lockstep = false;
  /// Template for every shard's TrustedServer.  Per-shard adjustments:
  /// pseudonym_seed is remixed per shard (distinct pseudonym streams),
  /// per_request_randomization is forced ON (the determinism contract
  /// requires order-independent draws), and tracer/event_sink are cleared
  /// (they are not thread-safe; the registry IS shared — its handles are
  /// atomic).  `causal` and `slo` ARE propagated (both are internally
  /// synchronized); each shard's trace_track becomes "shard_<i>" while
  /// the front-end records on "frontend".  Trace ids are allocated by the
  /// front-end (seeded from trace_id_seed) at successful admission only,
  /// so journal replay re-derives the same ids.  read_store/read_index
  /// must be left unset.
  TrustedServerOptions server;
  /// Write-ahead journal for the FRONT-END submission stream (not owned,
  /// must outlive the server; nullptr = no journaling).  Register*/
  /// Submit*/EndEpoch journal from the producer thread before enqueueing;
  /// the shard servers themselves never journal.
  TsJournal* journal = nullptr;
};

/// \brief The sharded Trusted Server.  Single producer: the Submit*/
/// EndEpoch/Finish stream must come from one thread.
class ConcurrentServer {
 public:
  explicit ConcurrentServer(
      ConcurrentServerOptions options = ConcurrentServerOptions());
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(mod::UserId user) const {
    return mod::SliceOfUser(user, shards_.size());
  }

  // -- Setup (before the first Submit*): applied synchronously to the
  // shard servers; the queue-mutex handoff on the first Submit publishes
  // these writes to the workers.  Fail-closed: a registration whose
  // write-ahead journal append fails (or that the degraded-mode breaker
  // suppresses) returns Unavailable/the journal error and is NOT applied.

  /// Registers a service on EVERY shard (tolerances are global).
  common::Status RegisterService(const anon::ServiceProfile& service);
  /// Registers a user on the owning shard.
  common::Status RegisterUser(mod::UserId user, PrivacyPolicy policy);
  /// Attaches an LBQID to a registered user (owning shard).
  common::Result<size_t> RegisterLbqid(mod::UserId user, lbqid::Lbqid lbqid);
  /// Attaches an expert rule set (owning shard).
  common::Status SetUserRules(mod::UserId user, PolicyRuleSet rules);

  // -- Streaming: events queue to the owning shard and take effect in the
  // epoch they are submitted in (registrations during its ingest phase).
  //
  // Admission order (fail-closed, write-ahead): queue capacity is
  // reserved FIRST (the shed decision must precede the journal append — a
  // journaled-then-shed event would replay as applied), then the breaker
  // gate and journal append run, then the reserved slot is filled.  A
  // false / kShedSubmission return means the event had ZERO effect: not
  // journaled, not enqueued, not applied; last_submit_error() explains.

  bool SubmitLocationUpdate(mod::UserId user, const geo::STPoint& sample);
  /// Returns the request's global submission ordinal (its index in
  /// outcomes()), or kShedSubmission when the request was shed.
  size_t SubmitRequest(mod::UserId user, const geo::STPoint& exact,
                       mod::ServiceId service, std::string data);
  bool SubmitRegisterUser(mod::UserId user, PrivacyPolicy policy);
  bool SubmitRegisterLbqid(mod::UserId user, lbqid::Lbqid lbqid);
  bool SubmitSetUserRules(mod::UserId user, PolicyRuleSet rules);

  /// SubmitRequest's "shed, no ordinal assigned" sentinel.
  static constexpr size_t kShedSubmission = static_cast<size_t>(-1);

  /// Closes the current epoch: every shard ingests what was submitted,
  /// meets the barrier, serves its requests, and meets again.  Returns
  /// after enqueueing the markers (workers proceed asynchronously).
  ///
  /// Control-plane caveat: the markers are ALWAYS emitted, even when the
  /// marker's own journal append fails or the breaker is open (suppressing
  /// them would wedge the epoch machinery).  An unjournaled marker is
  /// remembered and back-filled into the journal before the next
  /// successfully admitted event, so journal epoch alignment survives
  /// faults.
  void EndEpoch();

  /// Closes any open epoch, stops the workers, and joins them.  Must be
  /// called (or the destructor will) before reading results.  Idempotent.
  void Finish();

  /// Closes the current epoch and BLOCKS the producer until every shard
  /// has ingested and served it, then returns the outcomes of the
  /// requests submitted since the previous drain, in global submission
  /// order (the first entry is ordinal `drained_through() - size()`, as
  /// returned by SubmitRequest).  Unlike Finish() the server stays live:
  /// the producer may keep submitting afterwards.  This is the serving
  /// loop of the networked front-end (src/net/server.h): one wire batch
  /// window = one epoch = one drain.
  std::vector<ProcessOutcome> DrainWindow();

  /// Global request ordinals below this have been returned by a
  /// DrainWindow() (or realigned by Finish()).
  size_t drained_through() const { return drained_through_; }

  // -- Results (valid after Finish()):

  /// Every request outcome, in GLOBAL submission order (realigned from
  /// the per-shard processing logs).
  const std::vector<ProcessOutcome>& outcomes() const { return outcomes_; }

  /// Aggregate counters summed across shards.
  TsStats stats() const;

  /// Theorem-1 self-audit across all shards, sorted by (user, lbqid) —
  /// the order a serial server's audit reports.
  std::vector<TrustedServer::TraceAudit> AuditTraces() const;

  /// HkA of one LBQID trace, evaluated on the owning shard against the
  /// GLOBAL store view.
  anon::HkaResult EvaluateTraceHka(mod::UserId user,
                                   size_t lbqid_index) const;

  const TrustedServer& shard_server(size_t shard) const {
    return shards_[shard]->server();
  }
  const mod::ShardedObjectStore& store() const { return *store_; }
  const stindex::ShardedIndexView& index_view() const { return *view_; }

  // -- Degraded-mode introspection (src/ts/overload.h).

  /// The front-end journal-failure breaker's current state.
  HealthState health() const { return breaker_.state(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  /// Events suppressed fail-closed (any reason); requests among them.
  uint64_t shed_events() const { return shed_events_; }
  uint64_t shed_requests() const { return shed_requests_; }
  /// Sheds caused specifically by a full shard queue.
  uint64_t shed_queue_full() const { return shed_queue_full_; }
  /// Front-end write-ahead journal appends that failed.
  uint64_t journal_failures() const { return journal_failures_; }
  /// Events admitted (breaker passed + journaled when attached).
  uint64_t admitted_events() const { return admitted_events_; }
  /// Requests shed by the shard queue-wait deadline, summed across shards
  /// (stable after Finish).
  uint64_t deadline_sheds() const;
  /// Why the most recent Submit*/EndEpoch admission failed (OK when the
  /// most recent one succeeded).  Single-producer, like Submit* itself.
  const common::Status& last_submit_error() const {
    return last_submit_error_;
  }

  // -- Causal tracing (no-ops without options.server.causal).

  /// Seeds the front-end trace-id allocator (recovery restores the
  /// journaled annotation before re-submitting the suffix).
  void SetNextTraceId(uint64_t id) { next_trace_id_ = id; }
  /// The next trace id the front-end would allocate.
  uint64_t next_trace_id() const { return next_trace_id_; }

  /// Registers per-shard resource probes (prefix "<prefix>shard<i>_")
  /// plus the front-end journal gauge.  The probes read shard state, so
  /// Collect() must only run while the workers are quiescent (between a
  /// Checkpoint() return and the next Submit, or after Finish()).
  void RegisterResourceProbes(obs::ResourceAccountant* accountant,
                              const std::string& prefix) const;

  // -- Durability (implemented in src/ts/durability.cc).

  /// Closes the current epoch, then serializes every shard's server plus
  /// the front-end realignment state into one composite snapshot blob
  /// (appended to the attached journal, if any).  Blocks the producer
  /// until every worker has serialized itself, so no events race the
  /// capture.  Callable between epochs of a live stream.
  common::Result<std::string> Checkpoint();

  /// Restores a Checkpoint() blob.  The server must be fresh (nothing
  /// submitted yet, FailedPrecondition otherwise) and constructed with
  /// the same shard count and determinism-relevant server options as the
  /// checkpointed one.  On failure the server is in an undefined state
  /// and must be discarded.
  common::Status RestoreFrom(std::string_view snapshot,
                             const tgran::GranularityRegistry& registry);

 private:
  Shard* OwnerOf(mod::UserId user) { return shards_[ShardOf(user)].get(); }

  // Fail-closed admission for the front-end stream: breaker gate +
  // back-filled epoch markers + write-ahead journal append.  Drives the
  // breaker state machine and the journal-failure counter.
  common::Status FrontEndAdmit(const JournalEvent& event);
  // Data-event admission: slot reservation on `owner`'s queue (per the
  // full-queue policy), then FrontEndAdmit; false = shed (slot released,
  // counters bumped, last_submit_error_ set).  True = the caller MUST
  // fill the reserved slot with owner->PushReserved.
  bool AdmitData(Shard* owner, const JournalEvent& event, bool is_request);
  void CountShed(bool is_request);

  ConcurrentServerOptions options_;
  std::unique_ptr<mod::ShardedObjectStore> store_;
  std::unique_ptr<stindex::ShardedIndexView> view_;
  std::unique_ptr<std::barrier<>> ingest_done_;
  std::unique_ptr<std::barrier<>> step_;
  std::unique_ptr<std::barrier<>> serve_done_;
  std::vector<size_t> pending_counts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// (shard, per-shard ordinal) of every submitted request, in global
  /// submission order — the realignment map for outcomes().
  std::vector<std::pair<size_t, size_t>> submissions_;
  std::vector<size_t> per_shard_requests_;
  /// True once anything has been streamed (Submit*/EndEpoch) — the
  /// RestoreFrom freshness precondition.
  bool streaming_started_ = false;
  /// Submissions already handed out by DrainWindow() (single-producer,
  /// like the submission stream; reset by RestoreFrom to the restored
  /// submission count — a recovered server re-serves only new traffic).
  size_t drained_through_ = 0;
  bool finished_ = false;
  std::vector<ProcessOutcome> outcomes_;
  // Degraded-mode state (single-producer, like the Submit* stream it
  // guards).  Not part of Checkpoint(): a recovered server starts
  // HEALTHY, so snapshot blobs stay byte-comparable across fault
  // histories.
  CircuitBreaker breaker_;
  uint64_t shed_events_ = 0;
  uint64_t shed_requests_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t journal_failures_ = 0;
  uint64_t admitted_events_ = 0;
  /// EndEpoch markers emitted to the shards but not yet journaled (their
  /// append failed or the breaker was open); back-filled by the next
  /// successful FrontEndAdmit so journal epochs stay aligned with the
  /// epochs the shards actually ran.
  size_t pending_epoch_ends_ = 0;
  common::Status last_submit_error_;
  /// Front-end trace-id allocator (single-producer; advanced only on
  /// successful request admission, mirroring the serial server's rule).
  uint64_t next_trace_id_ = 1;
  /// Admission scratch for the causal spans (filled by FrontEndAdmit /
  /// AdmitData when a tracer is attached, read by SubmitRequest).
  int64_t admit_journal_start_ns_ = 0;
  int64_t admit_journal_dur_ns_ = 0;
  bool admit_journal_ran_ = false;
  const char* admit_shed_reason_ = "journal_error";
  obs::Counter* shed_requests_counter_ = nullptr;
  obs::Counter* shed_events_counter_ = nullptr;
  obs::Counter* shed_queue_full_counter_ = nullptr;
  obs::Counter* journal_failures_counter_ = nullptr;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_CONCURRENT_SERVER_H_
