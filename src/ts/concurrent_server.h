// The concurrent request front-end for the Trusted Server: N shards, each
// a worker thread owning the TrustedServer for user ids with
// user % N == shard, consuming a bounded MPSC queue.  Cross-shard
// k-anonymity reads (anchor selection, LT-consistency, mix-zones) go
// through fan-out views (mod::ShardedObjectStore, stindex::
// ShardedIndexView) spanning every shard's db/index, so each shard's
// pipeline observes the same global population a single serial
// TrustedServer would.
//
// Determinism contract (proved by tests/concurrent_differential_test.cc):
// with per-request randomization, the outcome of every request — its
// disposition and the exact generalized box — is byte-identical to a
// serial TrustedServer fed the same epochs in "normalized" order (all of
// an epoch's ingests, then its requests in submission order; see
// ts::ReplayEpochsSerial).  Pseudonyms and message ids are the exception:
// they come from per-shard sequential streams and are compared only for
// consistency, not equality.

#ifndef HISTKANON_SRC_TS_CONCURRENT_SERVER_H_
#define HISTKANON_SRC_TS_CONCURRENT_SERVER_H_

#include <barrier>
#include <memory>
#include <string>
#include <vector>

#include "src/mod/sharded_store.h"
#include "src/stindex/sharded_view.h"
#include "src/ts/shard.h"
#include "src/ts/trusted_server.h"

namespace histkanon {
namespace ts {

/// \brief Construction parameters for the sharded server.
struct ConcurrentServerOptions {
  size_t num_shards = 4;
  /// Bounded capacity of each shard's event queue (backpressure: Submit*
  /// blocks while the owning shard's queue is full).
  size_t queue_capacity = 1024;
  /// Barrier-stepped serve phase (deterministic stress schedule).
  bool lockstep = false;
  /// Template for every shard's TrustedServer.  Per-shard adjustments:
  /// pseudonym_seed is remixed per shard (distinct pseudonym streams),
  /// per_request_randomization is forced ON (the determinism contract
  /// requires order-independent draws), and tracer/event_sink are cleared
  /// (they are not thread-safe; the registry IS shared — its handles are
  /// atomic).  read_store/read_index must be left unset.
  TrustedServerOptions server;
  /// Write-ahead journal for the FRONT-END submission stream (not owned,
  /// must outlive the server; nullptr = no journaling).  Register*/
  /// Submit*/EndEpoch journal from the producer thread before enqueueing;
  /// the shard servers themselves never journal.
  TsJournal* journal = nullptr;
};

/// \brief The sharded Trusted Server.  Single producer: the Submit*/
/// EndEpoch/Finish stream must come from one thread.
class ConcurrentServer {
 public:
  explicit ConcurrentServer(
      ConcurrentServerOptions options = ConcurrentServerOptions());
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(mod::UserId user) const {
    return mod::SliceOfUser(user, shards_.size());
  }

  // -- Setup (before the first Submit*): applied synchronously to the
  // shard servers; the queue-mutex handoff on the first Submit publishes
  // these writes to the workers.

  /// Registers a service on EVERY shard (tolerances are global).
  common::Status RegisterService(const anon::ServiceProfile& service);
  /// Registers a user on the owning shard.
  common::Status RegisterUser(mod::UserId user, PrivacyPolicy policy);
  /// Attaches an LBQID to a registered user (owning shard).
  common::Result<size_t> RegisterLbqid(mod::UserId user, lbqid::Lbqid lbqid);
  /// Attaches an expert rule set (owning shard).
  common::Status SetUserRules(mod::UserId user, PolicyRuleSet rules);

  // -- Streaming: events queue to the owning shard and take effect in the
  // epoch they are submitted in (registrations during its ingest phase).

  void SubmitLocationUpdate(mod::UserId user, const geo::STPoint& sample);
  /// Returns the request's global submission ordinal (its index in
  /// outcomes()).
  size_t SubmitRequest(mod::UserId user, const geo::STPoint& exact,
                       mod::ServiceId service, std::string data);
  void SubmitRegisterUser(mod::UserId user, PrivacyPolicy policy);
  void SubmitRegisterLbqid(mod::UserId user, lbqid::Lbqid lbqid);
  void SubmitSetUserRules(mod::UserId user, PolicyRuleSet rules);

  /// Closes the current epoch: every shard ingests what was submitted,
  /// meets the barrier, serves its requests, and meets again.  Returns
  /// after enqueueing the markers (workers proceed asynchronously).
  void EndEpoch();

  /// Closes any open epoch, stops the workers, and joins them.  Must be
  /// called (or the destructor will) before reading results.  Idempotent.
  void Finish();

  // -- Results (valid after Finish()):

  /// Every request outcome, in GLOBAL submission order (realigned from
  /// the per-shard processing logs).
  const std::vector<ProcessOutcome>& outcomes() const { return outcomes_; }

  /// Aggregate counters summed across shards.
  TsStats stats() const;

  /// Theorem-1 self-audit across all shards, sorted by (user, lbqid) —
  /// the order a serial server's audit reports.
  std::vector<TrustedServer::TraceAudit> AuditTraces() const;

  /// HkA of one LBQID trace, evaluated on the owning shard against the
  /// GLOBAL store view.
  anon::HkaResult EvaluateTraceHka(mod::UserId user,
                                   size_t lbqid_index) const;

  const TrustedServer& shard_server(size_t shard) const {
    return shards_[shard]->server();
  }
  const mod::ShardedObjectStore& store() const { return *store_; }
  const stindex::ShardedIndexView& index_view() const { return *view_; }

  // -- Durability (implemented in src/ts/durability.cc).

  /// Closes the current epoch, then serializes every shard's server plus
  /// the front-end realignment state into one composite snapshot blob
  /// (appended to the attached journal, if any).  Blocks the producer
  /// until every worker has serialized itself, so no events race the
  /// capture.  Callable between epochs of a live stream.
  common::Result<std::string> Checkpoint();

  /// Restores a Checkpoint() blob.  The server must be fresh (nothing
  /// submitted yet, FailedPrecondition otherwise) and constructed with
  /// the same shard count and determinism-relevant server options as the
  /// checkpointed one.  On failure the server is in an undefined state
  /// and must be discarded.
  common::Status RestoreFrom(std::string_view snapshot,
                             const tgran::GranularityRegistry& registry);

 private:
  Shard* OwnerOf(mod::UserId user) { return shards_[ShardOf(user)].get(); }

  // Write-ahead journaling hooks for the front-end stream (no-ops without
  // a journal); defined in durability.cc next to the record codec.
  void JournalRegisterService(const anon::ServiceProfile& service);
  void JournalRegisterUser(mod::UserId user, const PrivacyPolicy& policy);
  void JournalRegisterLbqid(mod::UserId user, const lbqid::Lbqid& lbqid);
  void JournalSetUserRules(mod::UserId user, const PolicyRuleSet& rules);
  void JournalUpdate(mod::UserId user, const geo::STPoint& sample);
  void JournalRequest(mod::UserId user, const geo::STPoint& exact,
                      mod::ServiceId service, const std::string& data);
  void JournalEpochEnd();

  ConcurrentServerOptions options_;
  std::unique_ptr<mod::ShardedObjectStore> store_;
  std::unique_ptr<stindex::ShardedIndexView> view_;
  std::unique_ptr<std::barrier<>> ingest_done_;
  std::unique_ptr<std::barrier<>> step_;
  std::unique_ptr<std::barrier<>> serve_done_;
  std::vector<size_t> pending_counts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// (shard, per-shard ordinal) of every submitted request, in global
  /// submission order — the realignment map for outcomes().
  std::vector<std::pair<size_t, size_t>> submissions_;
  std::vector<size_t> per_shard_requests_;
  /// True once anything has been streamed (Submit*/EndEpoch) — the
  /// RestoreFrom freshness precondition.
  bool streaming_started_ = false;
  bool finished_ = false;
  std::vector<ProcessOutcome> outcomes_;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_CONCURRENT_SERVER_H_
