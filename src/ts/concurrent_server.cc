#include "src/ts/concurrent_server.h"

#include <algorithm>
#include <utility>

#include "src/common/rng.h"

namespace histkanon {
namespace ts {

ConcurrentServer::ConcurrentServer(ConcurrentServerOptions options)
    : options_(std::move(options)) {
  const size_t n = options_.num_shards == 0 ? 1 : options_.num_shards;
  store_ = std::make_unique<mod::ShardedObjectStore>();
  view_ = std::make_unique<stindex::ShardedIndexView>();
  ingest_done_ = std::make_unique<std::barrier<>>(static_cast<ptrdiff_t>(n));
  step_ = std::make_unique<std::barrier<>>(static_cast<ptrdiff_t>(n));
  serve_done_ = std::make_unique<std::barrier<>>(static_cast<ptrdiff_t>(n));
  pending_counts_.assign(n, 0);
  per_shard_requests_.assign(n, 0);

  Shard::SharedPhase phase;
  phase.ingest_done = ingest_done_.get();
  phase.step = step_.get();
  phase.serve_done = serve_done_.get();
  phase.pending_counts = &pending_counts_;
  phase.lockstep = options_.lockstep;

  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TrustedServerOptions shard_options = options_.server;
    // Distinct per-shard pseudonym streams (two shards must never issue
    // the same pseudonym for different users).
    shard_options.pseudonym_seed =
        common::MixSeed(options_.server.pseudonym_seed, i);
    // The determinism contract requires order-independent draws.
    shard_options.per_request_randomization = true;
    // Global fan-out views for the anonymity layers' reads.
    shard_options.read_store = store_.get();
    shard_options.read_index = view_.get();
    // Tracer and event sink are not thread-safe; the registry's handles
    // are atomic and stay shared.
    shard_options.tracer = nullptr;
    shard_options.event_sink = nullptr;
    shards_.push_back(std::make_unique<Shard>(i, options_.queue_capacity,
                                              shard_options, phase));
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    store_->AddSlice(&shard->server().db());
    view_->AddSlice(&shard->server().index());
  }
  for (const std::unique_ptr<Shard>& shard : shards_) shard->Start();
}

ConcurrentServer::~ConcurrentServer() { Finish(); }

common::Status ConcurrentServer::RegisterService(
    const anon::ServiceProfile& service) {
  // Write-ahead: journal before applying.  A failing call is journaled
  // too — the pipeline is deterministic, so replay fails it identically.
  JournalRegisterService(service);
  common::Status status = common::Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    common::Status s = shard->server().RegisterService(service);
    if (!s.ok()) status = s;
  }
  return status;
}

common::Status ConcurrentServer::RegisterUser(mod::UserId user,
                                              PrivacyPolicy policy) {
  JournalRegisterUser(user, policy);
  return OwnerOf(user)->server().RegisterUser(user, policy);
}

common::Result<size_t> ConcurrentServer::RegisterLbqid(mod::UserId user,
                                                       lbqid::Lbqid lbqid) {
  JournalRegisterLbqid(user, lbqid);
  return OwnerOf(user)->server().RegisterLbqid(user, std::move(lbqid));
}

common::Status ConcurrentServer::SetUserRules(mod::UserId user,
                                              PolicyRuleSet rules) {
  JournalSetUserRules(user, rules);
  return OwnerOf(user)->server().SetUserRules(user, std::move(rules));
}

void ConcurrentServer::SubmitLocationUpdate(mod::UserId user,
                                            const geo::STPoint& sample) {
  JournalUpdate(user, sample);
  streaming_started_ = true;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kLocationUpdate;
  event.user = user;
  event.point = sample;
  OwnerOf(user)->Enqueue(std::move(event));
}

size_t ConcurrentServer::SubmitRequest(mod::UserId user,
                                       const geo::STPoint& exact,
                                       mod::ServiceId service,
                                       std::string data) {
  JournalRequest(user, exact, service, data);
  streaming_started_ = true;
  const size_t shard = ShardOf(user);
  ShardEvent event;
  event.kind = ShardEvent::Kind::kRequest;
  event.user = user;
  event.point = exact;
  event.service = service;
  event.data = std::move(data);
  const size_t seq = submissions_.size();
  submissions_.emplace_back(shard, per_shard_requests_[shard]++);
  shards_[shard]->Enqueue(std::move(event));
  return seq;
}

void ConcurrentServer::SubmitRegisterUser(mod::UserId user,
                                          PrivacyPolicy policy) {
  JournalRegisterUser(user, policy);
  streaming_started_ = true;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kRegisterUser;
  event.user = user;
  event.policy = policy;
  OwnerOf(user)->Enqueue(std::move(event));
}

void ConcurrentServer::SubmitRegisterLbqid(mod::UserId user,
                                           lbqid::Lbqid lbqid) {
  JournalRegisterLbqid(user, lbqid);
  streaming_started_ = true;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kRegisterLbqid;
  event.user = user;
  event.lbqid = std::make_shared<const lbqid::Lbqid>(std::move(lbqid));
  OwnerOf(user)->Enqueue(std::move(event));
}

void ConcurrentServer::SubmitSetUserRules(mod::UserId user,
                                          PolicyRuleSet rules) {
  JournalSetUserRules(user, rules);
  streaming_started_ = true;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kSetUserRules;
  event.user = user;
  event.rules = std::make_shared<const PolicyRuleSet>(std::move(rules));
  OwnerOf(user)->Enqueue(std::move(event));
}

void ConcurrentServer::EndEpoch() {
  JournalEpochEnd();
  streaming_started_ = true;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kEpochEnd;
    shard->Enqueue(std::move(event));
  }
}

void ConcurrentServer::Finish() {
  if (finished_) return;
  finished_ = true;
  // A final (possibly empty) epoch flushes whatever was submitted since
  // the last EndEpoch, then the workers exit.
  EndEpoch();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kShutdown;
    shard->Enqueue(std::move(event));
  }
  for (const std::unique_ptr<Shard>& shard : shards_) shard->Join();
  // Realign the per-shard processing logs into global submission order.
  outcomes_.clear();
  outcomes_.reserve(submissions_.size());
  for (const auto& [shard, ordinal] : submissions_) {
    outcomes_.push_back(shards_[shard]->server().outcomes()[ordinal]);
  }
}

TsStats ConcurrentServer::stats() const {
  TsStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const TsStats& s = shard->server().stats();
    total.requests += s.requests;
    total.forwarded_default += s.forwarded_default;
    total.forwarded_generalized += s.forwarded_generalized;
    total.suppressed_mixzone += s.suppressed_mixzone;
    total.unlink_attempts += s.unlink_attempts;
    total.unlink_successes += s.unlink_successes;
    total.at_risk_notifications += s.at_risk_notifications;
    total.lbqid_completions += s.lbqid_completions;
    total.generalized_area_sum += s.generalized_area_sum;
    total.generalized_window_sum += s.generalized_window_sum;
  }
  return total;
}

std::vector<TrustedServer::TraceAudit> ConcurrentServer::AuditTraces() const {
  std::vector<TrustedServer::TraceAudit> audits;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<TrustedServer::TraceAudit> part =
        shard->server().AuditTraces();
    audits.insert(audits.end(), part.begin(), part.end());
  }
  std::sort(audits.begin(), audits.end(),
            [](const TrustedServer::TraceAudit& a,
               const TrustedServer::TraceAudit& b) {
              if (a.user != b.user) return a.user < b.user;
              return a.lbqid_index < b.lbqid_index;
            });
  return audits;
}

anon::HkaResult ConcurrentServer::EvaluateTraceHka(mod::UserId user,
                                                   size_t lbqid_index) const {
  return shards_[ShardOf(user)]->server().EvaluateTraceHka(user, lbqid_index);
}

}  // namespace ts
}  // namespace histkanon
