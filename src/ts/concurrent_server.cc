#include "src/ts/concurrent_server.h"

#include <algorithm>
#include <utility>

#include "src/common/rng.h"
#include "src/common/str.h"
#include "src/ts/durability.h"

namespace histkanon {
namespace ts {

namespace {
/// The front-end's causal-trace track (admission + journal spans; the
/// per-shard tracks are "shard_<i>").
const std::string kFrontendTrack = "frontend";
}  // namespace

ConcurrentServer::ConcurrentServer(ConcurrentServerOptions options)
    : options_(std::move(options)), breaker_(options_.breaker) {
  const size_t n = options_.num_shards == 0 ? 1 : options_.num_shards;
  store_ = std::make_unique<mod::ShardedObjectStore>();
  view_ = std::make_unique<stindex::ShardedIndexView>();
  ingest_done_ = std::make_unique<std::barrier<>>(static_cast<ptrdiff_t>(n));
  step_ = std::make_unique<std::barrier<>>(static_cast<ptrdiff_t>(n));
  serve_done_ = std::make_unique<std::barrier<>>(static_cast<ptrdiff_t>(n));
  pending_counts_.assign(n, 0);
  per_shard_requests_.assign(n, 0);

  Shard::SharedPhase phase;
  phase.ingest_done = ingest_done_.get();
  phase.step = step_.get();
  phase.serve_done = serve_done_.get();
  phase.pending_counts = &pending_counts_;
  phase.lockstep = options_.lockstep;

  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TrustedServerOptions shard_options = options_.server;
    // Distinct per-shard pseudonym streams (two shards must never issue
    // the same pseudonym for different users).
    shard_options.pseudonym_seed =
        common::MixSeed(options_.server.pseudonym_seed, i);
    // The determinism contract requires order-independent draws.
    shard_options.per_request_randomization = true;
    // Global fan-out views for the anonymity layers' reads.
    shard_options.read_store = store_.get();
    shard_options.read_index = view_.get();
    // Tracer and event sink are not thread-safe; the registry's handles
    // are atomic and stay shared.  The causal tracer and SLO view are
    // internally synchronized and stay shared too, each shard recording
    // on its own track.
    shard_options.tracer = nullptr;
    shard_options.event_sink = nullptr;
    shard_options.trace_track = common::Format("shard_%zu", i);
    // Shard servers never allocate trace ids (the front-end does); their
    // SLO latency/shed observations flow into the shared view.
    shards_.push_back(std::make_unique<Shard>(i, options_.queue_capacity,
                                              shard_options, phase,
                                              options_.queue_deadline_seconds));
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    store_->AddSlice(&shard->server().db());
    view_->AddSlice(&shard->server().index());
  }
  next_trace_id_ =
      options_.server.trace_id_seed == 0 ? 1 : options_.server.trace_id_seed;
  if (options_.server.slo != nullptr) {
    breaker_.AttachSloView(options_.server.slo, kFrontendTrack);
  }
  if (options_.server.registry != nullptr) {
    obs::Registry& registry = *options_.server.registry;
    breaker_.AttachRegistry(&registry, "cs");
    shed_requests_counter_ = registry.GetCounter("cs_shed_requests_total");
    shed_events_counter_ = registry.GetCounter("cs_shed_events_total");
    shed_queue_full_counter_ = registry.GetCounter("cs_shed_queue_full_total");
    journal_failures_counter_ =
        registry.GetCounter("cs_journal_failures_total");
  }
  for (const std::unique_ptr<Shard>& shard : shards_) shard->Start();
}

ConcurrentServer::~ConcurrentServer() { Finish(); }

void ConcurrentServer::CountShed(bool is_request) {
  ++shed_events_;
  if (shed_events_counter_ != nullptr) shed_events_counter_->Increment();
  if (is_request) {
    ++shed_requests_;
    if (shed_requests_counter_ != nullptr) shed_requests_counter_->Increment();
  }
}

common::Status ConcurrentServer::FrontEndAdmit(const JournalEvent& event) {
  const bool traced = options_.server.causal != nullptr;
  if (!breaker_.Admit()) {
    if (traced) admit_shed_reason_ = "degraded";
    return common::Status::Unavailable(
        "concurrent server degraded: event suppressed fail-closed");
  }
  if (options_.journal != nullptr) {
    // Back-fill epoch markers that were emitted to the shards while the
    // journal was failing, so journal epochs stay aligned with the epochs
    // the shards actually ran.
    while (pending_epoch_ends_ > 0) {
      JournalEvent marker;
      marker.kind = JournalEvent::Kind::kEpochEnd;
      common::Status status = options_.journal->AppendEvent(marker);
      if (!status.ok()) {
        ++journal_failures_;
        if (journal_failures_counter_ != nullptr) {
          journal_failures_counter_->Increment();
        }
        breaker_.RecordFailure();
        return status;
      }
      --pending_epoch_ends_;
    }
    const int64_t append_start = traced ? obs::MonotonicNanos() : 0;
    common::Status status = options_.journal->AppendEvent(event);
    if (traced) {
      admit_journal_start_ns_ = append_start;
      admit_journal_dur_ns_ = obs::MonotonicNanos() - append_start;
      admit_journal_ran_ = true;
    }
    if (!status.ok()) {
      if (traced) admit_shed_reason_ = "journal_error";
      ++journal_failures_;
      if (journal_failures_counter_ != nullptr) {
        journal_failures_counter_->Increment();
      }
      breaker_.RecordFailure();
      return status;
    }
  }
  breaker_.RecordSuccess();
  ++admitted_events_;
  return common::Status::OK();
}

bool ConcurrentServer::AdmitData(Shard* owner, const JournalEvent& event,
                                 bool is_request) {
  streaming_started_ = true;
  // Reserve queue capacity FIRST: under a shed/fail policy the drop
  // decision must precede the journal append (a journaled-then-shed event
  // would replay as applied).
  if (options_.full_queue_policy == FullQueuePolicy::kBlock) {
    owner->AcquireSlot();
  } else {
    const int64_t timeout_ms =
        options_.full_queue_policy == FullQueuePolicy::kShed
            ? options_.enqueue_timeout_ms
            : 0;
    if (!owner->TryAcquireSlot(timeout_ms)) {
      if (options_.server.causal != nullptr) {
        admit_shed_reason_ = "queue_full";
      }
      ++shed_queue_full_;
      if (shed_queue_full_counter_ != nullptr) shed_queue_full_counter_->Increment();
      CountShed(is_request);
      last_submit_error_ =
          common::Status::Unavailable("shard queue full: event shed");
      return false;
    }
  }
  common::Status status = FrontEndAdmit(event);
  if (!status.ok()) {
    owner->CancelSlot();
    CountShed(is_request);
    last_submit_error_ = std::move(status);
    return false;
  }
  last_submit_error_ = common::Status::OK();
  return true;
}

common::Status ConcurrentServer::RegisterService(
    const anon::ServiceProfile& service) {
  // Write-ahead: journal before applying.  A failing registration is
  // journaled too — the pipeline is deterministic, so replay fails it
  // identically.  A failing APPEND, though, suppresses the registration
  // entirely (fail-closed).
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRegisterService;
  event.service = service;
  common::Status admitted = FrontEndAdmit(event);
  if (!admitted.ok()) {
    CountShed(false);
    last_submit_error_ = admitted;
    return admitted;
  }
  last_submit_error_ = common::Status::OK();
  common::Status status = common::Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    common::Status s = shard->server().RegisterService(service);
    if (!s.ok()) status = s;
  }
  return status;
}

common::Status ConcurrentServer::RegisterUser(mod::UserId user,
                                              PrivacyPolicy policy) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRegisterUser;
  event.user = user;
  event.policy = policy;
  common::Status admitted = FrontEndAdmit(event);
  if (!admitted.ok()) {
    CountShed(false);
    last_submit_error_ = admitted;
    return admitted;
  }
  last_submit_error_ = common::Status::OK();
  return OwnerOf(user)->server().RegisterUser(user, policy);
}

common::Result<size_t> ConcurrentServer::RegisterLbqid(mod::UserId user,
                                                       lbqid::Lbqid lbqid) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kRegisterLbqid;
  event.user = user;
  event.lbqid = std::make_shared<const lbqid::Lbqid>(lbqid);
  common::Status admitted = FrontEndAdmit(event);
  if (!admitted.ok()) {
    CountShed(false);
    last_submit_error_ = admitted;
    return admitted;
  }
  last_submit_error_ = common::Status::OK();
  return OwnerOf(user)->server().RegisterLbqid(user, std::move(lbqid));
}

common::Status ConcurrentServer::SetUserRules(mod::UserId user,
                                              PolicyRuleSet rules) {
  JournalEvent event;
  event.kind = JournalEvent::Kind::kSetRules;
  event.user = user;
  event.rules = std::make_shared<const PolicyRuleSet>(rules);
  common::Status admitted = FrontEndAdmit(event);
  if (!admitted.ok()) {
    CountShed(false);
    last_submit_error_ = admitted;
    return admitted;
  }
  last_submit_error_ = common::Status::OK();
  return OwnerOf(user)->server().SetUserRules(user, std::move(rules));
}

bool ConcurrentServer::SubmitLocationUpdate(mod::UserId user,
                                            const geo::STPoint& sample) {
  JournalEvent journal_event;
  journal_event.kind = JournalEvent::Kind::kUpdate;
  journal_event.user = user;
  journal_event.point = sample;
  Shard* owner = OwnerOf(user);
  if (!AdmitData(owner, journal_event, /*is_request=*/false)) return false;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kLocationUpdate;
  event.user = user;
  event.point = sample;
  owner->PushReserved(std::move(event));
  return true;
}

size_t ConcurrentServer::SubmitRequest(mod::UserId user,
                                       const geo::STPoint& exact,
                                       mod::ServiceId service,
                                       std::string data) {
  JournalEvent journal_event;
  journal_event.kind = JournalEvent::Kind::kRequest;
  journal_event.user = user;
  journal_event.point = exact;
  journal_event.service_id = service;
  journal_event.data = data;
  obs::CausalTracer* causal = options_.server.causal;
  int64_t adm_start = 0;
  if (causal != nullptr) {
    admit_journal_ran_ = false;
    admit_shed_reason_ = "journal_error";
    adm_start = obs::MonotonicNanos();
  }
  const size_t shard = ShardOf(user);
  if (!AdmitData(shards_[shard].get(), journal_event, /*is_request=*/true)) {
    // Shed: no ordinal, no submissions_ entry (the realignment map stays
    // dense over the requests that actually reached a shard).  The shed
    // span goes to trace 0 — no id was consumed, so replay (admitted
    // events only) re-derives the same id sequence.
    if (causal != nullptr) {
      causal->RecordSpan(
          obs::TraceContext{}, "admission", kFrontendTrack, adm_start,
          obs::MonotonicNanos() - adm_start,
          {{"shed_reason", admit_shed_reason_},
           {"user", common::Format("%lld", static_cast<long long>(user))}});
    }
    return kShedSubmission;
  }
  ShardEvent event;
  event.kind = ShardEvent::Kind::kRequest;
  event.user = user;
  event.point = exact;
  event.service = service;
  event.data = std::move(data);
  if (causal != nullptr) {
    // Retroactive, like the serial server: the trace id exists only once
    // admission succeeded.
    const int64_t adm_dur = obs::MonotonicNanos() - adm_start;
    const uint64_t tid = next_trace_id_++;
    const uint64_t adm_span = causal->RecordSpan(
        obs::TraceContext{tid, 0}, "admission", kFrontendTrack, adm_start,
        adm_dur,
        {{"user", common::Format("%lld", static_cast<long long>(user))}});
    if (admit_journal_ran_) {
      causal->RecordSpan(obs::TraceContext{tid, adm_span}, "journal_append",
                         kFrontendTrack, admit_journal_start_ns_,
                         admit_journal_dur_ns_, {});
    }
    event.trace = obs::TraceContext{tid, adm_span};
  }
  if (options_.queue_deadline_seconds > 0.0 || causal != nullptr) {
    event.enqueue_ns = obs::MonotonicNanos();
  }
  const size_t seq = submissions_.size();
  submissions_.emplace_back(shard, per_shard_requests_[shard]++);
  shards_[shard]->PushReserved(std::move(event));
  return seq;
}

bool ConcurrentServer::SubmitRegisterUser(mod::UserId user,
                                          PrivacyPolicy policy) {
  JournalEvent journal_event;
  journal_event.kind = JournalEvent::Kind::kRegisterUser;
  journal_event.user = user;
  journal_event.policy = policy;
  Shard* owner = OwnerOf(user);
  if (!AdmitData(owner, journal_event, /*is_request=*/false)) return false;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kRegisterUser;
  event.user = user;
  event.policy = policy;
  owner->PushReserved(std::move(event));
  return true;
}

bool ConcurrentServer::SubmitRegisterLbqid(mod::UserId user,
                                           lbqid::Lbqid lbqid) {
  auto shared = std::make_shared<const lbqid::Lbqid>(std::move(lbqid));
  JournalEvent journal_event;
  journal_event.kind = JournalEvent::Kind::kRegisterLbqid;
  journal_event.user = user;
  journal_event.lbqid = shared;
  Shard* owner = OwnerOf(user);
  if (!AdmitData(owner, journal_event, /*is_request=*/false)) return false;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kRegisterLbqid;
  event.user = user;
  event.lbqid = std::move(shared);
  owner->PushReserved(std::move(event));
  return true;
}

bool ConcurrentServer::SubmitSetUserRules(mod::UserId user,
                                          PolicyRuleSet rules) {
  auto shared = std::make_shared<const PolicyRuleSet>(std::move(rules));
  JournalEvent journal_event;
  journal_event.kind = JournalEvent::Kind::kSetRules;
  journal_event.user = user;
  journal_event.rules = shared;
  Shard* owner = OwnerOf(user);
  if (!AdmitData(owner, journal_event, /*is_request=*/false)) return false;
  ShardEvent event;
  event.kind = ShardEvent::Kind::kSetUserRules;
  event.user = user;
  event.rules = std::move(shared);
  owner->PushReserved(std::move(event));
  return true;
}

void ConcurrentServer::EndEpoch() {
  // Control-plane: the markers below are emitted no matter what happens
  // to the marker's journal append — suppressing them would wedge the
  // barrier machinery and Finish().  An unjournaled marker is remembered
  // in pending_epoch_ends_ and back-filled by the next successful admit.
  JournalEvent journal_event;
  journal_event.kind = JournalEvent::Kind::kEpochEnd;
  common::Status admitted = FrontEndAdmit(journal_event);
  if (!admitted.ok()) {
    ++pending_epoch_ends_;
    last_submit_error_ = admitted;
  } else {
    last_submit_error_ = common::Status::OK();
  }
  streaming_started_ = true;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kEpochEnd;
    // Markers always use the blocking enqueue: they must reach every
    // shard exactly once regardless of the full-queue policy.
    shard->Enqueue(std::move(event));
  }
}

void ConcurrentServer::Finish() {
  if (finished_) return;
  finished_ = true;
  // A final (possibly empty) epoch flushes whatever was submitted since
  // the last EndEpoch, then the workers exit.
  EndEpoch();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kShutdown;
    shard->Enqueue(std::move(event));
  }
  for (const std::unique_ptr<Shard>& shard : shards_) shard->Join();
  // Realign the per-shard processing logs into global submission order.
  // Shed submissions never got an entry; shard-level deadline sheds DID
  // (RecordShedRequest keeps the per-shard logs dense), so indices line
  // up either way.
  outcomes_.clear();
  outcomes_.reserve(submissions_.size());
  for (const auto& [shard, ordinal] : submissions_) {
    outcomes_.push_back(shards_[shard]->server().outcomes()[ordinal]);
  }
}

std::vector<ProcessOutcome> ConcurrentServer::DrainWindow() {
  std::vector<ProcessOutcome> window;
  if (finished_) return window;
  // Flush the open window: after the markers, every worker ingests, meets
  // the barrier, and serves.  The sync events below are BEHIND the
  // markers in each queue (same single producer), so a worker acks only
  // after its serve phase — and serve_done means every OTHER shard
  // finished too.
  EndEpoch();
  auto collector = std::make_shared<CheckpointCollector>();
  collector->remaining = shards_.size();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kSync;
    event.checkpoint = collector;
    shard->Enqueue(std::move(event));
  }
  {
    std::unique_lock<std::mutex> lock(collector->mu);
    collector->cv.wait(lock,
                       [&collector] { return collector->remaining == 0; });
  }
  // All workers are idle in Pop() (nothing is queued behind the sync), so
  // reading their outcome logs here is race-free — the same quiescence
  // argument Checkpoint() relies on, with the collector mutex carrying
  // the happens-before edge.
  window.reserve(submissions_.size() - drained_through_);
  for (size_t i = drained_through_; i < submissions_.size(); ++i) {
    const auto& [shard, ordinal] = submissions_[i];
    window.push_back(shards_[shard]->server().outcomes()[ordinal]);
  }
  drained_through_ = submissions_.size();
  return window;
}

void ConcurrentServer::RegisterResourceProbes(
    obs::ResourceAccountant* accountant, const std::string& prefix) const {
  if (accountant == nullptr) return;
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->server().RegisterResourceProbes(
        accountant, common::Format("%sshard%zu_", prefix.c_str(), i));
  }
  accountant->RegisterProbe(prefix + "journal", [this] {
    return static_cast<uint64_t>(
        options_.journal == nullptr ? 0 : options_.journal->size());
  });
}

uint64_t ConcurrentServer::deadline_sheds() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->deadline_sheds();
  }
  return total;
}

TsStats ConcurrentServer::stats() const {
  TsStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const TsStats& s = shard->server().stats();
    total.requests += s.requests;
    total.forwarded_default += s.forwarded_default;
    total.forwarded_generalized += s.forwarded_generalized;
    total.suppressed_mixzone += s.suppressed_mixzone;
    total.unlink_attempts += s.unlink_attempts;
    total.unlink_successes += s.unlink_successes;
    total.at_risk_notifications += s.at_risk_notifications;
    total.lbqid_completions += s.lbqid_completions;
    total.generalized_area_sum += s.generalized_area_sum;
    total.generalized_window_sum += s.generalized_window_sum;
  }
  return total;
}

std::vector<TrustedServer::TraceAudit> ConcurrentServer::AuditTraces() const {
  std::vector<TrustedServer::TraceAudit> audits;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<TrustedServer::TraceAudit> part =
        shard->server().AuditTraces();
    audits.insert(audits.end(), part.begin(), part.end());
  }
  std::sort(audits.begin(), audits.end(),
            [](const TrustedServer::TraceAudit& a,
               const TrustedServer::TraceAudit& b) {
              if (a.user != b.user) return a.user < b.user;
              return a.lbqid_index < b.lbqid_index;
            });
  return audits;
}

anon::HkaResult ConcurrentServer::EvaluateTraceHka(mod::UserId user,
                                                   size_t lbqid_index) const {
  return shards_[ShardOf(user)]->server().EvaluateTraceHka(user, lbqid_index);
}

}  // namespace ts
}  // namespace histkanon
