// The attacking service provider of the paper's threat model: from its
// request log it (a) stitches traces together across pseudonyms with the
// linkability techniques of Section 5.2, and (b) re-identifies traces via
// the external phone-book source of Section 1 ("the mapping of such
// coordinates to home addresses is generally available").

#ifndef HISTKANON_SRC_TS_ADVERSARY_H_
#define HISTKANON_SRC_TS_ADVERSARY_H_

#include <memory>
#include <vector>

#include "src/anon/linkability.h"
#include "src/anon/request.h"
#include "src/sim/world.h"

namespace histkanon {
namespace ts {

/// \brief Adversary knobs.
struct AdversaryOptions {
  /// Linking threshold the adversary applies (its own Theta).
  double theta = 0.5;
  /// Kinematic linker parameters (the multi-target-tracking attack of the
  /// paper's reference [12]); used by the default Euclidean tracker and as
  /// the trace-stitching time-gap bound.
  anon::ProximityLinkerOptions tracking;
  /// Override tracker (e.g. a road-network-aware roadnet::NetworkLinker);
  /// null uses a ProximityLinker built from `tracking`.
  std::shared_ptr<const anon::LinkFunction> tracker;
  /// A request context is "home evidence" when its area is at most this
  /// wide/tall (meters) — precise enough for an address lookup...
  double max_home_area_extent = 400.0;
  /// ...its time-of-day falls in home hours: before this morning bound or
  /// after the evening bound (seconds of day)...
  int64_t home_morning_end = 9 * 3600;
  int64_t home_evening_start = 17 * 3600;
  /// ...and the phone-book lookup finds a registered home within this
  /// distance of the area center (meters).
  double home_lookup_radius = 200.0;
  /// Minimum number of home-evidence requests before the adversary commits
  /// to an identification (one visit could be a guest).
  size_t min_home_evidence = 2;
};

/// \brief One claimed (trace -> person) identification.
struct Identification {
  /// Pseudonyms of the linked trace (>= 1; > 1 means a cross-pseudonym
  /// stitch succeeded).
  std::vector<mod::Pseudonym> pseudonyms;
  /// The person the adversary claims issued the trace.
  mod::UserId claimed_user = mod::kInvalidUser;
  /// Requests in the trace.
  size_t trace_size = 0;
  /// Home-evidence requests supporting the claim.
  size_t evidence = 0;
};

/// \brief The attacking SP.
class Adversary {
 public:
  /// `world` supplies the phone book; must outlive the adversary.
  Adversary(const sim::World* world, AdversaryOptions options);

  /// Runs the full attack on an SP log.
  ///
  /// Pipeline: (1) group requests by pseudonym; (2) link groups whose
  /// temporally-adjacent requests score >= theta under the tracking
  /// linker; (3) for each linked trace, collect home-hour small-area
  /// contexts, look their centroid up in the phone book, and claim the
  /// resident when the evidence threshold is met.
  std::vector<Identification> Attack(
      const std::vector<anon::ForwardedRequest>& log) const;

  /// Cross-pseudonym linking only (step 2): the partition of pseudonyms
  /// into adversary-linked traces.  Exposed for the unlinking experiments.
  std::vector<std::vector<mod::Pseudonym>> LinkPseudonyms(
      const std::vector<anon::ForwardedRequest>& log) const;

 private:
  const sim::World* world_;
  AdversaryOptions options_;
  std::shared_ptr<const anon::LinkFunction> tracker_;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_ADVERSARY_H_
