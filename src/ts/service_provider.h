// The (possibly untrusted) service provider: receives forwarded requests,
// serves them, and keeps the log an adversary could mine.

#ifndef HISTKANON_SRC_TS_SERVICE_PROVIDER_H_
#define HISTKANON_SRC_TS_SERVICE_PROVIDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/anon/request.h"
#include "src/anon/tolerance.h"
#include "src/sim/world.h"

namespace histkanon {
namespace ts {

/// \brief A service answer routed back through the TS.
struct ServiceReply {
  mod::MessageId msgid = 0;
  std::string payload;
};

/// \brief An honest-but-curious service provider.
///
/// It fulfils requests (here: nearest-hospital / localized-news style
/// answers computed from the generalized context) and records everything
/// it sees — the attack surface of the paper's threat model.
class ServiceProvider {
 public:
  /// `world` supplies the content the services answer with (hospitals,
  /// news districts); may be null for a log-only provider.
  explicit ServiceProvider(const sim::World* world = nullptr)
      : world_(world) {}

  /// Handles one forwarded request, returning the reply the TS relays.
  ServiceReply Handle(const anon::ForwardedRequest& request);

  /// Everything this provider has observed, in arrival order.
  const std::vector<anon::ForwardedRequest>& log() const { return log_; }

  /// Requests observed per pseudonym ("sequences ... identified by service
  /// providers since each request is explicitly associated with a userid",
  /// Section 5.1).
  std::map<mod::Pseudonym, std::vector<size_t>> RequestsByPseudonym() const;

 private:
  const sim::World* world_;
  std::vector<anon::ForwardedRequest> log_;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_SERVICE_PROVIDER_H_
