// User privacy policies: "Users can turn on and off a privacy protecting
// system which has a simplified user interface with qualitative degrees of
// concern: low, medium, high ... Qualitative privacy preferences provided
// by each user are translated by the TS into specific parameters"
// (Section 3).  "The two main parameters defining a level of privacy
// concern in our framework are k, the anonymity value, and Theta, the
// linkability likelihood" (Section 5.3).

#ifndef HISTKANON_SRC_TS_POLICY_H_
#define HISTKANON_SRC_TS_POLICY_H_

#include <cstddef>
#include <string_view>

#include "src/anon/kschedule.h"

namespace histkanon {
namespace ts {

/// \brief The qualitative dial the user sees.
enum class PrivacyConcern { kOff, kLow, kMedium, kHigh };

/// Canonical lower-case name of a concern level.
std::string_view PrivacyConcernToString(PrivacyConcern concern);

/// \brief The quantitative policy the TS enforces.
struct PrivacyPolicy {
  PrivacyConcern concern = PrivacyConcern::kMedium;
  /// Historical k-anonymity parameter (ignored when concern is kOff).
  size_t k = 5;
  /// Unlinking likelihood threshold Theta.
  double theta = 0.5;
  /// Anchor schedule (Section 6.2's k' heuristic).
  anon::KSchedule k_schedule;
  /// Multiplier on the minimum context extents for NON-LBQID requests.
  /// Extension beyond the paper's Algorithm 1 (whose scope is LBQID
  /// matches): Section 7 notes that inference attacks on the remaining
  /// requests are an open issue — a precise home-hour context still feeds
  /// the Section-1 phone-book attack, so higher concern levels blur every
  /// context (still clipped to the service tolerance).
  double default_context_scale = 1.0;

  /// TS translation of the qualitative dial.
  static PrivacyPolicy FromConcern(PrivacyConcern concern) {
    PrivacyPolicy policy;
    policy.concern = concern;
    switch (concern) {
      case PrivacyConcern::kOff:
        policy.k = 1;
        policy.theta = 1.0;
        break;
      case PrivacyConcern::kLow:
        policy.k = 3;
        policy.theta = 0.8;
        policy.default_context_scale = 3.0;
        break;
      case PrivacyConcern::kMedium:
        policy.k = 5;
        policy.theta = 0.5;
        policy.k_schedule = anon::KSchedule{1.5, 1};
        policy.default_context_scale = 5.0;
        break;
      case PrivacyConcern::kHigh:
        policy.k = 10;
        policy.theta = 0.3;
        policy.k_schedule = anon::KSchedule{2.0, 2};
        policy.default_context_scale = 10.0;
        break;
    }
    return policy;
  }
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_POLICY_H_
