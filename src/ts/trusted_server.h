// The Trusted Server (paper Section 3, Figure 1): the privacy-enforcing
// middleware between users and service providers, implementing the full
// Section 6.1 strategy:
//
//   1. monitor every request against the user's LBQIDs; on an element
//      match, generalize the spatio-temporal context with Algorithm 1 so
//      that Historical k-anonymity is preserved;
//   2. if generalization fails, try to unlink future requests from
//      previous ones by rotating the pseudonym inside an on-demand
//      mix-zone; if that also fails, notify the user that identification
//      is at risk.

#ifndef HISTKANON_SRC_TS_TRUSTED_SERVER_H_
#define HISTKANON_SRC_TS_TRUSTED_SERVER_H_

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/anon/generalize.h"
#include "src/anon/hka.h"
#include "src/anon/mixzone.h"
#include "src/anon/pseudonym.h"
#include "src/anon/randomize.h"
#include "src/anon/request.h"
#include "src/anon/tolerance.h"
#include "src/lbqid/monitor.h"
#include "src/mod/cold_tier.h"
#include "src/mod/moving_object_db.h"
#include "src/obs/causal_trace.h"
#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/resource.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/stindex/grid_index.h"
#include "src/stindex/tiered_view.h"
#include "src/ts/overload.h"
#include "src/ts/policy.h"
#include "src/ts/policy_rules.h"
#include "src/ts/service_provider.h"

namespace histkanon {
namespace ts {

class TsJournal;
struct JournalEvent;

/// \brief Bounded-state operation (DESIGN.md §16): tiered PHL storage and
/// retention limits that keep resident memory flat under indefinite load.
///
/// Fields marked [fingerprint] change what the server ANSWERS (which
/// samples are evictable, when seals fire, how much outcome history
/// survives) and are folded into the snapshot determinism fingerprint —
/// RestoreFrom refuses a blob whose retention differs.  The unmarked
/// fields are environment tuning (paths, residency budgets) that never
/// changes an answer and may differ between a writer and its restore twin.
struct RetentionOptions {
  /// Master switch.  [fingerprint]
  bool enabled = false;
  /// Directory for sealed cold segments.  Must be set when enabled.
  std::string cold_dir;
  /// Samples younger than (now - hot_window_seconds) stay hot; requests
  /// answerable from the hot window never touch disk.  [fingerprint]
  geo::Instant hot_window_seconds = 3600;
  /// A seal is attempted at most once per period (measured on the event
  /// timeline, so the schedule is a pure function of the admitted
  /// stream).  [fingerprint]
  geo::Instant seal_period_seconds = 600;
  /// Sealing never digs a user below this many resident samples (keeps
  /// every Phl's last-position queries hot).  [fingerprint]
  size_t min_hot_samples_per_user = 1;
  /// A seal attempt collecting fewer total samples is skipped (avoids a
  /// long tail of tiny segments).  [fingerprint]
  size_t min_seal_samples = 1024;
  /// Retained outcome-log bound; 0 keeps every outcome (the historical
  /// behavior).  Trimming drops the OLDEST entries.  [fingerprint]
  size_t max_outcomes = 0;
  /// Cold segments kept decoded in memory (LRU).
  size_t max_resident_segments = 8;
  /// Hard ceiling on resident hot samples; location updates arriving at
  /// the ceiling are shed BEFORE journaling (never applied, so replay
  /// stays consistent).  0 disables the check.
  size_t max_hot_samples = 0;
  /// Breaker over seal (cold-write) failures: a tripped breaker skips
  /// seal attempts until probes succeed, degrading to unbounded-memory
  /// operation rather than wrong answers.
  CircuitBreakerOptions seal_breaker;
};

/// \brief TS construction parameters.
struct TrustedServerOptions {
  anon::GeneralizerOptions generalizer;
  anon::MixZoneOptions mixzone;
  stindex::GridIndexOptions index;
  uint64_t pseudonym_seed = 0x6b616e6f6eULL;
  /// Section 6.1 step 2 on/off (ablated in experiment E6).
  bool enable_unlinking = true;
  /// Section 7's randomization against inference attacks (ablated in
  /// experiment E9): default contexts are uniformly re-placed around the
  /// true point; Algorithm 1 boxes are randomly expanded (supersets keep
  /// the anchors' LT-consistency intact).
  bool enable_randomization = true;
  anon::RandomizerOptions randomizer;
  uint64_t randomizer_seed = 0x72616e64ULL;
  /// When true, a request whose generalization failed AND whose unlinking
  /// failed is still forwarded (clipped to tolerance) after notifying the
  /// user; when false it is dropped.
  bool forward_when_at_risk = true;
  /// Randomization draw streams.  False (default): one sequential stream,
  /// byte-compatible with historical behavior but dependent on global
  /// request order.  True: each request draws from a generator derived
  /// via common::MixSeed(randomizer_seed, user, per-user ordinal), so the
  /// boxes depend only on the per-user request sequence — the property
  /// that lets the sharded server reproduce serial output exactly.
  bool per_request_randomization = false;
  /// External read views (not owned, must outlive the server).  When set,
  /// the anonymity layers (anchor selection, HkA, mix-zones) read THROUGH
  /// these instead of the server's own db/index — the sharded server
  /// passes fan-out views spanning every shard so cross-shard k-anonymity
  /// sees the global population.  The server's own db/index must be
  /// reachable from the views (they are one slice).  Unset: the server's
  /// own db/index (the classic single-node wiring).
  const mod::ObjectStore* read_store = nullptr;
  const stindex::SpatioTemporalIndex* read_index = nullptr;
  /// Observability (all optional, not owned, must outlive the server).
  /// When unset the pipeline takes the null-object path: no counters, no
  /// clock reads, behavior bit-identical to an uninstrumented server.
  /// The registry is shared with the index, generalizer, and monitor.
  obs::Registry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::EventSink* event_sink = nullptr;
  /// Request-scoped causal tracing (optional, not owned).  Trace ids come
  /// from a deterministic counter seeded with `trace_id_seed` and are
  /// consumed ONLY on successful admission, so journal replay — which
  /// sees exactly the admitted events — re-derives the same ids.  Spans
  /// land on `trace_track` (the sharded server gives each shard its own).
  obs::CausalTracer* causal = nullptr;
  uint64_t trace_id_seed = 1;
  std::string trace_track = "ts";
  /// Rolling SLO view (optional, not owned): per-request latency and shed
  /// observations for the telemetry endpoint's windowed p50/p95/p99.
  obs::SloView* slo = nullptr;
  /// Overload protection: the journal-failure circuit breaker (fail-closed
  /// degraded mode, see src/ts/overload.h) and the per-request deadline
  /// budget.  The defaults keep behavior identical to a server without
  /// this layer until a journal append actually fails.
  OverloadOptions overload;
  /// Bounded-state operation (tiered PHL storage + retention; DESIGN.md
  /// §16).  Only honored by the classic single-node wiring: when external
  /// read views are configured (the sharded server), tiering stays off
  /// regardless of `retention.enabled`.
  RetentionOptions retention;
};

/// \brief How the TS disposed of one request.
enum class Disposition {
  /// No LBQID element matched: forwarded with the default minimal context.
  kForwardedDefault,
  /// LBQID element matched; Algorithm 1 succeeded; forwarded generalized.
  kForwardedGeneralized,
  /// Suppressed: the user is inside a mix-zone quiet period.
  kSuppressedMixZone,
  /// Generalization failed; unlinking succeeded; this request suppressed
  /// and the pseudonym rotated.
  kUnlinked,
  /// Generalization AND unlinking failed: user notified of identification
  /// risk (request forwarded clipped, or dropped, per options).
  kAtRisk,
  /// Suppressed fail-closed BEFORE entering the pipeline: the degraded-
  /// mode breaker or an overload shed refused it.  Zero state effect — no
  /// stats, no PHL append, no pseudonym, no RNG draw (tests/
  /// degraded_mode_test.cc) — and, except for shard-level deadline sheds,
  /// no outcomes() entry.
  kRejected,
};

inline constexpr size_t kDispositionCount = 6;

std::string_view DispositionToString(Disposition disposition);

/// \brief The instrumented stages of the Section 6.1 pipeline, in
/// execution order.  Each stage gets a trace span, a latency histogram
/// (`ts_stage_<name>_seconds`), and a per-request latency field in the
/// structured event log.
enum class Stage : size_t {
  kLbqidMatch = 0,  ///< Automata advance over the user's LBQIDs.
  kGeneralize,      ///< Algorithm 1 over each matched LBQID's trace.
  kHkaEval,         ///< HkA verdict: union tolerance check / Definition 8.
  kRandomize,       ///< Section 7 context randomization.
  kUnlink,          ///< Mix-zone formation attempt (Section 6.3).
  kForward,         ///< Hand-off to the service provider.
};

inline constexpr size_t kStageCount = 6;

std::string_view StageToString(Stage stage);

/// \brief Per-request stage bookkeeping, filled only when observability is
/// attached (zero clock reads otherwise).  `causal`/`ctx`/`track` carry
/// the request's causal coordinates so stage scopes can open child spans
/// even when the metric side (`enabled`) is off.
struct RequestTelemetry {
  bool enabled = false;
  bool ran[kStageCount] = {};
  double seconds[kStageCount] = {};
  obs::CausalTracer* causal = nullptr;
  obs::TraceContext ctx;
  const std::string* track = nullptr;
};

/// \brief One request of a ProcessBatch window.
struct BatchRequest {
  mod::UserId user = mod::kInvalidUser;
  geo::STPoint exact;
  mod::ServiceId service = 0;
  std::string data;
};

/// \brief Outcome record for one request (also the unit of the metrics).
/// TS-side bookkeeping: `exact` never leaves the trusted server.
struct ProcessOutcome {
  Disposition disposition = Disposition::kForwardedDefault;
  bool forwarded = false;
  /// The request's true position/time (TS-side only).
  geo::STPoint exact;
  /// Valid when forwarded.
  anon::ForwardedRequest forwarded_request;
  /// Algorithm 1's flag (true when no generalization was needed).
  bool hk_anonymity = true;
  /// LBQID bookkeeping (set when an element matched).
  bool matched_lbqid = false;
  size_t lbqid_index = 0;
  size_t element_index = 0;
  bool lbqid_completed = false;
};

/// \brief Aggregate counters.
struct TsStats {
  size_t requests = 0;
  size_t forwarded_default = 0;
  size_t forwarded_generalized = 0;
  size_t suppressed_mixzone = 0;
  size_t unlink_attempts = 0;
  size_t unlink_successes = 0;
  size_t at_risk_notifications = 0;
  size_t lbqid_completions = 0;
  /// Sum of generalized-context area (m^2) and window (s) over
  /// forwarded_generalized, for QoS metrics.
  double generalized_area_sum = 0.0;
  double generalized_window_sum = 0.0;
};

/// \brief The trusted server.
class TrustedServer : public sim::EventSink {
 public:
  explicit TrustedServer(TrustedServerOptions options = TrustedServerOptions());

  /// Registers a service (tolerance constraints).  Fails on duplicate id.
  common::Status RegisterService(const anon::ServiceProfile& service);

  /// Registers a user with a privacy policy.  Fails on duplicate user.
  common::Status RegisterUser(mod::UserId user, PrivacyPolicy policy);

  /// Attaches an expert rule set to a registered user (paper Section 3's
  /// "rule-based policy specifications"); per-request policies are then
  /// resolved by the rule set (its fallback replaces the flat policy).
  common::Status SetUserRules(mod::UserId user, PolicyRuleSet rules);

  /// Attaches an LBQID to a registered user; returns its per-user index.
  common::Result<size_t> RegisterLbqid(mod::UserId user, lbqid::Lbqid lbqid);

  /// Wires the (single, per the experiments) downstream service provider.
  void ConnectServiceProvider(ServiceProvider* provider) {
    provider_ = provider;
  }

  // sim::EventSink:
  void OnLocationUpdate(mod::UserId user, const geo::STPoint& sample) override;
  void OnServiceRequest(mod::UserId user, const geo::STPoint& exact,
                        const sim::RequestIntent& intent) override;

  /// The Status-returning location-update path (OnLocationUpdate
  /// delegates here): Unavailable when the degraded-mode breaker
  /// suppressed it, the journal error when the write-ahead append failed.
  /// In both cases the update was NOT applied (fail-closed).
  common::Status ApplyLocationUpdate(mod::UserId user,
                                     const geo::STPoint& sample);

  /// The full Section 6.1 pipeline for one request; the EventSink entry
  /// point delegates here.  Unregistered users get an implicit kMedium
  /// policy; unregistered services get default tolerance.
  ProcessOutcome ProcessRequest(mod::UserId user, const geo::STPoint& exact,
                                mod::ServiceId service,
                                const std::string& data);

  /// Batched request engine (DESIGN.md §13): admits the whole window as
  /// ONE composite journal event, ingests every request point up front,
  /// prewarms the generalizer's shared nearest-users entries in grid-cell
  /// order (co-located requests then answer from one index query), and
  /// serves the requests in their original submission order — so every
  /// per-request stream (msgids, pseudonyms, RNG draws, ordinals) is
  /// byte-identical to the serial per-request path under the PR-2
  /// epoch-normalized order.  A failed batch admission rejects the whole
  /// window with zero state effect (no outcomes() entries).
  std::vector<ProcessOutcome> ProcessBatch(
      const std::vector<BatchRequest>& requests);

  /// Precomputes the shared anchor-selection entry one request would
  /// need, without serving it (the cache layer of ProcessBatch; also
  /// called by the sharded server's serve phase over cell-sorted
  /// windows).  Never changes any answer — only pre-pays index work.
  void PrewarmRequest(mod::UserId user, const geo::STPoint& exact,
                      mod::ServiceId service);

  /// Records a request shed OUTSIDE the pipeline (a shard's queue-wait
  /// deadline fired): appends a kRejected outcome so per-shard outcome
  /// logs stay dense for realignment.  No other state is touched.
  ProcessOutcome RecordShedRequest(const geo::STPoint& exact);

  // -- Degraded-mode introspection (src/ts/overload.h).

  /// The journal-failure breaker's current state.
  HealthState health() const { return breaker_.state(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  /// Events (of any kind) suppressed fail-closed; requests among them.
  uint64_t shed_events() const { return shed_events_; }
  uint64_t shed_requests() const { return shed_requests_; }
  /// Write-ahead journal appends that failed.
  uint64_t journal_failures() const { return journal_failures_; }
  /// Requests whose pipeline run exceeded the deadline budget.
  uint64_t deadline_overruns() const { return deadline_overruns_; }
  /// Events admitted (journaled when a journal is attached) — the
  /// admission ledger the chaos differential keys accepted events off.
  uint64_t admitted_events() const { return admitted_events_; }

  // -- Tiered-storage introspection (nullptr / zero when retention is
  // off; DESIGN.md §16).

  /// The cold tier, when tiering is active.
  const mod::ColdTier* cold_tier() const { return cold_.get(); }
  /// Seal attempts that wrote a segment / that failed fail-closed (the
  /// samples stayed hot).
  uint64_t seals() const { return seals_; }
  uint64_t seal_failures() const { return seal_failures_; }
  /// Requests shed because a cold-tier read faulted mid-pipeline (the
  /// fault would otherwise have shrunk an anonymity set silently).
  uint64_t cold_fault_sheds() const { return cold_fault_sheds_; }
  /// Location updates shed at the max_hot_samples ceiling (pre-journal).
  uint64_t hot_cap_sheds() const { return hot_cap_sheds_; }
  /// The seal breaker (HEALTHY unless cold writes are failing).
  const CircuitBreaker& seal_breaker() const { return seal_breaker_; }

  // -- Causal tracing (no-ops without options.causal).

  /// Hands the server the causal coordinates of the NEXT ProcessRequest
  /// call, when admission happened elsewhere (the sharded front-end
  /// admits and journals before enqueueing; the shard worker then serves
  /// under the front-end's trace id instead of allocating one).
  void SetNextTraceContext(const obs::TraceContext& ctx) {
    pending_ctx_ = ctx;
    has_pending_ctx_ = true;
  }
  /// Seeds the trace-id counter (recovery: the journaled annotation
  /// record restores the pre-crash counter before replay).
  void SetNextTraceId(uint64_t id) { next_trace_id_ = id; }
  /// The next trace id the server would allocate.
  uint64_t next_trace_id() const { return next_trace_id_; }

  /// Registers this server's resource probes (PHL samples, journal size,
  /// last snapshot blob, anchor-cache entries, event-log bytes, outcome
  /// log) under `<prefix>` names.  The accountant polls the probes from
  /// its Collect() caller, which must not race this server's writer
  /// thread; `this` must outlive the accountant's probes.
  void RegisterResourceProbes(obs::ResourceAccountant* accountant,
                              const std::string& prefix) const;

  const mod::MovingObjectDb& db() const { return db_; }
  const stindex::GridIndex& index() const { return index_; }
  const TsStats& stats() const { return stats_; }
  const anon::PseudonymManager& pseudonyms() const { return pseudonyms_; }
  anon::PseudonymManager& pseudonyms() { return pseudonyms_; }
  const lbqid::LbqidMonitor& monitor() const { return monitor_; }

  /// Every outcome, in processing order (drives the experiment metrics).
  const std::vector<ProcessOutcome>& outcomes() const { return outcomes_; }

  /// The forwarded spatio-temporal contexts of `user`'s LBQID-matching
  /// requests under their CURRENT pseudonym (the set Definition 8
  /// quantifies over), across all of the user's LBQIDs.
  std::vector<geo::STBox> CurrentTraceContexts(mod::UserId user) const;

  /// Same, restricted to one LBQID (Definition 8 is stated per
  /// LBQID-matching request set).
  std::vector<geo::STBox> TraceContextsOf(mod::UserId user,
                                          size_t lbqid_index) const;

  /// Evaluates Historical k-anonymity of the user's current trace (all
  /// LBQIDs combined — a conservative check).
  anon::HkaResult EvaluateUserHka(mod::UserId user) const;

  /// Evaluates Historical k-anonymity of one LBQID's current trace.
  anon::HkaResult EvaluateTraceHka(mod::UserId user,
                                   size_t lbqid_index) const;

  /// \brief One row of the Theorem-1 self-audit.
  struct TraceAudit {
    mod::UserId user = mod::kInvalidUser;
    size_t lbqid_index = 0;
    size_t steps = 0;
    /// True when some request of this trace was forwarded AT RISK (i.e.
    /// clipped below the k-covering box) — Theorem 1's precondition
    /// ("we can always perform Unlinking") was violated for it.
    bool tainted = false;
    /// Definition 8 verdict on the trace as forwarded.
    bool hka_satisfied = false;
    size_t witnesses = 0;
  };

  /// Audits every live trace against Theorem 1: a non-tainted trace (all
  /// requests forwarded through successful Algorithm-1 generalizations)
  /// must satisfy Historical k-anonymity.  Violations indicate a bug.
  std::vector<TraceAudit> AuditTraces() const;

  // -- Durability (implemented in src/ts/durability.cc).

  /// Attaches a write-ahead journal (not owned, must outlive the server).
  /// Every subsequent registration, location update, and request is
  /// journaled BEFORE it is applied.  nullptr detaches.
  void AttachJournal(TsJournal* journal) { journal_ = journal; }
  TsJournal* journal() const { return journal_; }

  /// Serializes the COMPLETE server state — db + index contents, LBQID
  /// automata, pseudonym/unlink state, RNG streams, per-user traces,
  /// stats, and the outcome log — into a versioned snapshot blob.
  common::Result<std::string> Checkpoint() const;

  /// Restores a Checkpoint() blob into this server.  The server must be
  /// freshly constructed (FailedPrecondition otherwise) with options whose
  /// determinism-relevant fields (seeds, flags) match the checkpointed
  /// server's — the blob carries a fingerprint that is verified.  Custom
  /// time granularities must be resolvable through `registry`.
  common::Status RestoreFrom(std::string_view snapshot,
                             const tgran::GranularityRegistry& registry);

  /// Checkpoint() + append the snapshot to the attached journal (recovery
  /// then replays only the events after it).  FailedPrecondition without
  /// an attached journal.
  common::Status WriteCheckpoint();

 private:
  struct TraceState {
    std::vector<mod::UserId> anchors;
    size_t steps = 0;
    /// Contexts forwarded for this LBQID under the current pseudonym.
    std::vector<geo::STBox> contexts;
    /// True when an at-risk (tolerance-clipped) context was forwarded.
    bool tainted = false;
  };
  struct UserState {
    PrivacyPolicy policy;
    /// Expert rule set; when set, per-request policies come from here
    /// (and `policy` is its fallback, used for trace-level evaluations).
    std::optional<PolicyRuleSet> rules;
    geo::Instant quiet_until = std::numeric_limits<geo::Instant>::min();
    std::map<size_t, TraceState> traces;  // keyed by lbqid index
    /// Requests processed for this user (the per-request randomization
    /// stream ordinal — a per-user count, so it is identical whether the
    /// workload ran serially or sharded).
    uint64_t requests_seen = 0;
  };

  /// Pre-resolved metric handles (all nullptr without a registry).
  struct ObsHandles {
    bool enabled = false;
    obs::Counter* requests = nullptr;
    obs::Counter* disposition[kDispositionCount] = {};  // by Disposition
    obs::Counter* lbqid_completions = nullptr;
    obs::Counter* unlink_attempts = nullptr;
    obs::Counter* unlink_successes = nullptr;
    obs::Counter* shed_requests = nullptr;
    obs::Counter* shed_events = nullptr;
    obs::Counter* journal_failures = nullptr;
    obs::Counter* deadline_overruns = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batch_requests = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* stage[kStageCount] = {};
    obs::Histogram* request_seconds = nullptr;
    obs::Histogram* generalized_area = nullptr;
    obs::Histogram* generalized_window = nullptr;
  };

  UserState& StateOf(mod::UserId user);
  // ProcessRequest minus the write-ahead admission: the telemetry wrapper
  // and pipeline for one ALREADY-JOURNALED request (ProcessBatch serves
  // its window through this after the composite batch event is admitted).
  ProcessOutcome ProcessAdmitted(mod::UserId user, const geo::STPoint& exact,
                                 mod::ServiceId service,
                                 const std::string& data);
  // ProcessRequest under causal tracing: allocates (or adopts) the trace
  // id, records the retroactive admission/journal spans, then funnels
  // into ProcessAdmitted.
  ProcessOutcome ProcessRequestTraced(mod::UserId user,
                                      const geo::STPoint& exact,
                                      mod::ServiceId service,
                                      const std::string& data);
  // The pipeline body; `telemetry` collects per-stage timings when
  // observability is attached.
  ProcessOutcome ProcessRequestImpl(mod::UserId user,
                                    const geo::STPoint& exact,
                                    mod::ServiceId service,
                                    const std::string& data,
                                    RequestTelemetry* telemetry);
  // Folds one finished request into counters/histograms and the event log.
  void RecordRequest(const ProcessOutcome& outcome,
                     const RequestTelemetry& telemetry, mod::UserId user,
                     mod::ServiceId service, double total_seconds);
  // The anchor count a prewarm probe for this request would query with,
  // or nullopt when serving it cannot reach anchor selection (no LBQID
  // element matches, or the trace is already anchored).
  std::optional<size_t> PrewarmProbeK(mod::UserId user,
                                      const geo::STPoint& exact,
                                      mod::ServiceId service);
  // Per-request policy: the rule set when present, else the flat policy.
  const PrivacyPolicy& ResolvePolicy(const UserState& state,
                                     mod::ServiceId service,
                                     geo::Instant t) const;
  const anon::ToleranceConstraints& ToleranceOf(mod::ServiceId service) const;
  // Keeps the `target` anchors whose PHLs stay closest to `exact`.
  void TrimAnchors(std::vector<mod::UserId>* anchors, size_t target,
                   const geo::STPoint& exact) const;
  // Randomization entry points: sequential stream, or a per-(user,
  // ordinal) derived stream under per_request_randomization.
  geo::STBox RandomizeTranslate(const geo::STBox& box,
                                const geo::STPoint& exact, mod::UserId user,
                                uint64_t ordinal);
  geo::STBox RandomizeExpand(const geo::STBox& box,
                             const anon::ToleranceConstraints& tolerance,
                             mod::UserId user, uint64_t ordinal);
  void Forward(ProcessOutcome* outcome, mod::UserId user,
               const geo::STPoint& exact, mod::ServiceId service,
               const std::string& data, const geo::STBox& context);

  // Write-ahead admission hooks, defined in durability.cc next to the
  // record codec.  Each builds the journal record for one entry point and
  // funnels it through AdmitEvent; a non-OK return means the entry point
  // must suppress the mutation with zero state effect (fail-closed).
  common::Status JournalRegisterService(const anon::ServiceProfile& service);
  common::Status JournalRegisterUser(mod::UserId user,
                                     const PrivacyPolicy& policy);
  common::Status JournalRegisterLbqid(mod::UserId user,
                                      const lbqid::Lbqid& lbqid);
  common::Status JournalSetUserRules(mod::UserId user,
                                     const PolicyRuleSet& rules);
  common::Status JournalUpdate(mod::UserId user, const geo::STPoint& sample);
  common::Status JournalRequest(mod::UserId user, const geo::STPoint& exact,
                                mod::ServiceId service,
                                const std::string& data);
  common::Status JournalBatch(const std::vector<BatchRequest>& requests);
  /// Breaker admission + write-ahead append of one event.  Counts sheds
  /// and journal failures; drives the breaker state machine.
  common::Status AdmitEvent(const JournalEvent& event);
  void CountShed(bool is_request);

  // -- Tiered-storage internals (DESIGN.md §16).

  /// Seal protocol driver, called after every ingested location point
  /// with the point's event time.  At most one attempt per
  /// seal_period_seconds; the schedule advances on ATTEMPT (a pure
  /// function of the admitted stream), segment numbering advances on
  /// SUCCESS — so a re-run over the same admitted events re-writes the
  /// same segments byte-for-byte regardless of earlier I/O faults.
  void MaybeSeal(geo::Instant t);
  /// Pre-journal admission check for location points: Unavailable when
  /// the hot tier is at max_hot_samples (the event is never journaled,
  /// so replay is consistent).
  common::Status AdmitHotCapacity();
  /// Applies the max_outcomes retention bound (amortized O(1): trims
  /// half the excess window at once).
  void TrimOutcomes();

  TrustedServerOptions options_;
  mod::MovingObjectDb db_;
  stindex::GridIndex index_;
  /// What the anonymity layers read: the external views when configured,
  /// else &db_ / &index_.
  const mod::ObjectStore* read_store_;
  const stindex::SpatioTemporalIndex* read_index_;
  std::unique_ptr<anon::Generalizer> generalizer_;
  anon::HkaEvaluator hka_;
  anon::PseudonymManager pseudonyms_;
  anon::ContextRandomizer randomizer_;
  lbqid::LbqidMonitor monitor_;
  std::map<mod::ServiceId, anon::ServiceProfile> services_;
  std::map<mod::UserId, UserState> users_;
  ServiceProvider* provider_ = nullptr;
  TsJournal* journal_ = nullptr;
  mod::MessageId next_msgid_ = 1;
  ObsHandles obs_;
  // Causal-tracing state.  next_trace_id_ is deliberately NOT part of
  // Checkpoint() (like the breaker counters) so snapshot blobs stay
  // byte-identical with tracing on or off; recovery restores it from the
  // journaled annotation record instead.
  uint64_t next_trace_id_ = 1;
  obs::TraceContext pending_ctx_;
  bool has_pending_ctx_ = false;
  // The admitted request's causal coordinates, handed from the admission
  // code to ProcessAdmitted (which opens the request root span under it).
  obs::TraceContext request_ctx_;
  bool has_request_ctx_ = false;
  // Journal-append timing scratch for the retroactive admission spans
  // (filled by AdmitEvent only when tracing is attached).
  int64_t admit_journal_start_ns_ = 0;
  int64_t admit_journal_dur_ns_ = 0;
  bool admit_journal_ran_ = false;
  const char* admit_shed_reason_ = "journal_error";
  // Size of the last Checkpoint() blob (resource accounting).
  mutable uint64_t last_checkpoint_bytes_ = 0;
  // Degraded-mode state.  Deliberately NOT part of Checkpoint(): a
  // recovered (or twin) server starts HEALTHY with zero shed counts, so
  // snapshot blobs stay byte-comparable across fault histories.
  CircuitBreaker breaker_;
  uint64_t shed_events_ = 0;
  uint64_t shed_requests_ = 0;
  uint64_t journal_failures_ = 0;
  uint64_t deadline_overruns_ = 0;
  uint64_t admitted_events_ = 0;
  TsStats stats_;
  std::vector<ProcessOutcome> outcomes_;
  anon::ToleranceConstraints default_tolerance_;
  // Tiered-storage state (all inert when cold_ is null).  The seal
  // schedule and segment counter ARE part of Checkpoint() — recovery must
  // resume sealing exactly where the snapshot left off for re-seals to be
  // byte-identical.  The breaker and shed counters are NOT (same policy
  // as the journal breaker above).  Declared after db_/index_ so the
  // view and archive are destroyed before the storage they reference.
  std::unique_ptr<mod::ColdTier> cold_;
  std::unique_ptr<stindex::TieredIndexView> tiered_;
  CircuitBreaker seal_breaker_;
  bool seal_initialized_ = false;
  geo::Instant next_seal_at_ = 0;
  uint64_t next_segment_seq_ = 0;
  uint64_t seals_ = 0;
  uint64_t seal_failures_ = 0;
  uint64_t cold_fault_sheds_ = 0;
  uint64_t hot_cap_sheds_ = 0;
};

}  // namespace ts
}  // namespace histkanon

#endif  // HISTKANON_SRC_TS_TRUSTED_SERVER_H_
