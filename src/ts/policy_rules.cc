#include "src/ts/policy_rules.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/common/str.h"
#include "src/tgran/calendar.h"

namespace histkanon {
namespace ts {

namespace {

// Parses "HH:MM" into seconds of day; nullopt on malformed input.
std::optional<int64_t> ParseHhMm(const std::string& text) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos) return std::nullopt;
  // The substrings must outlive `end`, which points into their buffers.
  const std::string hours_text = text.substr(0, colon);
  const std::string minutes_text = text.substr(colon + 1);
  char* end = nullptr;
  const long hours = std::strtol(hours_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  end = nullptr;
  const long minutes = std::strtol(minutes_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  if (hours < 0 || hours >= 24 || minutes < 0 || minutes >= 60) {
    return std::nullopt;
  }
  return hours * 3600 + minutes * 60;
}

common::Result<PrivacyPolicy> ParseConcern(const std::string& value) {
  if (value == "off") return PrivacyPolicy::FromConcern(PrivacyConcern::kOff);
  if (value == "low") return PrivacyPolicy::FromConcern(PrivacyConcern::kLow);
  if (value == "medium") {
    return PrivacyPolicy::FromConcern(PrivacyConcern::kMedium);
  }
  if (value == "high") {
    return PrivacyPolicy::FromConcern(PrivacyConcern::kHigh);
  }
  return common::Status::InvalidArgument("unknown concern '" + value + "'");
}

}  // namespace

bool PolicyRule::Matches(mod::ServiceId request_service,
                         geo::Instant t) const {
  if (service.has_value() && *service != request_service) return false;
  if (window.has_value() && !window->Contains(t)) return false;
  if (weekdays_only.has_value()) {
    const bool weekday = tgran::DayOfWeek(t) < 5;
    if (weekday != *weekdays_only) return false;
  }
  return true;
}

common::Result<PolicyRuleSet> PolicyRuleSet::Parse(const std::string& text) {
  PolicyRuleSet rule_set(PrivacyPolicy::FromConcern(PrivacyConcern::kMedium));
  bool saw_default = false;

  std::istringstream lines(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    // Strip comments and whitespace; ';' separates clauses like spaces do.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::replace(line.begin(), line.end(), ';', ' ');
    std::istringstream clauses(line);
    std::string clause;
    PolicyRule rule;
    bool is_default = false;
    bool any_clause = false;
    bool ok = true;
    std::string error;
    while (clauses >> clause) {
      any_clause = true;
      const size_t eq = clause.find('=');
      const std::string key =
          eq == std::string::npos ? clause : clause.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : clause.substr(eq + 1);
      if (key == "default") {
        is_default = true;
      } else if (key == "weekday") {
        rule.weekdays_only = true;
      } else if (key == "weekend") {
        rule.weekdays_only = false;
      } else if (key == "service") {
        rule.service = static_cast<mod::ServiceId>(std::atoi(value.c_str()));
      } else if (key == "time") {
        // "[HH:MM,HH:MM]"
        if (value.size() < 2 || value.front() != '[' || value.back() != ']') {
          ok = false;
          error = "time window must look like [HH:MM,HH:MM]";
          break;
        }
        const std::string inner = value.substr(1, value.size() - 2);
        const size_t comma = inner.find(',');
        if (comma == std::string::npos) {
          ok = false;
          error = "time window needs a comma";
          break;
        }
        const auto begin = ParseHhMm(inner.substr(0, comma));
        const auto end = ParseHhMm(inner.substr(comma + 1));
        if (!begin.has_value() || !end.has_value()) {
          ok = false;
          error = "malformed HH:MM in time window";
          break;
        }
        auto window = tgran::UTimeInterval::Create(*begin, *end);
        if (!window.ok()) {
          ok = false;
          error = window.status().message();
          break;
        }
        rule.window = *window;
      } else if (key == "concern") {
        auto policy = ParseConcern(value);
        if (!policy.ok()) {
          ok = false;
          error = policy.status().message();
          break;
        }
        rule.policy = *policy;
      } else if (key == "k") {
        const int k = std::atoi(value.c_str());
        if (k <= 0) {
          ok = false;
          error = "k must be positive";
          break;
        }
        rule.policy.k = static_cast<size_t>(k);
      } else if (key == "theta") {
        rule.policy.theta = std::atof(value.c_str());
        if (rule.policy.theta < 0.0 || rule.policy.theta > 1.0) {
          ok = false;
          error = "theta must be in [0,1]";
          break;
        }
      } else if (key == "kprime") {
        // "<factor>/<decrement>"
        const size_t slash = value.find('/');
        if (slash == std::string::npos) {
          ok = false;
          error = "kprime must look like <factor>/<decrement>";
          break;
        }
        rule.policy.k_schedule.initial_factor =
            std::atof(value.substr(0, slash).c_str());
        rule.policy.k_schedule.decrement_per_step = static_cast<size_t>(
            std::atoi(value.substr(slash + 1).c_str()));
      } else if (key == "scale") {
        rule.policy.default_context_scale = std::atof(value.c_str());
        if (rule.policy.default_context_scale < 1.0) {
          ok = false;
          error = "scale must be >= 1";
          break;
        }
      } else {
        ok = false;
        error = "unknown clause '" + clause + "'";
        break;
      }
    }
    if (!ok) {
      return common::Status::InvalidArgument(common::Format(
          "rule line %zu: %s", line_number, error.c_str()));
    }
    if (!any_clause) continue;  // Blank / comment-only line.
    if (is_default) {
      if (saw_default) {
        return common::Status::InvalidArgument(common::Format(
            "rule line %zu: multiple default rules", line_number));
      }
      if (rule.service.has_value() || rule.window.has_value() ||
          rule.weekdays_only.has_value()) {
        return common::Status::InvalidArgument(common::Format(
            "rule line %zu: the default rule cannot have guards",
            line_number));
      }
      saw_default = true;
      rule_set.fallback_ = rule.policy;
      continue;
    }
    rule_set.rules_.push_back(std::move(rule));
  }
  return rule_set;
}

const PrivacyPolicy& PolicyRuleSet::PolicyFor(mod::ServiceId service,
                                              geo::Instant t) const {
  for (const PolicyRule& rule : rules_) {
    if (rule.Matches(service, t)) return rule.policy;
  }
  return fallback_;
}

}  // namespace ts
}  // namespace histkanon
