#include "src/ts/trusted_server.h"

#include <algorithm>

#include "src/common/str.h"

namespace histkanon {
namespace ts {

namespace {

// Context-size histogram bounds: generalized areas span city blocks to
// whole cities (m^2), windows span minutes to a week (s).
const std::vector<double>& AreaBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
  return *bounds;
}

const std::vector<double>& WindowBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      60, 300, 900, 3600, 4.0 * 3600, 24.0 * 3600, 7.0 * 24 * 3600};
  return *bounds;
}

// Propagates the TS registry into the index options (the index is
// constructed in the member-initializer list, before the body can run).
stindex::GridIndexOptions IndexOptions(const TrustedServerOptions& options) {
  stindex::GridIndexOptions index = options.index;
  index.registry = options.registry;
  return index;
}

// RAII per-stage instrumentation: opens a trace span (plus a causal child
// span when the request carries a trace context) and accumulates the
// stage's wall time into the request telemetry.  Does nothing — not even
// a clock read — when telemetry is disabled and no causal tracer rides
// along.
class StageScope {
 public:
  StageScope(RequestTelemetry* telemetry, Stage stage, obs::Tracer* tracer)
      : telemetry_(telemetry), stage_(static_cast<size_t>(stage)) {
    if (telemetry_->causal != nullptr) {
      causal_ = telemetry_->causal->StartSpan(
          telemetry_->ctx, std::string(StageToString(stage)),
          *telemetry_->track);
    }
    if (!telemetry_->enabled) return;
    span_ = obs::StartSpan(tracer, std::string(StageToString(stage)));
    start_ns_ = obs::MonotonicNanos();
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  ~StageScope() {
    causal_.End();
    if (!telemetry_->enabled) return;
    span_.End();
    telemetry_->ran[stage_] = true;
    telemetry_->seconds[stage_] +=
        static_cast<double>(obs::MonotonicNanos() - start_ns_) * 1e-9;
  }

 private:
  RequestTelemetry* telemetry_;
  size_t stage_;
  obs::Span span_;
  obs::CausalSpan causal_;
  int64_t start_ns_ = 0;
};

}  // namespace

std::string_view DispositionToString(Disposition disposition) {
  switch (disposition) {
    case Disposition::kForwardedDefault:
      return "forwarded-default";
    case Disposition::kForwardedGeneralized:
      return "forwarded-generalized";
    case Disposition::kSuppressedMixZone:
      return "suppressed-mixzone";
    case Disposition::kUnlinked:
      return "unlinked";
    case Disposition::kAtRisk:
      return "at-risk";
    case Disposition::kRejected:
      return "rejected";
  }
  return "unknown";
}

std::string_view StageToString(Stage stage) {
  switch (stage) {
    case Stage::kLbqidMatch:
      return "lbqid_match";
    case Stage::kGeneralize:
      return "generalize";
    case Stage::kHkaEval:
      return "hka_eval";
    case Stage::kRandomize:
      return "randomize";
    case Stage::kUnlink:
      return "unlink";
    case Stage::kForward:
      return "forward";
  }
  return "unknown";
}

TrustedServer::TrustedServer(TrustedServerOptions options)
    : options_(options),
      index_(IndexOptions(options)),
      read_store_(options.read_store != nullptr ? options.read_store : &db_),
      read_index_(options.read_index != nullptr ? options.read_index
                                                : &index_),
      hka_(read_store_),
      pseudonyms_(options.pseudonym_seed),
      randomizer_(options.randomizer_seed, options.randomizer),
      breaker_(options.overload.breaker),
      seal_breaker_(options.retention.seal_breaker) {
  options_.generalizer.registry = options_.registry;
  // Tiered PHL storage (DESIGN.md §16), classic single-node wiring only:
  // with external read views the fan-out owner controls what the anonymity
  // layers see, and this server must not splice its own cold tier into
  // that view.  The tiered view wraps the server's own index + archive
  // and becomes the read index BEFORE the generalizer captures it.
  if (options_.retention.enabled && options.read_store == nullptr &&
      options.read_index == nullptr) {
    mod::ColdTierOptions cold_options;
    cold_options.dir = options_.retention.cold_dir;
    cold_options.max_resident_segments =
        options_.retention.max_resident_segments;
    cold_ = std::make_unique<mod::ColdTier>(std::move(cold_options));
    db_.AttachArchive(cold_.get());
    tiered_ = std::make_unique<stindex::TieredIndexView>(&index_, cold_.get(),
                                                         &db_);
    read_index_ = tiered_.get();
  }
  generalizer_ = std::make_unique<anon::Generalizer>(read_store_, read_index_,
                                                     options_.generalizer);
  monitor_.AttachRegistry(options_.registry);
  next_trace_id_ = options_.trace_id_seed == 0 ? 1 : options_.trace_id_seed;
  if (options_.slo != nullptr) {
    breaker_.AttachSloView(options_.slo, options_.trace_track);
  }
  obs_.enabled = options_.registry != nullptr || options_.tracer != nullptr ||
                 options_.event_sink != nullptr;
  if (options_.registry != nullptr) {
    obs::Registry& registry = *options_.registry;
    obs_.requests = registry.GetCounter("ts_requests_total");
    for (size_t d = 0; d < kDispositionCount; ++d) {
      std::string name = common::Format(
          "ts_disposition_%s_total",
          std::string(DispositionToString(static_cast<Disposition>(d)))
              .c_str());
      std::replace(name.begin(), name.end(), '-', '_');
      obs_.disposition[d] = registry.GetCounter(name);
    }
    obs_.lbqid_completions =
        registry.GetCounter("ts_lbqid_completed_requests_total");
    obs_.unlink_attempts = registry.GetCounter("ts_unlink_attempts_total");
    obs_.unlink_successes = registry.GetCounter("ts_unlink_successes_total");
    obs_.shed_requests = registry.GetCounter("ts_shed_requests_total");
    obs_.shed_events = registry.GetCounter("ts_shed_events_total");
    obs_.journal_failures =
        registry.GetCounter("ts_journal_failures_total");
    obs_.deadline_overruns =
        registry.GetCounter("ts_deadline_overruns_total");
    breaker_.AttachRegistry(&registry, "ts");
    for (size_t i = 0; i < kStageCount; ++i) {
      obs_.stage[i] = registry.GetHistogram(common::Format(
          "ts_stage_%s_seconds",
          std::string(StageToString(static_cast<Stage>(i))).c_str()));
    }
    obs_.batches = registry.GetCounter("ts_batches_total");
    obs_.batch_requests = registry.GetCounter("ts_batch_requests_total");
    obs_.batch_size = registry.GetHistogram(
        "ts_batch_size",
        std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    obs_.request_seconds = registry.GetHistogram("ts_request_seconds");
    obs_.generalized_area =
        registry.GetHistogram("ts_generalized_area_m2", AreaBounds());
    obs_.generalized_window =
        registry.GetHistogram("ts_generalized_window_seconds",
                              WindowBounds());
  }
}

common::Status TrustedServer::RegisterService(
    const anon::ServiceProfile& service) {
  // Write-ahead: journal before applying; an event that cannot be
  // journaled is suppressed fail-closed (the non-OK return).  Calls that
  // journal but fail VALIDATION below are journaled — the pipeline is
  // deterministic, so replay fails them identically.
  HISTKANON_RETURN_NOT_OK(JournalRegisterService(service));
  if (services_.count(service.id) > 0) {
    return common::Status::AlreadyExists(
        common::Format("service %d already registered", service.id));
  }
  services_.emplace(service.id, service);
  return common::Status::OK();
}

common::Status TrustedServer::RegisterUser(mod::UserId user,
                                           PrivacyPolicy policy) {
  HISTKANON_RETURN_NOT_OK(JournalRegisterUser(user, policy));
  if (users_.count(user) > 0) {
    return common::Status::AlreadyExists(common::Format(
        "user %lld already registered", static_cast<long long>(user)));
  }
  UserState state;
  state.policy = policy;
  users_.emplace(user, std::move(state));
  return common::Status::OK();
}

common::Result<size_t> TrustedServer::RegisterLbqid(mod::UserId user,
                                                    lbqid::Lbqid lbqid) {
  HISTKANON_RETURN_NOT_OK(JournalRegisterLbqid(user, lbqid));
  if (users_.count(user) == 0) {
    return common::Status::NotFound(common::Format(
        "user %lld is not registered", static_cast<long long>(user)));
  }
  return monitor_.Register(user, std::move(lbqid));
}

common::Status TrustedServer::SetUserRules(mod::UserId user,
                                           PolicyRuleSet rules) {
  HISTKANON_RETURN_NOT_OK(JournalSetUserRules(user, rules));
  const auto it = users_.find(user);
  if (it == users_.end()) {
    return common::Status::NotFound(common::Format(
        "user %lld is not registered", static_cast<long long>(user)));
  }
  it->second.policy = rules.fallback();
  it->second.rules = std::move(rules);
  return common::Status::OK();
}

TrustedServer::UserState& TrustedServer::StateOf(mod::UserId user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    UserState state;
    state.policy = PrivacyPolicy::FromConcern(PrivacyConcern::kMedium);
    it = users_.emplace(user, std::move(state)).first;
  }
  return it->second;
}

const PrivacyPolicy& TrustedServer::ResolvePolicy(const UserState& state,
                                                  mod::ServiceId service,
                                                  geo::Instant t) const {
  if (state.rules.has_value()) return state.rules->PolicyFor(service, t);
  return state.policy;
}

const anon::ToleranceConstraints& TrustedServer::ToleranceOf(
    mod::ServiceId service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? default_tolerance_ : it->second.tolerance;
}

void TrustedServer::OnLocationUpdate(mod::UserId user,
                                     const geo::STPoint& sample) {
  // The EventSink interface has no error channel; a fail-closed
  // suppression is indistinguishable from a dropped sample here.  Callers
  // that need the distinction use ApplyLocationUpdate directly.
  (void)ApplyLocationUpdate(user, sample);
}

common::Status TrustedServer::ApplyLocationUpdate(mod::UserId user,
                                                  const geo::STPoint& sample) {
  HISTKANON_RETURN_NOT_OK(AdmitHotCapacity());
  HISTKANON_RETURN_NOT_OK(JournalUpdate(user, sample));
  // Out-of-order updates (same tick as an earlier sample) are dropped.
  if (db_.Append(user, sample).ok()) {
    index_.Insert(user, sample);
    MaybeSeal(sample.t);
  }
  return common::Status::OK();
}

common::Status TrustedServer::AdmitHotCapacity() {
  if (cold_ == nullptr || options_.retention.max_hot_samples == 0 ||
      db_.hot_samples() < options_.retention.max_hot_samples) {
    return common::Status::OK();
  }
  // Shed BEFORE journaling: the update is never admitted, so replay —
  // which sees only admitted events — is oblivious to the ceiling.
  ++hot_cap_sheds_;
  CountShed(/*is_request=*/false);
  return common::Status::Unavailable("hot tier at max_hot_samples ceiling");
}

void TrustedServer::MaybeSeal(geo::Instant t) {
  if (cold_ == nullptr) return;
  const RetentionOptions& retention = options_.retention;
  if (!seal_initialized_) {
    // The first ingested point pins the schedule's phase; everything the
    // schedule depends on from here is the admitted event stream.
    seal_initialized_ = true;
    next_seal_at_ =
        t + retention.hot_window_seconds + retention.seal_period_seconds;
    return;
  }
  if (t < next_seal_at_) return;
  // The schedule advances on ATTEMPT, success or not — so when a crashed
  // server is replayed, seals are re-attempted at exactly the same points
  // of the event stream, and segment seq (advanced on SUCCESS) assigns
  // the same numbers to the same contents (WriteSegment's tmp+rename is
  // an idempotent overwrite).
  next_seal_at_ = t + retention.seal_period_seconds;
  std::vector<std::pair<mod::UserId, std::vector<geo::STPoint>>> sealable;
  const size_t collected =
      db_.PeekSealable(t - retention.hot_window_seconds,
                       retention.min_hot_samples_per_user, &sealable);
  if (collected < retention.min_seal_samples || sealable.empty()) return;
  if (!seal_breaker_.Admit()) return;  // degraded: stay hot, skip the disk
  const common::Status sealed =
      cold_->WriteSegment(next_segment_seq_, sealable);
  if (!sealed.ok()) {
    // Fail-closed: nothing was evicted, answers are unchanged; memory
    // degrades toward unbounded rather than losing samples.
    ++seal_failures_;
    seal_breaker_.RecordFailure();
    return;
  }
  seal_breaker_.RecordSuccess();
  ++seals_;
  ++next_segment_seq_;
  // The segment is durable; only now do the samples leave the hot tier
  // (the "never half-evicted" contract — a crash between these lines
  // re-seals the same prefix on replay and overwrites the same file).
  for (const auto& [user, samples] : sealable) {
    for (const geo::STPoint& sample : samples) {
      index_.Remove(user, sample);
    }
  }
  db_.DropSealed(sealable);
}

void TrustedServer::TrimOutcomes() {
  const size_t max = options_.retention.max_outcomes;
  if (max == 0 || outcomes_.size() <= max * 2) return;
  // Amortized O(1): let the log grow to twice the bound, then drop the
  // oldest half in one move.
  outcomes_.erase(outcomes_.begin(),
                  outcomes_.begin() +
                      static_cast<std::ptrdiff_t>(outcomes_.size() - max));
}

void TrustedServer::OnServiceRequest(mod::UserId user,
                                     const geo::STPoint& exact,
                                     const sim::RequestIntent& intent) {
  ProcessRequest(user, exact, intent.service, intent.data);
}

void TrustedServer::TrimAnchors(std::vector<mod::UserId>* anchors,
                                size_t target,
                                const geo::STPoint& exact) const {
  if (anchors->size() <= target) return;
  std::vector<std::pair<double, mod::UserId>> scored;
  scored.reserve(anchors->size());
  for (const mod::UserId anchor : *anchors) {
    const common::Result<const mod::Phl*> phl = read_store_->GetPhl(anchor);
    double distance = std::numeric_limits<double>::infinity();
    if (phl.ok()) {
      // Through the generalizer's per-anchor memo: Algorithm 1's anchored
      // step right after asks for the same (anchor, exact) samples.
      const std::optional<geo::STPoint> nearest =
          generalizer_->CachedNearestSample(anchor, **phl, exact);
      if (nearest.has_value()) {
        distance = options_.generalizer.metric.Distance(*nearest, exact);
      }
    }
    scored.emplace_back(distance, anchor);
  }
  std::sort(scored.begin(), scored.end());
  anchors->clear();
  for (size_t i = 0; i < target; ++i) anchors->push_back(scored[i].second);
}

geo::STBox TrustedServer::RandomizeTranslate(const geo::STBox& box,
                                             const geo::STPoint& exact,
                                             mod::UserId user,
                                             uint64_t ordinal) {
  if (!options_.per_request_randomization) {
    return randomizer_.TranslateWithin(box, exact);
  }
  common::Rng rng(common::MixSeed(options_.randomizer_seed,
                                  static_cast<uint64_t>(user), ordinal));
  return anon::TranslateWithin(&rng, box, exact);
}

geo::STBox TrustedServer::RandomizeExpand(
    const geo::STBox& box, const anon::ToleranceConstraints& tolerance,
    mod::UserId user, uint64_t ordinal) {
  if (!options_.per_request_randomization) {
    return randomizer_.ExpandWithin(box, tolerance);
  }
  common::Rng rng(common::MixSeed(options_.randomizer_seed,
                                  static_cast<uint64_t>(user), ordinal));
  return anon::ExpandWithin(&rng, box, tolerance, options_.randomizer);
}

void TrustedServer::Forward(ProcessOutcome* outcome, mod::UserId user,
                            const geo::STPoint& exact, mod::ServiceId service,
                            const std::string& data,
                            const geo::STBox& context) {
  (void)exact;
  anon::ForwardedRequest request;
  request.msgid = next_msgid_++;
  request.pseudonym = pseudonyms_.Current(user);
  request.context = context;
  request.service = service;
  request.data = data;
  if (provider_ != nullptr) provider_->Handle(request);
  outcome->forwarded = true;
  outcome->forwarded_request = std::move(request);
}

void TrustedServer::CountShed(bool is_request) {
  ++shed_events_;
  if (obs_.shed_events != nullptr) obs_.shed_events->Increment();
  if (is_request) {
    ++shed_requests_;
    if (obs_.shed_requests != nullptr) obs_.shed_requests->Increment();
    if (options_.slo != nullptr) options_.slo->ObserveShed();
  }
}

ProcessOutcome TrustedServer::RecordShedRequest(const geo::STPoint& exact) {
  CountShed(/*is_request=*/true);
  ProcessOutcome outcome;
  outcome.disposition = Disposition::kRejected;
  outcome.exact = exact;
  outcomes_.push_back(outcome);
  TrimOutcomes();
  return outcome;
}

ProcessOutcome TrustedServer::ProcessRequest(mod::UserId user,
                                             const geo::STPoint& exact,
                                             mod::ServiceId service,
                                             const std::string& data) {
  if (options_.causal != nullptr) {
    return ProcessRequestTraced(user, exact, service, data);
  }
  if (!JournalRequest(user, exact, service, data).ok()) {
    // Fail-closed: the request was NOT journaled (degraded mode, or the
    // append itself failed), so it must not be applied — returning before
    // ANY state is touched (no stats, no PHL append, no pseudonym, no RNG
    // draw, no outcomes_ entry) is what makes suppression invisible to
    // replay and to linkability analysis.
    ProcessOutcome outcome;
    outcome.disposition = Disposition::kRejected;
    outcome.exact = exact;
    return outcome;
  }
  return ProcessAdmitted(user, exact, service, data);
}

// ProcessRequest with causal tracing attached.  Behavior is identical to
// the untraced path; the only extra state effect is the trace-id counter,
// which advances ONLY on successful admission so that journal replay
// (admitted events only) re-derives the same ids.
ProcessOutcome TrustedServer::ProcessRequestTraced(mod::UserId user,
                                                   const geo::STPoint& exact,
                                                   mod::ServiceId service,
                                                   const std::string& data) {
  obs::CausalTracer& causal = *options_.causal;
  const std::string user_attr =
      common::Format("%lld", static_cast<long long>(user));

  if (has_pending_ctx_) {
    // Sharded serve: admission (and the trace id) happened at the
    // front-end; this request rides its context instead of allocating.
    const obs::TraceContext ctx = pending_ctx_;
    has_pending_ctx_ = false;
    if (!JournalRequest(user, exact, service, data).ok()) {
      causal.RecordSpan(ctx, "shed", options_.trace_track,
                        obs::MonotonicNanos(), 0,
                        {{"shed_reason", admit_shed_reason_},
                         {"user", user_attr}});
      ProcessOutcome outcome;
      outcome.disposition = Disposition::kRejected;
      outcome.exact = exact;
      return outcome;
    }
    request_ctx_ = ctx;
    has_request_ctx_ = true;
    return ProcessAdmitted(user, exact, service, data);
  }

  // Serial admission: the span is retroactive because its trace id only
  // exists if admission succeeds (a shed request must not consume an id,
  // or replay would desynchronize).  Shed spans go to trace 0.
  admit_journal_ran_ = false;
  admit_shed_reason_ = "journal_error";
  const int64_t adm_start = obs::MonotonicNanos();
  const bool admitted = JournalRequest(user, exact, service, data).ok();
  const int64_t adm_dur = obs::MonotonicNanos() - adm_start;
  if (!admitted) {
    causal.RecordSpan(obs::TraceContext{}, "admission", options_.trace_track,
                      adm_start, adm_dur,
                      {{"shed_reason", admit_shed_reason_},
                       {"user", user_attr}});
    ProcessOutcome outcome;
    outcome.disposition = Disposition::kRejected;
    outcome.exact = exact;
    return outcome;
  }
  const uint64_t tid = next_trace_id_++;
  const uint64_t adm_span =
      causal.RecordSpan(obs::TraceContext{tid, 0}, "admission",
                        options_.trace_track, adm_start, adm_dur,
                        {{"user", user_attr}});
  if (admit_journal_ran_) {
    causal.RecordSpan(obs::TraceContext{tid, adm_span}, "journal_append",
                      options_.trace_track, admit_journal_start_ns_,
                      admit_journal_dur_ns_, {});
  }
  request_ctx_ = obs::TraceContext{tid, adm_span};
  has_request_ctx_ = true;
  return ProcessAdmitted(user, exact, service, data);
}

ProcessOutcome TrustedServer::ProcessAdmitted(mod::UserId user,
                                              const geo::STPoint& exact,
                                              mod::ServiceId service,
                                              const std::string& data) {
  const double deadline = options_.overload.request_deadline_seconds;
  RequestTelemetry telemetry;
  telemetry.enabled = obs_.enabled;
  const bool traced = options_.causal != nullptr && has_request_ctx_;
  obs::TraceContext request_parent;
  if (traced) {
    request_parent = request_ctx_;
    has_request_ctx_ = false;
  }
  if (!telemetry.enabled && !traced && options_.slo == nullptr &&
      deadline <= 0.0) {
    // Null-object fast path: no clock reads, no allocations beyond the
    // pipeline's own.
    const ProcessOutcome outcome =
        ProcessRequestImpl(user, exact, service, data, &telemetry);
    TrimOutcomes();
    return outcome;
  }
  obs::Span root = obs::StartSpan(
      telemetry.enabled ? options_.tracer : nullptr, "process_request");
  obs::CausalSpan causal_root;
  if (traced) {
    causal_root = options_.causal->StartSpan(request_parent, "request",
                                             options_.trace_track);
    telemetry.causal = options_.causal;
    telemetry.ctx = causal_root.context();
    telemetry.track = &options_.trace_track;
  }
  const int64_t start_ns = obs::MonotonicNanos();
  const ProcessOutcome outcome =
      ProcessRequestImpl(user, exact, service, data, &telemetry);
  TrimOutcomes();
  const double total_seconds =
      static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-9;
  if (deadline > 0.0 && total_seconds > deadline) {
    // The deadline budget is an SLO signal, not a mid-pipeline abort: the
    // completed outcome stands (aborting after state changes would leak
    // partial state), the overrun is counted.
    ++deadline_overruns_;
    if (obs_.deadline_overruns != nullptr) obs_.deadline_overruns->Increment();
  }
  if (options_.slo != nullptr) options_.slo->ObserveLatency(total_seconds);
  if (causal_root.active()) {
    causal_root.AddAttribute(
        "user", common::Format("%lld", static_cast<long long>(user)));
    causal_root.AddAttribute(
        "disposition", std::string(DispositionToString(outcome.disposition)));
    causal_root.End();
  }
  if (!telemetry.enabled) return outcome;
  if (root.active()) {
    root.AddAttribute("user",
                      common::Format("%lld", static_cast<long long>(user)));
    root.AddAttribute("disposition",
                      std::string(DispositionToString(outcome.disposition)));
  }
  root.End();
  RecordRequest(outcome, telemetry, user, service, total_seconds);
  return outcome;
}

std::optional<size_t> TrustedServer::PrewarmProbeK(mod::UserId user,
                                                   const geo::STPoint& exact,
                                                   mod::ServiceId service) {
  // A shared nearest-users entry only pays off when serving this request
  // can reach Algorithm 1's line-5 anchor selection: some LBQID element
  // must match the exact context (Definition 2 — otherwise the monitor
  // yields no observation) on a trace that has no anchors yet (otherwise
  // the serve path reuses the anchored set and never queries the index).
  const UserState& state = StateOf(user);
  bool selects_anchors = false;
  const std::vector<const lbqid::Lbqid*> lbqids = monitor_.LbqidsOf(user);
  for (size_t j = 0; j < lbqids.size() && !selects_anchors; ++j) {
    const auto trace = state.traces.find(j);
    if (trace != state.traces.end() && !trace->second.anchors.empty()) {
      continue;
    }
    for (size_t e = 0; e < lbqids[j]->size(); ++e) {
      if (lbqids[j]->ElementMatches(e, exact)) {
        selects_anchors = true;
        break;
      }
    }
  }
  if (!selects_anchors) return std::nullopt;
  const PrivacyPolicy& policy = ResolvePolicy(state, service, exact.t);
  return policy.k_schedule.InitialAnchors(policy.k);
}

void TrustedServer::PrewarmRequest(mod::UserId user, const geo::STPoint& exact,
                                   mod::ServiceId service) {
  const std::optional<size_t> k = PrewarmProbeK(user, exact, service);
  if (k.has_value()) generalizer_->PrewarmNearestUsers(exact, *k);
}

std::vector<ProcessOutcome> TrustedServer::ProcessBatch(
    const std::vector<BatchRequest>& requests) {
  std::vector<ProcessOutcome> outcomes;
  outcomes.reserve(requests.size());
  if (requests.empty()) return outcomes;
  obs::CausalTracer* causal = options_.causal;
  const std::string size_attr = common::Format("%zu", requests.size());
  int64_t adm_start = 0;
  if (causal != nullptr) {
    admit_journal_ran_ = false;
    admit_shed_reason_ = "journal_error";
    adm_start = obs::MonotonicNanos();
  }
  if (!JournalBatch(requests).ok()) {
    // Fail-closed, like ProcessRequest: the window was not journaled, so
    // none of it may be applied — and no outcomes_ entries, so replay and
    // the outcome log agree.
    if (causal != nullptr) {
      causal->RecordSpan(obs::TraceContext{}, "batch_admission",
                         options_.trace_track, adm_start,
                         obs::MonotonicNanos() - adm_start,
                         {{"shed_reason", admit_shed_reason_},
                          {"batch_size", size_attr}});
    }
    for (const BatchRequest& request : requests) {
      ProcessOutcome outcome;
      outcome.disposition = Disposition::kRejected;
      outcome.exact = request.exact;
      outcomes.push_back(outcome);
    }
    return outcomes;
  }
  // The whole window rides one admission: request i gets trace id
  // base + i (the counter advances by the window size — replay of the
  // composite batch event does the same), all parented to one
  // batch_window span.
  uint64_t base_tid = 0;
  obs::CausalSpan batch_root;
  if (causal != nullptr) {
    const int64_t adm_dur = obs::MonotonicNanos() - adm_start;
    base_tid = next_trace_id_;
    next_trace_id_ += requests.size();
    const uint64_t adm_span = causal->RecordSpan(
        obs::TraceContext{base_tid, 0}, "batch_admission",
        options_.trace_track, adm_start, adm_dur,
        {{"batch_size", size_attr}});
    if (admit_journal_ran_) {
      causal->RecordSpan(obs::TraceContext{base_tid, adm_span},
                         "journal_append", options_.trace_track,
                         admit_journal_start_ns_, admit_journal_dur_ns_, {});
    }
    batch_root = causal->StartSpan(obs::TraceContext{base_tid, adm_span},
                                   "batch_window", options_.trace_track);
  }
  if (obs_.batches != nullptr) {
    obs_.batches->Increment();
    obs_.batch_requests->Increment(requests.size());
    obs_.batch_size->Observe(static_cast<double>(requests.size()));
  }
  // Ingest every request point up front: the whole window then answers
  // against one index snapshot.  Points an earlier event already ingested
  // (the PR-2 epoch-normalized replay does this) are no-ops — Append only
  // accepts strictly newer samples.
  for (const BatchRequest& request : requests) {
    if (db_.Append(request.user, request.exact).ok()) {
      index_.Insert(request.user, request.exact);
      MaybeSeal(request.exact.t);
    }
  }
  {
    // Prewarm on the DEDUPED probe set, sorted by grid cell: co-located
    // probes land adjacently (their shell scans touch the same pillar
    // column runs back to back), and each distinct (point, k) pays for
    // exactly one shared index query instead of one memo lookup per
    // request.
    obs::CausalSpan prewarm_span = obs::StartCausalSpan(
        causal, batch_root.context(), "prewarm", options_.trace_track);
    struct Probe {
      uint64_t cell = 0;
      geo::STPoint exact;
      size_t k = 0;
    };
    std::vector<Probe> probes;
    probes.reserve(requests.size());
    for (const BatchRequest& request : requests) {
      const std::optional<size_t> k =
          PrewarmProbeK(request.user, request.exact, request.service);
      if (!k.has_value()) continue;
      probes.push_back(
          Probe{index_.CellIdOf(request.exact), request.exact, *k});
    }
    std::sort(probes.begin(), probes.end(),
              [](const Probe& a, const Probe& b) {
                if (a.cell != b.cell) return a.cell < b.cell;
                if (a.exact.t != b.exact.t) return a.exact.t < b.exact.t;
                if (a.exact.p.x != b.exact.p.x) return a.exact.p.x < b.exact.p.x;
                if (a.exact.p.y != b.exact.p.y) return a.exact.p.y < b.exact.p.y;
                return a.k < b.k;
              });
    for (size_t i = 0; i < probes.size(); ++i) {
      const Probe& probe = probes[i];
      if (i > 0 && probes[i - 1].exact.t == probe.exact.t &&
          probes[i - 1].exact.p.x == probe.exact.p.x &&
          probes[i - 1].exact.p.y == probe.exact.p.y &&
          probes[i - 1].k == probe.k) {
        continue;  // identical probe — the first one already warmed it
      }
      generalizer_->PrewarmNearestUsers(probe.exact, probe.k);
    }
  }
  // Serve in ORIGINAL submission order, so the sequential streams
  // (msgids, pseudonym rotations, sequential-mode RNG draws, per-user
  // ordinals) advance exactly as the per-request path would.
  for (size_t i = 0; i < requests.size(); ++i) {
    const BatchRequest& request = requests[i];
    if (causal != nullptr) {
      request_ctx_ =
          obs::TraceContext{base_tid + i, batch_root.span_id()};
      has_request_ctx_ = true;
    }
    outcomes.push_back(ProcessAdmitted(request.user, request.exact,
                                       request.service, request.data));
  }
  return outcomes;
}

ProcessOutcome TrustedServer::ProcessRequestImpl(mod::UserId user,
                                                 const geo::STPoint& exact,
                                                 mod::ServiceId service,
                                                 const std::string& data,
                                                 RequestTelemetry* telemetry) {
  ProcessOutcome outcome;
  outcome.exact = exact;
  // Cold-tier fault barrier: any read fault between here and the commit
  // points below moves this counter, and the request is shed instead of
  // committed (a fault silently shrinks candidate/anchor sets, which
  // could otherwise forward a context whose anonymity set is too small).
  const uint64_t cold_faults_entry =
      cold_ == nullptr ? 0 : cold_->fault_count();
  ++stats_.requests;
  UserState& state = StateOf(user);
  const uint64_t ordinal = state.requests_seen++;
  const PrivacyPolicy& policy = ResolvePolicy(state, service, exact.t);
  const anon::ToleranceConstraints& tolerance = ToleranceOf(service);

  // The request's exact point is itself a location update (every request
  // has a PHL element, Section 5.3).
  if (db_.Append(user, exact).ok()) index_.Insert(user, exact);

  // Mix-zone quiet period: service disabled (Section 6.3, "temporarily
  // disabling the use of the service for a number of users in the same
  // area for the time sufficient to confuse the SP").
  if (exact.t < state.quiet_until) {
    outcome.disposition = Disposition::kSuppressedMixZone;
    ++stats_.suppressed_mixzone;
    outcomes_.push_back(outcome);
    return outcome;
  }

  // Step 1: LBQID monitoring.  The paper assumes each request matches an
  // element of at most one LBQID; with several, the first match wins.
  // The automata model what the SP observes; save their state so the
  // advance can be rolled back if this request ends up not forwarded.
  std::vector<lbqid::LbqidMatcher::Snapshot> monitor_snapshot;
  std::vector<lbqid::Observation> observations;
  {
    StageScope stage(telemetry, Stage::kLbqidMatch, options_.tracer);
    monitor_snapshot = monitor_.SaveUser(user);
    observations = monitor_.ProcessPoint(user, exact);
  }

  size_t completions_this_request = 0;
  if (!observations.empty()) {
    const lbqid::Observation& observation = observations.front();
    outcome.matched_lbqid = true;
    outcome.lbqid_index = observation.lbqid_index;
    outcome.element_index = observation.event.element_index;
    // A completed LBQID counts as a (potential) release regardless of the
    // policy setting — with protection off, it IS released.  A request may
    // complete several LBQIDs at once.
    for (const lbqid::Observation& observed : observations) {
      if (observed.event.outcome == lbqid::MatchOutcome::kLbqidComplete) {
        ++completions_this_request;
      }
    }
    outcome.lbqid_completed = completions_this_request > 0;
    stats_.lbqid_completions += completions_this_request;
  }

  // Shed this request if a cold-tier read faulted since entry: the SP
  // sees nothing (like the at-risk "dropped" branch, the automata must
  // not have advanced), and the RPC layer maps kRejected to a Throttled
  // frame the client retries after the tier recovers.  The fault already
  // bumped the tiered view's epoch, so no memo can replay the partial
  // answer either.
  const auto shed_on_cold_fault = [&]() -> bool {
    if (cold_ == nullptr || cold_->fault_count() == cold_faults_entry) {
      return false;
    }
    monitor_.RestoreUser(user, monitor_snapshot);
    stats_.lbqid_completions -= completions_this_request;
    ++cold_fault_sheds_;
    CountShed(/*is_request=*/true);
    outcome = ProcessOutcome{};
    outcome.exact = exact;
    outcome.disposition = Disposition::kRejected;
    outcomes_.push_back(outcome);
    return true;
  };

  if (observations.empty() || policy.concern == PrivacyConcern::kOff) {
    outcome.disposition = Disposition::kForwardedDefault;
    const double scale = policy.concern == PrivacyConcern::kOff
                             ? 1.0
                             : policy.default_context_scale;
    geo::STBox context = generalizer_->DefaultContext(exact, tolerance, scale);
    if (options_.enable_randomization) {
      StageScope stage(telemetry, Stage::kRandomize, options_.tracer);
      context = RandomizeTranslate(context, exact, user, ordinal);
    }
    {
      StageScope stage(telemetry, Stage::kForward, options_.tracer);
      Forward(&outcome, user, exact, service, data, context);
    }
    ++stats_.forwarded_default;
    outcomes_.push_back(outcome);
    return outcome;
  }

  // Step 1 continued: Algorithm 1, once per matched LBQID (Section 6.2:
  // "the algorithm can be easily extended to consider multiple LBQIDs").
  // Each trace's k-covering box is computed with its own anchors; the
  // UNION is forwarded — a superset keeps every trace's anchors'
  // LT-consistency intact.
  const size_t k = policy.k;
  struct PendingUpdate {
    TraceState* trace;
    std::vector<mod::UserId> anchors;
  };
  std::vector<PendingUpdate> updates;
  geo::STBox union_box = geo::STBox::Empty();
  bool all_ok = true;
  {
    StageScope stage(telemetry, Stage::kGeneralize, options_.tracer);
    for (const lbqid::Observation& observed : observations) {
      TraceState& trace = state.traces[observed.lbqid_index];
      // Anchor schedule (Section 6.2's k' heuristic), per trace.
      std::vector<mod::UserId> anchors = trace.anchors;
      size_t select_k = k;
      if (anchors.empty()) {
        select_k = policy.k_schedule.InitialAnchors(k);
      } else {
        TrimAnchors(&anchors, policy.k_schedule.AnchorsAtStep(k, trace.steps),
                    exact);
      }
      const anon::TraversalKey traversal{user, observed.lbqid_index,
                                         trace.steps};
      const common::Result<anon::GeneralizationResult> generalized =
          generalizer_->Generalize(exact, user, std::move(anchors), select_k,
                                   tolerance, traversal);
      if (!generalized.ok()) {
        all_ok = false;
        break;
      }
      if (!generalized->hk_anonymity) all_ok = false;
      union_box.ExpandToInclude(generalized->box);
      updates.push_back(PendingUpdate{&trace, generalized->anchors});
    }
  }
  {
    // HkA verdict on the combined context: individually-fitting boxes can
    // still union past the tolerance.
    StageScope stage(telemetry, Stage::kHkaEval, options_.tracer);
    if (all_ok && !tolerance.Satisfies(union_box)) all_ok = false;
  }

  // Commit point for the generalization stages (anchor selection and HkA
  // both read through the tiered view).
  if (shed_on_cold_fault()) return outcome;

  if (all_ok) {
    geo::STBox context = union_box;
    if (options_.enable_randomization) {
      // Expansion (never translation): a superset keeps every anchor's
      // sample inside, preserving LT-consistency of the traces.
      StageScope stage(telemetry, Stage::kRandomize, options_.tracer);
      context = RandomizeExpand(context, tolerance, user, ordinal);
    }
    for (PendingUpdate& update : updates) {
      update.trace->anchors = std::move(update.anchors);
      ++update.trace->steps;
      update.trace->contexts.push_back(context);
    }
    outcome.disposition = Disposition::kForwardedGeneralized;
    outcome.hk_anonymity = true;
    {
      StageScope stage(telemetry, Stage::kForward, options_.tracer);
      Forward(&outcome, user, exact, service, data, context);
    }
    ++stats_.forwarded_generalized;
    stats_.generalized_area_sum += context.area.Area();
    stats_.generalized_window_sum +=
        static_cast<double>(context.time.Length());
    outcomes_.push_back(outcome);
    return outcome;
  }

  // Step 2: generalization failed -> try to unlink.
  outcome.hk_anonymity = false;
  if (options_.enable_unlinking) {
    StageScope stage(telemetry, Stage::kUnlink, options_.tracer);
    ++stats_.unlink_attempts;
    anon::MixZoneOptions mixzone = options_.mixzone;
    mixzone.min_diverging_users = std::max(mixzone.min_diverging_users, k);
    const anon::MixZoneResult zone =
        anon::TryFormMixZone(*read_store_, exact, user, mixzone);
    // Commit point for the mix-zone scan (PHL reads may fault cold): a
    // zone formed over partial histories must not rotate anything.
    if (shed_on_cold_fault()) return outcome;
    if (zone.success) {
      ++stats_.unlink_successes;
      pseudonyms_.Rotate(user);
      monitor_.ResetUser(user);
      state.traces.clear();
      state.quiet_until = zone.quiet_until;
      outcome.disposition = Disposition::kUnlinked;
      outcomes_.push_back(outcome);
      return outcome;
    }
  }

  // Step 2 failed: "the user is considered at risk of identification, and
  // notified about it".
  ++stats_.at_risk_notifications;
  outcome.disposition = Disposition::kAtRisk;
  if (options_.forward_when_at_risk && !updates.empty()) {
    // Forward the union clipped to tolerance (Algorithm 1 lines 11-12).
    geo::STBox clipped = union_box;
    clipped.area = clipped.area.ShrunkToFit(exact.p, tolerance.max_area_width,
                                            tolerance.max_area_height);
    clipped.time = clipped.time.ShrunkToFit(exact.t,
                                            tolerance.max_time_window);
    for (PendingUpdate& update : updates) {
      update.trace->anchors = std::move(update.anchors);
      ++update.trace->steps;
      update.trace->contexts.push_back(clipped);
      update.trace->tainted = true;
    }
    StageScope stage(telemetry, Stage::kForward, options_.tracer);
    Forward(&outcome, user, exact, service, data, clipped);
  } else {
    // Dropped: the SP never sees this request, so the automata must not
    // have advanced on it.
    monitor_.RestoreUser(user, monitor_snapshot);
    if (outcome.lbqid_completed) {
      stats_.lbqid_completions -= completions_this_request;
      outcome.lbqid_completed = false;
    }
  }
  outcomes_.push_back(outcome);
  return outcome;
}

void TrustedServer::RecordRequest(const ProcessOutcome& outcome,
                                  const RequestTelemetry& telemetry,
                                  mod::UserId user, mod::ServiceId service,
                                  double total_seconds) {
  if (options_.registry != nullptr) {
    obs_.requests->Increment();
    obs_.disposition[static_cast<size_t>(outcome.disposition)]->Increment();
    if (outcome.lbqid_completed) obs_.lbqid_completions->Increment();
    if (telemetry.ran[static_cast<size_t>(Stage::kUnlink)]) {
      obs_.unlink_attempts->Increment();
    }
    if (outcome.disposition == Disposition::kUnlinked) {
      obs_.unlink_successes->Increment();
    }
    for (size_t i = 0; i < kStageCount; ++i) {
      if (telemetry.ran[i]) obs_.stage[i]->Observe(telemetry.seconds[i]);
    }
    obs_.request_seconds->Observe(total_seconds);
    if (outcome.disposition == Disposition::kForwardedGeneralized) {
      const geo::STBox& context = outcome.forwarded_request.context;
      obs_.generalized_area->Observe(context.area.Area());
      obs_.generalized_window->Observe(
          static_cast<double>(context.time.Length()));
    }
  }
  if (options_.event_sink != nullptr) {
    obs::JsonObject event;
    event.SetUint("seq", stats_.requests);
    event.SetInt("t", outcome.exact.t);
    // The event log leaves the trusted boundary only pseudonymized; after
    // an unlink this is already the rotated pseudonym.
    event.SetString("pseudonym", outcome.forwarded
                                     ? outcome.forwarded_request.pseudonym
                                     : pseudonyms_.Current(user));
    event.SetInt("service", service);
    event.SetString("disposition",
                    DispositionToString(outcome.disposition));
    event.SetBool("forwarded", outcome.forwarded);
    event.SetBool("hk_anonymity", outcome.hk_anonymity);
    event.SetBool("matched_lbqid", outcome.matched_lbqid);
    if (outcome.matched_lbqid) {
      event.SetUint("lbqid_index", outcome.lbqid_index);
      event.SetUint("element_index", outcome.element_index);
      event.SetBool("lbqid_completed", outcome.lbqid_completed);
    }
    if (outcome.forwarded) {
      const geo::STBox& context = outcome.forwarded_request.context;
      event.SetNumber("area_m2", context.area.Area());
      event.SetInt("window_s", context.time.Length());
    }
    obs::JsonObject stages;
    for (size_t i = 0; i < kStageCount; ++i) {
      if (!telemetry.ran[i]) continue;
      stages.SetNumber(std::string(StageToString(static_cast<Stage>(i))),
                       telemetry.seconds[i] * 1e6);
    }
    if (!stages.empty()) event.SetRaw("stages_us", stages.ToString());
    event.SetNumber("total_us", total_seconds * 1e6);
    options_.event_sink->Append(event.ToString());
  }
}

std::vector<geo::STBox> TrustedServer::CurrentTraceContexts(
    mod::UserId user) const {
  std::vector<geo::STBox> contexts;
  const auto it = users_.find(user);
  if (it == users_.end()) return contexts;
  for (const auto& [lbqid_index, trace] : it->second.traces) {
    contexts.insert(contexts.end(), trace.contexts.begin(),
                    trace.contexts.end());
  }
  return contexts;
}

std::vector<geo::STBox> TrustedServer::TraceContextsOf(
    mod::UserId user, size_t lbqid_index) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return {};
  const auto trace = it->second.traces.find(lbqid_index);
  if (trace == it->second.traces.end()) return {};
  return trace->second.contexts;
}

anon::HkaResult TrustedServer::EvaluateTraceHka(mod::UserId user,
                                                size_t lbqid_index) const {
  obs::ScopedTimer timer(obs_.stage[static_cast<size_t>(Stage::kHkaEval)]);
  const auto it = users_.find(user);
  const size_t k = it == users_.end() ? 0 : it->second.policy.k;
  return hka_.Evaluate(user, TraceContextsOf(user, lbqid_index), k);
}

std::vector<TrustedServer::TraceAudit> TrustedServer::AuditTraces() const {
  std::vector<TraceAudit> audits;
  for (const auto& [user, state] : users_) {
    for (const auto& [lbqid_index, trace] : state.traces) {
      if (trace.contexts.empty()) continue;
      TraceAudit audit;
      audit.user = user;
      audit.lbqid_index = lbqid_index;
      audit.steps = trace.contexts.size();
      audit.tainted = trace.tainted;
      obs::ScopedTimer timer(
          obs_.stage[static_cast<size_t>(Stage::kHkaEval)]);
      const anon::HkaResult hka =
          hka_.Evaluate(user, trace.contexts, state.policy.k);
      timer.Stop();
      audit.hka_satisfied = hka.satisfied;
      audit.witnesses = hka.consistent_others;
      audits.push_back(audit);
    }
  }
  return audits;
}

anon::HkaResult TrustedServer::EvaluateUserHka(mod::UserId user) const {
  obs::ScopedTimer timer(obs_.stage[static_cast<size_t>(Stage::kHkaEval)]);
  const auto it = users_.find(user);
  const size_t k = it == users_.end() ? 0 : it->second.policy.k;
  return hka_.Evaluate(user, CurrentTraceContexts(user), k);
}

}  // namespace ts
}  // namespace histkanon
