#include "src/ts/trusted_server.h"

#include <algorithm>

#include "src/common/str.h"

namespace histkanon {
namespace ts {

std::string_view DispositionToString(Disposition disposition) {
  switch (disposition) {
    case Disposition::kForwardedDefault:
      return "forwarded-default";
    case Disposition::kForwardedGeneralized:
      return "forwarded-generalized";
    case Disposition::kSuppressedMixZone:
      return "suppressed-mixzone";
    case Disposition::kUnlinked:
      return "unlinked";
    case Disposition::kAtRisk:
      return "at-risk";
  }
  return "unknown";
}

TrustedServer::TrustedServer(TrustedServerOptions options)
    : options_(options),
      index_(options.index),
      hka_(&db_),
      pseudonyms_(options.pseudonym_seed),
      randomizer_(options.randomizer_seed, options.randomizer) {
  generalizer_ = std::make_unique<anon::Generalizer>(&db_, &index_,
                                                     options_.generalizer);
}

common::Status TrustedServer::RegisterService(
    const anon::ServiceProfile& service) {
  if (services_.count(service.id) > 0) {
    return common::Status::AlreadyExists(
        common::Format("service %d already registered", service.id));
  }
  services_.emplace(service.id, service);
  return common::Status::OK();
}

common::Status TrustedServer::RegisterUser(mod::UserId user,
                                           PrivacyPolicy policy) {
  if (users_.count(user) > 0) {
    return common::Status::AlreadyExists(common::Format(
        "user %lld already registered", static_cast<long long>(user)));
  }
  UserState state;
  state.policy = policy;
  users_.emplace(user, std::move(state));
  return common::Status::OK();
}

common::Result<size_t> TrustedServer::RegisterLbqid(mod::UserId user,
                                                    lbqid::Lbqid lbqid) {
  if (users_.count(user) == 0) {
    return common::Status::NotFound(common::Format(
        "user %lld is not registered", static_cast<long long>(user)));
  }
  return monitor_.Register(user, std::move(lbqid));
}

common::Status TrustedServer::SetUserRules(mod::UserId user,
                                           PolicyRuleSet rules) {
  const auto it = users_.find(user);
  if (it == users_.end()) {
    return common::Status::NotFound(common::Format(
        "user %lld is not registered", static_cast<long long>(user)));
  }
  it->second.policy = rules.fallback();
  it->second.rules = std::move(rules);
  return common::Status::OK();
}

TrustedServer::UserState& TrustedServer::StateOf(mod::UserId user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    UserState state;
    state.policy = PrivacyPolicy::FromConcern(PrivacyConcern::kMedium);
    it = users_.emplace(user, std::move(state)).first;
  }
  return it->second;
}

const PrivacyPolicy& TrustedServer::ResolvePolicy(const UserState& state,
                                                  mod::ServiceId service,
                                                  geo::Instant t) const {
  if (state.rules.has_value()) return state.rules->PolicyFor(service, t);
  return state.policy;
}

const anon::ToleranceConstraints& TrustedServer::ToleranceOf(
    mod::ServiceId service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? default_tolerance_ : it->second.tolerance;
}

void TrustedServer::OnLocationUpdate(mod::UserId user,
                                     const geo::STPoint& sample) {
  // Out-of-order updates (same tick as an earlier sample) are dropped.
  if (db_.Append(user, sample).ok()) index_.Insert(user, sample);
}

void TrustedServer::OnServiceRequest(mod::UserId user,
                                     const geo::STPoint& exact,
                                     const sim::RequestIntent& intent) {
  ProcessRequest(user, exact, intent.service, intent.data);
}

void TrustedServer::TrimAnchors(std::vector<mod::UserId>* anchors,
                                size_t target,
                                const geo::STPoint& exact) const {
  if (anchors->size() <= target) return;
  std::vector<std::pair<double, mod::UserId>> scored;
  scored.reserve(anchors->size());
  for (const mod::UserId anchor : *anchors) {
    const common::Result<const mod::Phl*> phl = db_.GetPhl(anchor);
    double distance = std::numeric_limits<double>::infinity();
    if (phl.ok()) {
      const std::optional<geo::STPoint> nearest =
          (*phl)->NearestSample(exact, options_.generalizer.metric);
      if (nearest.has_value()) {
        distance = options_.generalizer.metric.Distance(*nearest, exact);
      }
    }
    scored.emplace_back(distance, anchor);
  }
  std::sort(scored.begin(), scored.end());
  anchors->clear();
  for (size_t i = 0; i < target; ++i) anchors->push_back(scored[i].second);
}

void TrustedServer::Forward(ProcessOutcome* outcome, mod::UserId user,
                            const geo::STPoint& exact, mod::ServiceId service,
                            const std::string& data,
                            const geo::STBox& context) {
  (void)exact;
  anon::ForwardedRequest request;
  request.msgid = next_msgid_++;
  request.pseudonym = pseudonyms_.Current(user);
  request.context = context;
  request.service = service;
  request.data = data;
  if (provider_ != nullptr) provider_->Handle(request);
  outcome->forwarded = true;
  outcome->forwarded_request = std::move(request);
}

ProcessOutcome TrustedServer::ProcessRequest(mod::UserId user,
                                             const geo::STPoint& exact,
                                             mod::ServiceId service,
                                             const std::string& data) {
  ProcessOutcome outcome;
  outcome.exact = exact;
  ++stats_.requests;
  UserState& state = StateOf(user);
  const PrivacyPolicy& policy = ResolvePolicy(state, service, exact.t);
  const anon::ToleranceConstraints& tolerance = ToleranceOf(service);

  // The request's exact point is itself a location update (every request
  // has a PHL element, Section 5.3).
  if (db_.Append(user, exact).ok()) index_.Insert(user, exact);

  // Mix-zone quiet period: service disabled (Section 6.3, "temporarily
  // disabling the use of the service for a number of users in the same
  // area for the time sufficient to confuse the SP").
  if (exact.t < state.quiet_until) {
    outcome.disposition = Disposition::kSuppressedMixZone;
    ++stats_.suppressed_mixzone;
    outcomes_.push_back(outcome);
    return outcome;
  }

  // Step 1: LBQID monitoring.  The paper assumes each request matches an
  // element of at most one LBQID; with several, the first match wins.
  // The automata model what the SP observes; save their state so the
  // advance can be rolled back if this request ends up not forwarded.
  const std::vector<lbqid::LbqidMatcher::Snapshot> monitor_snapshot =
      monitor_.SaveUser(user);
  const std::vector<lbqid::Observation> observations =
      monitor_.ProcessPoint(user, exact);

  size_t completions_this_request = 0;
  if (!observations.empty()) {
    const lbqid::Observation& observation = observations.front();
    outcome.matched_lbqid = true;
    outcome.lbqid_index = observation.lbqid_index;
    outcome.element_index = observation.event.element_index;
    // A completed LBQID counts as a (potential) release regardless of the
    // policy setting — with protection off, it IS released.  A request may
    // complete several LBQIDs at once.
    for (const lbqid::Observation& obs : observations) {
      if (obs.event.outcome == lbqid::MatchOutcome::kLbqidComplete) {
        ++completions_this_request;
      }
    }
    outcome.lbqid_completed = completions_this_request > 0;
    stats_.lbqid_completions += completions_this_request;
  }

  if (observations.empty() || policy.concern == PrivacyConcern::kOff) {
    outcome.disposition = Disposition::kForwardedDefault;
    const double scale = policy.concern == PrivacyConcern::kOff
                             ? 1.0
                             : policy.default_context_scale;
    geo::STBox context = generalizer_->DefaultContext(exact, tolerance, scale);
    if (options_.enable_randomization) {
      context = randomizer_.TranslateWithin(context, exact);
    }
    Forward(&outcome, user, exact, service, data, context);
    ++stats_.forwarded_default;
    outcomes_.push_back(outcome);
    return outcome;
  }

  // Step 1 continued: Algorithm 1, once per matched LBQID (Section 6.2:
  // "the algorithm can be easily extended to consider multiple LBQIDs").
  // Each trace's k-covering box is computed with its own anchors; the
  // UNION is forwarded — a superset keeps every trace's anchors'
  // LT-consistency intact.
  const size_t k = policy.k;
  struct PendingUpdate {
    TraceState* trace;
    std::vector<mod::UserId> anchors;
  };
  std::vector<PendingUpdate> updates;
  geo::STBox union_box = geo::STBox::Empty();
  bool all_ok = true;
  for (const lbqid::Observation& obs : observations) {
    TraceState& trace = state.traces[obs.lbqid_index];
    // Anchor schedule (Section 6.2's k' heuristic), per trace.
    std::vector<mod::UserId> anchors = trace.anchors;
    size_t select_k = k;
    if (anchors.empty()) {
      select_k = policy.k_schedule.InitialAnchors(k);
    } else {
      TrimAnchors(&anchors, policy.k_schedule.AnchorsAtStep(k, trace.steps),
                  exact);
    }
    const common::Result<anon::GeneralizationResult> generalized =
        generalizer_->Generalize(exact, user, std::move(anchors), select_k,
                                 tolerance);
    if (!generalized.ok()) {
      all_ok = false;
      break;
    }
    if (!generalized->hk_anonymity) all_ok = false;
    union_box.ExpandToInclude(generalized->box);
    updates.push_back(PendingUpdate{&trace, generalized->anchors});
  }
  // Individually-fitting boxes can still union past the tolerance.
  if (all_ok && !tolerance.Satisfies(union_box)) all_ok = false;

  if (all_ok) {
    geo::STBox context = union_box;
    if (options_.enable_randomization) {
      // Expansion (never translation): a superset keeps every anchor's
      // sample inside, preserving LT-consistency of the traces.
      context = randomizer_.ExpandWithin(context, tolerance);
    }
    for (PendingUpdate& update : updates) {
      update.trace->anchors = std::move(update.anchors);
      ++update.trace->steps;
      update.trace->contexts.push_back(context);
    }
    outcome.disposition = Disposition::kForwardedGeneralized;
    outcome.hk_anonymity = true;
    Forward(&outcome, user, exact, service, data, context);
    ++stats_.forwarded_generalized;
    stats_.generalized_area_sum += context.area.Area();
    stats_.generalized_window_sum +=
        static_cast<double>(context.time.Length());
    outcomes_.push_back(outcome);
    return outcome;
  }

  // Step 2: generalization failed -> try to unlink.
  outcome.hk_anonymity = false;
  if (options_.enable_unlinking) {
    ++stats_.unlink_attempts;
    anon::MixZoneOptions mixzone = options_.mixzone;
    mixzone.min_diverging_users = std::max(mixzone.min_diverging_users, k);
    const anon::MixZoneResult zone =
        anon::TryFormMixZone(db_, exact, user, mixzone);
    if (zone.success) {
      ++stats_.unlink_successes;
      pseudonyms_.Rotate(user);
      monitor_.ResetUser(user);
      state.traces.clear();
      state.quiet_until = zone.quiet_until;
      outcome.disposition = Disposition::kUnlinked;
      outcomes_.push_back(outcome);
      return outcome;
    }
  }

  // Step 2 failed: "the user is considered at risk of identification, and
  // notified about it".
  ++stats_.at_risk_notifications;
  outcome.disposition = Disposition::kAtRisk;
  if (options_.forward_when_at_risk && !updates.empty()) {
    // Forward the union clipped to tolerance (Algorithm 1 lines 11-12).
    geo::STBox clipped = union_box;
    clipped.area = clipped.area.ShrunkToFit(exact.p, tolerance.max_area_width,
                                            tolerance.max_area_height);
    clipped.time = clipped.time.ShrunkToFit(exact.t,
                                            tolerance.max_time_window);
    for (PendingUpdate& update : updates) {
      update.trace->anchors = std::move(update.anchors);
      ++update.trace->steps;
      update.trace->contexts.push_back(clipped);
      update.trace->tainted = true;
    }
    Forward(&outcome, user, exact, service, data, clipped);
  } else {
    // Dropped: the SP never sees this request, so the automata must not
    // have advanced on it.
    monitor_.RestoreUser(user, monitor_snapshot);
    if (outcome.lbqid_completed) {
      stats_.lbqid_completions -= completions_this_request;
      outcome.lbqid_completed = false;
    }
  }
  outcomes_.push_back(outcome);
  return outcome;
}

std::vector<geo::STBox> TrustedServer::CurrentTraceContexts(
    mod::UserId user) const {
  std::vector<geo::STBox> contexts;
  const auto it = users_.find(user);
  if (it == users_.end()) return contexts;
  for (const auto& [lbqid_index, trace] : it->second.traces) {
    contexts.insert(contexts.end(), trace.contexts.begin(),
                    trace.contexts.end());
  }
  return contexts;
}

std::vector<geo::STBox> TrustedServer::TraceContextsOf(
    mod::UserId user, size_t lbqid_index) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return {};
  const auto trace = it->second.traces.find(lbqid_index);
  if (trace == it->second.traces.end()) return {};
  return trace->second.contexts;
}

anon::HkaResult TrustedServer::EvaluateTraceHka(mod::UserId user,
                                                size_t lbqid_index) const {
  const auto it = users_.find(user);
  const size_t k = it == users_.end() ? 0 : it->second.policy.k;
  return hka_.Evaluate(user, TraceContextsOf(user, lbqid_index), k);
}

std::vector<TrustedServer::TraceAudit> TrustedServer::AuditTraces() const {
  std::vector<TraceAudit> audits;
  for (const auto& [user, state] : users_) {
    for (const auto& [lbqid_index, trace] : state.traces) {
      if (trace.contexts.empty()) continue;
      TraceAudit audit;
      audit.user = user;
      audit.lbqid_index = lbqid_index;
      audit.steps = trace.contexts.size();
      audit.tainted = trace.tainted;
      const anon::HkaResult hka =
          hka_.Evaluate(user, trace.contexts, state.policy.k);
      audit.hka_satisfied = hka.satisfied;
      audit.witnesses = hka.consistent_others;
      audits.push_back(audit);
    }
  }
  return audits;
}

anon::HkaResult TrustedServer::EvaluateUserHka(mod::UserId user) const {
  const auto it = users_.find(user);
  const size_t k = it == users_.end() ? 0 : it->second.policy.k;
  return hka_.Evaluate(user, CurrentTraceContexts(user), k);
}

}  // namespace ts
}  // namespace histkanon
