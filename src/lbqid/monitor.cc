#include "src/lbqid/monitor.h"

namespace histkanon {
namespace lbqid {

void LbqidMonitor::AttachRegistry(obs::Registry* registry) {
  if (registry == nullptr) {
    points_ = observations_ = completions_ = resets_ = nullptr;
    return;
  }
  points_ = registry->GetCounter("lbqid_monitor_points_total");
  observations_ = registry->GetCounter("lbqid_monitor_observations_total");
  completions_ = registry->GetCounter("lbqid_monitor_completions_total");
  resets_ = registry->GetCounter("lbqid_monitor_resets_total");
}

size_t LbqidMonitor::Register(mod::UserId user, Lbqid lbqid) {
  PerUser& per_user = users_[user];
  per_user.lbqids.push_back(std::make_unique<Lbqid>(std::move(lbqid)));
  per_user.matchers.push_back(
      std::make_unique<LbqidMatcher>(per_user.lbqids.back().get()));
  return per_user.lbqids.size() - 1;
}

std::vector<Observation> LbqidMonitor::ProcessPoint(
    mod::UserId user, const geo::STPoint& exact) {
  if (points_ != nullptr) points_->Increment();
  std::vector<Observation> observations;
  const auto it = users_.find(user);
  if (it == users_.end()) return observations;
  for (size_t i = 0; i < it->second.matchers.size(); ++i) {
    const MatchEvent event = it->second.matchers[i]->Advance(exact);
    if (event.outcome == MatchOutcome::kNoMatch) continue;
    if (observations_ != nullptr) observations_->Increment();
    if (completions_ != nullptr &&
        event.outcome == MatchOutcome::kLbqidComplete) {
      completions_->Increment();
    }
    observations.push_back(
        Observation{i, it->second.lbqids[i].get(), event});
  }
  return observations;
}

void LbqidMonitor::ResetUser(mod::UserId user) {
  if (resets_ != nullptr) resets_->Increment();
  const auto it = users_.find(user);
  if (it == users_.end()) return;
  for (auto& matcher : it->second.matchers) matcher->Reset();
}

std::vector<LbqidMatcher::Snapshot> LbqidMonitor::SaveUser(
    mod::UserId user) const {
  std::vector<LbqidMatcher::Snapshot> snapshots;
  const auto it = users_.find(user);
  if (it == users_.end()) return snapshots;
  snapshots.reserve(it->second.matchers.size());
  for (const auto& matcher : it->second.matchers) {
    snapshots.push_back(matcher->Save());
  }
  return snapshots;
}

void LbqidMonitor::RestoreUser(
    mod::UserId user, const std::vector<LbqidMatcher::Snapshot>& snapshots) {
  const auto it = users_.find(user);
  if (it == users_.end()) return;
  for (size_t i = 0; i < it->second.matchers.size() && i < snapshots.size();
       ++i) {
    it->second.matchers[i]->Restore(snapshots[i]);
  }
}

std::vector<const Lbqid*> LbqidMonitor::LbqidsOf(mod::UserId user) const {
  std::vector<const Lbqid*> lbqids;
  const auto it = users_.find(user);
  if (it == users_.end()) return lbqids;
  lbqids.reserve(it->second.lbqids.size());
  for (const auto& lbqid : it->second.lbqids) lbqids.push_back(lbqid.get());
  return lbqids;
}

const LbqidMatcher* LbqidMonitor::MatcherOf(mod::UserId user,
                                            size_t index) const {
  const auto it = users_.find(user);
  if (it == users_.end() || index >= it->second.matchers.size()) {
    return nullptr;
  }
  return it->second.matchers[index].get();
}

LbqidMatcher* LbqidMonitor::MutableMatcherOf(mod::UserId user, size_t index) {
  const auto it = users_.find(user);
  if (it == users_.end() || index >= it->second.matchers.size()) {
    return nullptr;
  }
  return it->second.matchers[index].get();
}

std::vector<mod::UserId> LbqidMonitor::Users() const {
  std::vector<mod::UserId> users;
  users.reserve(users_.size());
  for (const auto& [user, per_user] : users_) users.push_back(user);
  return users;
}

bool LbqidMonitor::AnyComplete(mod::UserId user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return false;
  for (const auto& matcher : it->second.matchers) {
    if (matcher->complete()) return true;
  }
  return false;
}

}  // namespace lbqid
}  // namespace histkanon
