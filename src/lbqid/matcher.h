// Incremental LBQID matching: "a timed state automata may be used for each
// LBQID and each user, advancing the state of the automata when the actual
// location of the user at the request time is within the area specified by
// one of the current states, and the temporal constraints are satisfied"
// (paper Section 4).

#ifndef HISTKANON_SRC_LBQID_MATCHER_H_
#define HISTKANON_SRC_LBQID_MATCHER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/lbqid/lbqid.h"

namespace histkanon {
namespace lbqid {

/// \brief Outcome of feeding one request to a matcher.
enum class MatchOutcome {
  /// The request matched no element the automaton could accept.
  kNoMatch,
  /// The request matched the next expected element (or restarted the
  /// sequence at element 0); the sequence instance is still incomplete.
  kAdvanced,
  /// The request completed a full element-sequence instance, but the
  /// recurrence formula is not yet satisfied.
  kSequenceComplete,
  /// The request completed an instance AND the recurrence formula is now
  /// satisfied: the LBQID has been fully released to the observer.
  kLbqidComplete,
};

/// \brief What the matcher saw in a request.
struct MatchEvent {
  MatchOutcome outcome = MatchOutcome::kNoMatch;
  /// Element matched (valid unless kNoMatch).
  size_t element_index = 0;
  /// True when this request began a fresh sequence instance at element 0.
  bool started_instance = false;
};

/// \brief Timed-state automaton tracking one user's progress through one
/// LBQID.
///
/// Semantics implemented:
///  - elements of one sequence instance must match in order with strictly
///    increasing time;
///  - when the recurrence formula is non-empty, every element of an
///    instance must fall within a single granule of the innermost
///    granularity G1 ("each sequence must be observed within a single
///    granule of G1");
///  - a request that cannot extend the current partial instance but does
///    match element 0 (in a valid granule) restarts the instance;
///  - completed-instance times are accumulated and tested against the
///    recurrence formula after every completion.
class LbqidMatcher {
 public:
  explicit LbqidMatcher(const Lbqid* lbqid) : lbqid_(lbqid) {}

  /// Feeds the exact location/time of one request.
  MatchEvent Advance(const geo::STPoint& exact);

  /// Forgets all progress — partial instance AND completed observations.
  /// Called when the user's pseudonym changes (Section 6.1 step 2: "all
  /// partially matched patterns based on old pseudonym ... are reset"),
  /// since the observer can no longer link future requests to the history.
  void Reset();

  /// \brief Saved automaton state, for tentative advances.
  ///
  /// The automaton models what the SERVICE PROVIDER has observed; when the
  /// TS decides not to forward a request after all, the advance must be
  /// rolled back.
  struct Snapshot {
    std::vector<geo::Instant> partial_times;
    std::optional<int64_t> partial_granule;
    size_t completion_count = 0;
    bool complete = false;
  };

  /// Captures the current state.
  Snapshot Save() const;

  /// Restores a previously captured state.  The snapshot must come from
  /// this matcher and completions must not have been Reset() in between.
  void Restore(const Snapshot& snapshot);

  /// \brief Full automaton state for checkpoint/restore.  Unlike Snapshot
  /// (an in-process rollback aid that only counts completions), this
  /// carries the completion instants themselves, so it round-trips across
  /// a process boundary into a freshly constructed matcher.
  struct DurableState {
    std::vector<geo::Instant> partial_times;
    std::optional<int64_t> partial_granule;
    std::vector<geo::Instant> completions;
    bool complete = false;
  };

  /// Captures the complete state.
  DurableState SaveDurable() const;

  /// Overwrites the automaton with a previously captured state.  The
  /// matcher must track the same LBQID the state was saved against.
  void RestoreDurable(DurableState state);

  const Lbqid& lbqid() const { return *lbqid_; }

  /// Index of the element the automaton expects next (0 = start).
  size_t next_element() const { return partial_times_.size(); }

  /// True when a sequence instance is partially matched.
  bool has_partial_instance() const { return !partial_times_.empty(); }

  /// Completion instants of all fully matched sequence instances.
  const std::vector<geo::Instant>& completions() const { return completions_; }

  /// True once the whole LBQID (sequence + recurrence) has been matched.
  bool complete() const { return complete_; }

  /// Recurrence levels currently satisfied (progress indicator).
  int satisfied_levels() const {
    return lbqid_->recurrence().SatisfiedLevels(completions_);
  }

 private:
  // Whether `t` can join the current partial instance's granule.
  bool InCurrentGranule(geo::Instant t) const;

  const Lbqid* lbqid_;
  std::vector<geo::Instant> partial_times_;
  // G1 granule of the current partial instance (set iff recurrence has a
  // granularity and an instance is in progress).
  std::optional<int64_t> partial_granule_;
  std::vector<geo::Instant> completions_;
  bool complete_ = false;
};

/// \brief Convenience set-level matcher (Definition 3, sufficient check):
/// feeds the time-sorted points through a fresh automaton and reports
/// whether the LBQID completed.
bool RequestSetMatches(const Lbqid& lbqid, std::vector<geo::STPoint> points);

}  // namespace lbqid
}  // namespace histkanon

#endif  // HISTKANON_SRC_LBQID_MATCHER_H_
