// Location-Based Quasi-Identifiers (paper Definition 1): a sequence of
// <Area, U-TimeInterval> elements plus a recurrence formula.  Example 2 of
// the paper:
//
//   <AreaCondominium, [7am,8am]> <AreaOfficeBldg, [8am,9am]>
//   <AreaOfficeBldg, [4pm,6pm]> <AreaCondominium, [5pm,7pm]>
//   Recurrence: 3.Weekdays * 2.Weeks

#ifndef HISTKANON_SRC_LBQID_LBQID_H_
#define HISTKANON_SRC_LBQID_LBQID_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/geo/rect.h"
#include "src/tgran/recurrence.h"
#include "src/tgran/unanchored.h"

namespace histkanon {
namespace lbqid {

/// \brief One element of an LBQID: an area and an unanchored time span.
struct LbqidElement {
  geo::Rect area;
  tgran::UTimeInterval time;

  /// Definition 2: the exact location/time of a request matches this
  /// element iff the area contains the point and the instant falls inside
  /// one of the intervals denoted by the U-TimeInterval.
  bool Matches(const geo::STPoint& exact) const {
    return area.Contains(exact.p) && time.Contains(exact.t);
  }

  std::string ToString() const {
    return "<" + area.ToString() + ", " + time.ToString() + ">";
  }
};

/// \brief A full location-based quasi-identifier.
class Lbqid {
 public:
  /// Builds an LBQID.  Requires at least one element; elements in the same
  /// day must have non-decreasing start times is NOT required (wrapping
  /// U-TimeIntervals make a static check unsound); ordering is enforced
  /// dynamically by the matcher.
  static common::Result<Lbqid> Create(std::string name,
                                      std::vector<LbqidElement> elements,
                                      tgran::Recurrence recurrence);

  const std::string& name() const { return name_; }
  const std::vector<LbqidElement>& elements() const { return elements_; }
  const tgran::Recurrence& recurrence() const { return recurrence_; }
  size_t size() const { return elements_.size(); }

  /// Definition 2 applied to element `index`.
  bool ElementMatches(size_t index, const geo::STPoint& exact) const {
    return elements_[index].Matches(exact);
  }

  std::string ToString() const;

 private:
  Lbqid(std::string name, std::vector<LbqidElement> elements,
        tgran::Recurrence recurrence)
      : name_(std::move(name)),
        elements_(std::move(elements)),
        recurrence_(std::move(recurrence)) {}

  std::string name_;
  std::vector<LbqidElement> elements_;
  tgran::Recurrence recurrence_;
};

}  // namespace lbqid
}  // namespace histkanon

#endif  // HISTKANON_SRC_LBQID_LBQID_H_
