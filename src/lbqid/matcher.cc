#include "src/lbqid/matcher.h"

#include <algorithm>

namespace histkanon {
namespace lbqid {

bool LbqidMatcher::InCurrentGranule(geo::Instant t) const {
  const tgran::GranularityPtr g1 =
      lbqid_->recurrence().InnermostGranularity();
  if (g1 == nullptr) return true;  // Empty recurrence: no granule constraint.
  const std::optional<int64_t> granule = g1->GranuleOf(t);
  if (!granule.has_value()) return false;  // In a gap of G1.
  if (!partial_granule_.has_value()) return true;  // Starting fresh.
  return *granule == *partial_granule_;
}

MatchEvent LbqidMatcher::Advance(const geo::STPoint& exact) {
  const tgran::GranularityPtr g1 =
      lbqid_->recurrence().InnermostGranularity();

  // A partial instance whose G1 granule has passed can never complete.
  if (has_partial_instance() && g1 != nullptr) {
    const std::optional<int64_t> granule = g1->GranuleOf(exact.t);
    if (!granule.has_value() ||
        (partial_granule_.has_value() && *granule != *partial_granule_)) {
      partial_times_.clear();
      partial_granule_.reset();
    }
  }

  auto try_element = [&](size_t index) -> bool {
    if (!lbqid_->ElementMatches(index, exact)) return false;
    if (!partial_times_.empty() && exact.t <= partial_times_.back()) {
      return false;  // Elements must be strictly ordered in time.
    }
    return InCurrentGranule(exact.t);
  };

  MatchEvent event;
  const size_t expected = next_element();
  bool matched = false;
  if (expected < lbqid_->size() && try_element(expected)) {
    matched = true;
    event.element_index = expected;
    event.started_instance = (expected == 0);
  } else if (expected != 0 && lbqid_->ElementMatches(0, exact)) {
    // Restart: drop the partial instance, begin a new one at element 0.
    partial_times_.clear();
    partial_granule_.reset();
    if (InCurrentGranule(exact.t)) {
      matched = true;
      event.element_index = 0;
      event.started_instance = true;
    }
  }
  if (!matched) {
    event.outcome = MatchOutcome::kNoMatch;
    return event;
  }

  partial_times_.push_back(exact.t);
  if (g1 != nullptr && !partial_granule_.has_value()) {
    partial_granule_ = g1->GranuleOf(exact.t);
  }

  if (partial_times_.size() < lbqid_->size()) {
    event.outcome = MatchOutcome::kAdvanced;
    return event;
  }

  // Full sequence instance observed.
  completions_.push_back(partial_times_.back());
  partial_times_.clear();
  partial_granule_.reset();
  if (lbqid_->recurrence().IsSatisfiedBy(completions_)) {
    complete_ = true;
    event.outcome = MatchOutcome::kLbqidComplete;
  } else {
    event.outcome = MatchOutcome::kSequenceComplete;
  }
  return event;
}

LbqidMatcher::Snapshot LbqidMatcher::Save() const {
  Snapshot snapshot;
  snapshot.partial_times = partial_times_;
  snapshot.partial_granule = partial_granule_;
  snapshot.completion_count = completions_.size();
  snapshot.complete = complete_;
  return snapshot;
}

void LbqidMatcher::Restore(const Snapshot& snapshot) {
  partial_times_ = snapshot.partial_times;
  partial_granule_ = snapshot.partial_granule;
  if (completions_.size() > snapshot.completion_count) {
    completions_.resize(snapshot.completion_count);
  }
  complete_ = snapshot.complete;
}

LbqidMatcher::DurableState LbqidMatcher::SaveDurable() const {
  DurableState state;
  state.partial_times = partial_times_;
  state.partial_granule = partial_granule_;
  state.completions = completions_;
  state.complete = complete_;
  return state;
}

void LbqidMatcher::RestoreDurable(DurableState state) {
  partial_times_ = std::move(state.partial_times);
  partial_granule_ = state.partial_granule;
  completions_ = std::move(state.completions);
  complete_ = state.complete;
}

void LbqidMatcher::Reset() {
  partial_times_.clear();
  partial_granule_.reset();
  completions_.clear();
  complete_ = false;
}

bool RequestSetMatches(const Lbqid& lbqid, std::vector<geo::STPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const geo::STPoint& a, const geo::STPoint& b) {
              return a.t < b.t;
            });
  LbqidMatcher matcher(&lbqid);
  for (const geo::STPoint& point : points) {
    if (matcher.Advance(point).outcome == MatchOutcome::kLbqidComplete) {
      return true;
    }
  }
  return matcher.complete();
}

}  // namespace lbqid
}  // namespace histkanon
