// The trusted server's LBQID surveillance: one timed automaton per
// (user, LBQID), advanced on every request ("The TS monitors all incoming
// user requests for the possible release of LBQIDs", Section 6.1).

#ifndef HISTKANON_SRC_LBQID_MONITOR_H_
#define HISTKANON_SRC_LBQID_MONITOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/lbqid/matcher.h"
#include "src/mod/types.h"
#include "src/obs/metrics.h"

namespace histkanon {
namespace lbqid {

/// \brief What one registered LBQID saw in a request.
struct Observation {
  /// Position of the LBQID in the user's registration order.
  size_t lbqid_index = 0;
  const Lbqid* lbqid = nullptr;
  MatchEvent event;
};

/// \brief Registry of per-user LBQIDs plus their live matchers.
class LbqidMonitor {
 public:
  LbqidMonitor() = default;

  /// Attaches surveillance counters to `registry` (nullptr detaches —
  /// the default, costing nothing on the processing path).
  void AttachRegistry(obs::Registry* registry);

  /// Registers an LBQID for a user; returns its index for that user.
  size_t Register(mod::UserId user, Lbqid lbqid);

  /// Advances all of the user's automata on the exact location/time of a
  /// request, returning one Observation per LBQID whose automaton reacted
  /// (kNoMatch observations are omitted).
  std::vector<Observation> ProcessPoint(mod::UserId user,
                                        const geo::STPoint& exact);

  /// Resets all of the user's automata (pseudonym change, Section 6.1
  /// step 2).
  void ResetUser(mod::UserId user);

  /// Captures the state of all of the user's automata (before a tentative
  /// ProcessPoint whose request may end up not forwarded).
  std::vector<LbqidMatcher::Snapshot> SaveUser(mod::UserId user) const;

  /// Restores a SaveUser() capture.
  void RestoreUser(mod::UserId user,
                   const std::vector<LbqidMatcher::Snapshot>& snapshots);

  /// The user's registered LBQIDs, in registration order.
  std::vector<const Lbqid*> LbqidsOf(mod::UserId user) const;

  /// The live matcher for (user, index); nullptr when unknown.
  const LbqidMatcher* MatcherOf(mod::UserId user, size_t index) const;

  /// Mutable access to a live matcher, for durability restore (the
  /// checkpoint re-registers the LBQIDs, then overwrites each fresh
  /// matcher's automaton state).  nullptr when unknown.
  LbqidMatcher* MutableMatcherOf(mod::UserId user, size_t index);

  /// Every user with at least one registered LBQID, ascending.
  std::vector<mod::UserId> Users() const;

  /// True if any of the user's LBQIDs has been fully matched.
  bool AnyComplete(mod::UserId user) const;

 private:
  struct PerUser {
    std::vector<std::unique_ptr<Lbqid>> lbqids;
    std::vector<std::unique_ptr<LbqidMatcher>> matchers;
  };
  std::map<mod::UserId, PerUser> users_;
  // Pre-resolved metric handles (nullptr without a registry).
  obs::Counter* points_ = nullptr;
  obs::Counter* observations_ = nullptr;
  obs::Counter* completions_ = nullptr;
  obs::Counter* resets_ = nullptr;
};

}  // namespace lbqid
}  // namespace histkanon

#endif  // HISTKANON_SRC_LBQID_MONITOR_H_
