#include "src/lbqid/lbqid.h"

#include "src/common/str.h"

namespace histkanon {
namespace lbqid {

common::Result<Lbqid> Lbqid::Create(std::string name,
                                    std::vector<LbqidElement> elements,
                                    tgran::Recurrence recurrence) {
  if (elements.empty()) {
    return common::Status::InvalidArgument(
        "an LBQID needs at least one element");
  }
  for (const LbqidElement& element : elements) {
    if (element.area.IsEmpty()) {
      return common::Status::InvalidArgument(
          "LBQID element has an empty area");
    }
  }
  return Lbqid(std::move(name), std::move(elements), std::move(recurrence));
}

std::string Lbqid::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(elements_.size());
  for (const LbqidElement& element : elements_) {
    parts.push_back(element.ToString());
  }
  return name_ + ": " + common::Join(parts, " ") +
         "  Recurrence: " + recurrence_.ToString();
}

}  // namespace lbqid
}  // namespace histkanon
