#include "src/dur/framing.h"

#include <array>

#include "src/dur/encode.h"

namespace histkanon {
namespace dur {

namespace {

constexpr std::string_view kMagic = "HKDURJL1";

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::string_view JournalMagic() { return kMagic; }

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (const char c : bytes) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

void AppendMagic(std::string* out) { out->append(kMagic); }

void AppendRecord(std::string* out, std::string_view payload) {
  ByteWriter header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));
  out->append(header.bytes());
  out->append(payload.data(), payload.size());
}

RecordParse ParseRecordAt(std::string_view bytes, size_t pos,
                          uint32_t max_payload, std::string_view* payload,
                          size_t* consumed, std::string* error) {
  ByteReader header(bytes.substr(pos));
  uint32_t length = 0;
  uint32_t crc = 0;
  if (!header.ReadU32(&length).ok() || !header.ReadU32(&crc).ok()) {
    return RecordParse::kNeedMore;
  }
  if (length > max_payload) {
    if (error != nullptr) {
      *error = "record length exceeds cap (corrupt header)";
    }
    return RecordParse::kBad;
  }
  const size_t body_start = pos + header.position();
  if (length > bytes.size() - body_start) return RecordParse::kNeedMore;
  const std::string_view body = bytes.substr(body_start, length);
  if (Crc32(body) != crc) {
    if (error != nullptr) *error = "record checksum mismatch";
    return RecordParse::kBad;
  }
  if (payload != nullptr) *payload = body;
  if (consumed != nullptr) *consumed = header.position() + length;
  return RecordParse::kRecord;
}

common::Result<ScanResult> ScanRecords(std::string_view bytes) {
  ScanResult result;
  if (bytes.size() < kMagic.size()) {
    // Torn inside the header: recover to an empty journal.  An empty file
    // is trivially clean; a partial magic that matches so far is a torn
    // header, anything else is not a journal.
    if (bytes != kMagic.substr(0, bytes.size())) {
      return common::Status::InvalidArgument("not a journal: bad magic");
    }
    result.clean = bytes.empty();
    if (!result.clean) result.tail_error = "torn file header";
    return result;
  }
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return common::Status::InvalidArgument("not a journal: bad magic");
  }

  size_t pos = kMagic.size();
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    std::string_view payload;
    size_t consumed = 0;
    std::string error;
    const RecordParse parse = ParseRecordAt(bytes, pos, kMaxRecordPayload,
                                            &payload, &consumed, &error);
    if (parse == RecordParse::kNeedMore) {
      result.clean = false;
      result.tail_error =
          bytes.size() - pos < 8 ? "torn record header" : "torn record body";
      break;
    }
    if (parse == RecordParse::kBad) {
      result.clean = false;
      result.tail_error = std::move(error);
      break;
    }
    result.records.push_back(payload);
    pos += consumed;
    result.valid_bytes = pos;
  }
  return result;
}

std::vector<size_t> RecordBoundaries(std::string_view bytes) {
  std::vector<size_t> boundaries;
  common::Result<ScanResult> scan = ScanRecords(bytes);
  if (!scan.ok()) return boundaries;
  if (bytes.size() < kMagic.size()) return boundaries;
  boundaries.push_back(kMagic.size());
  size_t pos = kMagic.size();
  for (const std::string_view record : scan->records) {
    pos += 8 + record.size();  // u32 length + u32 crc + payload
    boundaries.push_back(pos);
  }
  return boundaries;
}

}  // namespace dur
}  // namespace histkanon
