// Little-endian binary encoding primitives for the durability layer
// (journal records and state snapshots).
//
// Encoding is explicitly byte-shifted (not memcpy of host integers), so a
// journal written on one platform replays on any other.  Doubles travel as
// their raw IEEE-754 bit pattern, which makes snapshot/restore byte-exact:
// the restored server computes with the very same values the crashed one
// held, the property the kill-point differential test asserts.
//
// ByteReader returns Status instead of asserting: journal bytes come from
// disk and may be torn or corrupted, so every decoder treats truncation as
// a recoverable error, never UB.

#ifndef HISTKANON_SRC_DUR_ENCODE_H_
#define HISTKANON_SRC_DUR_ENCODE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace histkanon {
namespace dur {

/// \brief Appends little-endian primitives to an owned byte string.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t value) { bytes_.push_back(static_cast<char>(value)); }

  void PutU32(uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<char>((value >> shift) & 0xff));
    }
  }

  void PutU64(uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<char>((value >> shift) & 0xff));
    }
  }

  void PutI32(int32_t value) { PutU32(static_cast<uint32_t>(value)); }
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  void PutBool(bool value) { PutU8(value ? 1 : 0); }

  void PutDouble(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "IEEE-754 binary64");
    std::memcpy(&bits, &value, sizeof(bits));
    PutU64(bits);
  }

  /// Length-prefixed byte string (u64 length + raw bytes).
  void PutString(std::string_view value) {
    PutU64(value.size());
    bytes_.append(value.data(), value.size());
  }

  const std::string& bytes() const { return bytes_; }
  std::string&& TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// \brief Status-returning reader over a byte view; every Read* fails with
/// OutOfRange on truncation instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  common::Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return common::Status::OK();
  }

  common::Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
               << shift;
    }
    *out = value;
    return common::Status::OK();
  }

  common::Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
               << shift;
    }
    *out = value;
    return common::Status::OK();
  }

  common::Status ReadI32(int32_t* out) {
    uint32_t raw = 0;
    HISTKANON_RETURN_NOT_OK(ReadU32(&raw));
    *out = static_cast<int32_t>(raw);
    return common::Status::OK();
  }

  common::Status ReadI64(int64_t* out) {
    uint64_t raw = 0;
    HISTKANON_RETURN_NOT_OK(ReadU64(&raw));
    *out = static_cast<int64_t>(raw);
    return common::Status::OK();
  }

  common::Status ReadBool(bool* out) {
    uint8_t raw = 0;
    HISTKANON_RETURN_NOT_OK(ReadU8(&raw));
    if (raw > 1) return common::Status::InvalidArgument("bool byte not 0/1");
    *out = raw != 0;
    return common::Status::OK();
  }

  common::Status ReadDouble(double* out) {
    uint64_t bits = 0;
    HISTKANON_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return common::Status::OK();
  }

  common::Status ReadString(std::string* out) {
    uint64_t length = 0;
    HISTKANON_RETURN_NOT_OK(ReadU64(&length));
    if (length > remaining()) return Truncated("string body");
    out->assign(bytes_.data() + pos_, length);
    pos_ += length;
    return common::Status::OK();
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  common::Status Truncated(const char* what) const {
    return common::Status::OutOfRange(std::string("truncated ") + what);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace dur
}  // namespace histkanon

#endif  // HISTKANON_SRC_DUR_ENCODE_H_
