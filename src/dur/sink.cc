#include "src/dur/sink.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/fail/failpoint.h"
#include "src/fail/sites.h"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace histkanon {
namespace dur {

namespace {

std::string ErrnoSuffix() {
  if (errno == 0) return "";
  std::string out = " (";
  out += std::strerror(errno);
  out += ")";
  return out;
}

}  // namespace

common::Result<std::unique_ptr<FileSink>> FileSink::Open(std::string path) {
  HISTKANON_FAILPOINT_RETURN(fail::kDurFileOpen);
  errno = 0;
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return common::Status::NotFound("cannot open journal file '" + path +
                                    "' for writing" + ErrnoSuffix());
  }
  return std::unique_ptr<FileSink>(new FileSink(file, std::move(path)));
}

common::Result<std::unique_ptr<FileSink>> FileSink::OpenAppend(
    std::string path) {
  HISTKANON_FAILPOINT_RETURN(fail::kDurFileOpen);
  errno = 0;
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return common::Status::NotFound("cannot open journal file '" + path +
                                    "' for appending" + ErrnoSuffix());
  }
  return std::unique_ptr<FileSink>(new FileSink(file, std::move(path)));
}

FileSink::FileSink(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

common::Status FileSink::Append(std::string_view bytes) {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("journal sink '" + path_ +
                                              "' is closed");
  }
  HISTKANON_FAILPOINT_RETURN(fail::kDurFileWrite);
  // An injected short write puts a REAL torn prefix in the file — the
  // recovery scan must discard it by CRC, not by trusting the writer.
  const size_t keep = HISTKANON_FAILPOINT_CLIP(fail::kDurFilePartialWrite,
                                               bytes.size());
  errno = 0;
  const size_t wrote =
      keep == 0 ? 0 : std::fwrite(bytes.data(), 1, keep, file_);
  if (wrote != bytes.size()) {
    return common::Status::Internal(
        "short write to journal file '" + path_ + "': " +
        std::to_string(wrote) + " of " + std::to_string(bytes.size()) +
        " bytes" + ErrnoSuffix());
  }
  return common::Status::OK();
}

common::Status FileSink::Sync() {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("journal sink '" + path_ +
                                              "' is closed");
  }
  HISTKANON_FAILPOINT_RETURN(fail::kDurFileFlush);
  errno = 0;
  if (std::fflush(file_) != 0) {
    return common::Status::Internal("fflush failed on journal file '" +
                                    path_ + "'" + ErrnoSuffix());
  }
  HISTKANON_FAILPOINT_RETURN(fail::kDurFileSync);
#if !defined(_WIN32)
  errno = 0;
  if (fsync(fileno(file_)) != 0) {
    return common::Status::Internal("fsync failed on journal file '" + path_ +
                                    "'" + ErrnoSuffix());
  }
#endif
  return common::Status::OK();
}

common::Status FileSink::Close() {
  if (file_ == nullptr) return common::Status::OK();
  common::Status synced = Sync();
  errno = 0;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (!synced.ok()) return synced;
  if (rc != 0) {
    return common::Status::Internal("fclose failed on journal file '" +
                                    path_ + "'" + ErrnoSuffix());
  }
  return common::Status::OK();
}

}  // namespace dur
}  // namespace histkanon
