// Journal byte sinks: where TsJournal streams its records as they are
// appended (in addition to its in-memory buffer).
//
// FileSink is the real-I/O path, written against C stdio (fopen/fwrite/
// fflush + POSIX fsync) with every syscall result checked and surfaced as
// a typed common::Status, and a failpoint at each fault boundary
// (src/fail/sites.h: dur.file.*) so tests can inject disk-full, short
// writes, and torn syncs deterministically.

#ifndef HISTKANON_SRC_DUR_SINK_H_
#define HISTKANON_SRC_DUR_SINK_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/status.h"

namespace histkanon {
namespace dur {

/// \brief Destination for journal bytes.  Append-only; Sync() makes
/// everything appended so far durable.
class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// Appends `bytes` atomically from the JOURNAL's point of view: on a
  /// non-OK return the journal treats the record as not written, even if
  /// a prefix physically reached the medium (a torn tail the recovery
  /// scan discards).
  virtual common::Status Append(std::string_view bytes) = 0;

  /// Flushes buffered bytes to the medium.
  virtual common::Status Sync() = 0;
};

/// \brief In-memory sink for tests (no failpoints: it models a perfect
/// medium; use FileSink or the dur.journal.* sites to inject faults).
class MemorySink final : public JournalSink {
 public:
  common::Status Append(std::string_view bytes) override {
    bytes_.append(bytes);
    return common::Status::OK();
  }
  common::Status Sync() override { return common::Status::OK(); }

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// \brief Append-only file sink over C stdio.  Not thread-safe.
class FileSink final : public JournalSink {
 public:
  /// Opens (truncating) `path` for writing.
  static common::Result<std::unique_ptr<FileSink>> Open(std::string path);

  /// Opens `path` for appending WITHOUT truncating — the reopen a journal
  /// compaction needs after renaming the copied-forward file into place
  /// (truncating there would destroy the snapshot record just made
  /// durable).
  static common::Result<std::unique_ptr<FileSink>> OpenAppend(
      std::string path);

  ~FileSink() override;  // closes, ignoring errors; call Close() to check

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  /// Appends `bytes`; an injected partial write leaves a real torn prefix
  /// in the file and reports the short count.
  common::Status Append(std::string_view bytes) override;

  /// fflush + fsync.
  common::Status Sync() override;

  /// Flushes and closes; idempotent.  Append/Sync after Close fail.
  common::Status Close();

  const std::string& path() const { return path_; }

 private:
  FileSink(std::FILE* file, std::string path);

  std::FILE* file_;
  std::string path_;
};

}  // namespace dur
}  // namespace histkanon

#endif  // HISTKANON_SRC_DUR_SINK_H_
