// Checksummed record framing for the write-ahead journal.
//
// Layout:
//
//   file   := magic record*              magic = "HKDURJL1" (8 bytes)
//   record := u32 length | u32 crc32(payload) | payload
//
// The framing layer is payload-agnostic; the TS-specific event/snapshot
// codec lives in src/ts/durability.h.  What it guarantees:
//
//  - a TORN TAIL (the file ends mid-record, the usual crash shape) is
//    detected by the length prefix running past the end of the file;
//  - a CORRUPTED record (bit rot, partial sector write) is detected by the
//    CRC mismatch;
//  - in both cases the scan stops at the last intact record and reports
//    exactly how many bytes were valid, so recovery replays the intact
//    prefix and discards the damage — never replays garbage.

#ifndef HISTKANON_SRC_DUR_FRAMING_H_
#define HISTKANON_SRC_DUR_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace histkanon {
namespace dur {

/// The 8-byte file magic every journal starts with.
std::string_view JournalMagic();

/// Upper bound on a single record's payload (64 MiB).  A length prefix
/// beyond it is treated as corruption, bounding allocations when scanning
/// hostile bytes.
inline constexpr uint32_t kMaxRecordPayload = 64u << 20;

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) of `bytes`.
uint32_t Crc32(std::string_view bytes);

/// Appends the file magic to an empty journal buffer.
void AppendMagic(std::string* out);

/// Appends one framed record (length + crc + payload) to `out`.
void AppendRecord(std::string* out, std::string_view payload);

/// Outcome of an incremental single-record parse (ParseRecordAt).
enum class RecordParse : uint8_t {
  kRecord = 0,    ///< A whole intact record starts at `pos`.
  kNeedMore = 1,  ///< The bytes end mid-record (torn tail / short read).
  kBad = 2,       ///< Corruption: length over the cap or CRC mismatch.
};

/// Parses ONE framed record starting at `pos`.  The incremental primitive
/// shared by the whole-buffer journal scan below and the streaming wire
/// decoder (src/net/framing.h): on kRecord, `*payload` views the record
/// payload and `*consumed` is the full record size (header + payload); on
/// kBad, `*error` names the corruption.  `max_payload` bounds allocations
/// when parsing hostile bytes (journals use kMaxRecordPayload; the wire
/// uses a much smaller per-frame cap).
RecordParse ParseRecordAt(std::string_view bytes, size_t pos,
                          uint32_t max_payload, std::string_view* payload,
                          size_t* consumed, std::string* error);

/// \brief Result of scanning a (possibly damaged) journal byte string.
struct ScanResult {
  /// Payloads of the intact prefix records, in file order.  Views into the
  /// scanned bytes — valid only while the input outlives the result.
  std::vector<std::string_view> records;
  /// Bytes of the intact prefix (magic + intact records).  Truncating the
  /// file here yields a clean journal.
  size_t valid_bytes = 0;
  /// True when the file ended exactly on a record boundary.
  bool clean = true;
  /// Human-readable reason the scan stopped early (empty when clean).
  std::string tail_error;
};

/// Scans `bytes` front to back, stopping at the first torn or corrupted
/// record.  Fails with InvalidArgument only when the bytes are not a
/// journal at all (full magic present but wrong); a mere prefix of the
/// magic — the file torn inside the header — scans as zero records with
/// clean=false.
common::Result<ScanResult> ScanRecords(std::string_view bytes);

/// Every crash-consistent cut point of `bytes`: the end of the magic and
/// the end of each intact record, in increasing order.  Truncating the
/// journal at any returned offset yields a clean journal; the kill-point
/// harness iterates these.
std::vector<size_t> RecordBoundaries(std::string_view bytes);

}  // namespace dur
}  // namespace histkanon

#endif  // HISTKANON_SRC_DUR_FRAMING_H_
