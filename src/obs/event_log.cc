#include "src/obs/event_log.h"

#include "src/common/str.h"

namespace histkanon {
namespace obs {

common::Result<std::vector<std::map<std::string, std::string>>>
ReadEventLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return common::Status::NotFound(
        common::Format("cannot open event log %s", path.c_str()));
  }
  std::vector<std::map<std::string, std::string>> events;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    common::Result<std::map<std::string, std::string>> parsed =
        ParseFlatJson(line);
    if (!parsed.ok()) {
      return common::Status::InvalidArgument(
          common::Format("%s line %zu: %s", path.c_str(), line_number,
                         parsed.status().message().c_str()));
    }
    events.push_back(std::move(parsed).ValueOrDie());
  }
  return events;
}

}  // namespace obs
}  // namespace histkanon
