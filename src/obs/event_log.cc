#include "src/obs/event_log.h"

#include <cstdio>
#include <utility>

#include "src/common/str.h"

namespace histkanon {
namespace obs {
namespace {

std::string GenerationPath(const std::string& path, size_t generation) {
  return common::Format("%s.%zu", path.c_str(), generation);
}

bool FileExists(const std::string& path) {
  std::ifstream probe(path);
  return probe.is_open();
}

}  // namespace

RotatingFileEventSink::RotatingFileEventSink(
    RotatingFileEventSinkOptions options)
    : options_(std::move(options)),
      out_(options_.path, std::ios::trunc) {}

void RotatingFileEventSink::Append(const std::string& line) {
  if (!out_.is_open()) return;
  const uint64_t record_bytes = line.size() + 1;
  // Rotate BEFORE the append that would overflow, so no file exceeds the
  // cap by more than one oversized record (which must land somewhere).
  if (live_bytes_ > 0 &&
      live_bytes_ + record_bytes > options_.max_file_bytes) {
    Rotate();
    if (!out_.is_open()) return;
  }
  out_ << line << '\n';
  live_bytes_ += record_bytes;
  total_bytes_ += record_bytes;
}

void RotatingFileEventSink::Rotate() {
  out_.flush();
  out_.close();
  if (options_.max_rotated_files == 0) {
    // Truncate in place: reopening with trunc discards the old contents.
    out_.open(options_.path, std::ios::trunc);
  } else {
    // Shift generations oldest-first so each rename target is free, then
    // slot the live file in as generation 1.
    std::remove(
        GenerationPath(options_.path, options_.max_rotated_files).c_str());
    for (size_t generation = options_.max_rotated_files; generation > 1;
         --generation) {
      std::rename(GenerationPath(options_.path, generation - 1).c_str(),
                  GenerationPath(options_.path, generation).c_str());
    }
    std::rename(options_.path.c_str(),
                GenerationPath(options_.path, 1).c_str());
    out_.open(options_.path, std::ios::trunc);
  }
  live_bytes_ = 0;
  ++rotations_;
}

common::Result<EventLogReadResult> ReadEventLog(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return common::Status::NotFound(
        common::Format("cannot open event log %s", path.c_str()));
  }
  // Collect non-empty lines first: whether a malformed line is tolerable
  // depends on whether anything valid FOLLOWS it.
  std::vector<std::pair<size_t, std::string>> lines;  // line number, text
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    lines.emplace_back(line_number, std::move(line));
  }

  EventLogReadResult result;
  result.events.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    common::Result<std::map<std::string, std::string>> parsed =
        ParseFlatJson(lines[i].second);
    if (!parsed.ok()) {
      if (i + 1 == lines.size()) {
        // Torn tail: a crash mid-append leaves exactly one malformed
        // final line.  Drop it and report, rather than failing the read.
        result.clean = false;
        result.tail_error =
            common::Format("%s line %zu: %s", path.c_str(), lines[i].first,
                           parsed.status().message().c_str());
        break;
      }
      // Malformed with valid records after it: corruption, not a torn
      // append — refuse.
      return common::Status::InvalidArgument(
          common::Format("%s line %zu: %s", path.c_str(), lines[i].first,
                         parsed.status().message().c_str()));
    }
    result.events.push_back(std::move(parsed).ValueOrDie());
  }
  return result;
}

common::Result<std::vector<std::map<std::string, std::string>>>
ReadEventLogFile(const std::string& path) {
  common::Result<EventLogReadResult> result = ReadEventLog(path);
  if (!result.ok()) return result.status();
  return std::move(result->events);
}

common::Result<EventLogReadResult> ReadRotatedEventLog(
    const std::string& path) {
  // Find the oldest surviving generation: generations are contiguous from
  // 1 upward (retention deletes from the old end), so walk up until the
  // first gap.
  size_t oldest = 0;
  while (FileExists(GenerationPath(path, oldest + 1))) ++oldest;

  EventLogReadResult stitched;
  bool found_any = false;
  for (size_t generation = oldest; generation > 0; --generation) {
    const std::string generation_path = GenerationPath(path, generation);
    common::Result<EventLogReadResult> part = ReadEventLog(generation_path);
    if (!part.ok()) return part.status();
    found_any = true;
    if (!part->clean) {
      stitched.clean = false;
      stitched.tail_error = part->tail_error;
    }
    for (auto& event : part->events) {
      stitched.events.push_back(std::move(event));
    }
  }
  if (FileExists(path)) {
    common::Result<EventLogReadResult> live = ReadEventLog(path);
    if (!live.ok()) return live.status();
    found_any = true;
    if (!live->clean) {
      stitched.clean = false;
      stitched.tail_error = live->tail_error;
    }
    for (auto& event : live->events) {
      stitched.events.push_back(std::move(event));
    }
  }
  if (!found_any) {
    return common::Status::NotFound(
        common::Format("no event log found at %s (or rotated generations)",
                       path.c_str()));
  }
  return stitched;
}

}  // namespace obs
}  // namespace histkanon
