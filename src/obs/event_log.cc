#include "src/obs/event_log.h"

#include <utility>

#include "src/common/str.h"

namespace histkanon {
namespace obs {

common::Result<EventLogReadResult> ReadEventLog(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return common::Status::NotFound(
        common::Format("cannot open event log %s", path.c_str()));
  }
  // Collect non-empty lines first: whether a malformed line is tolerable
  // depends on whether anything valid FOLLOWS it.
  std::vector<std::pair<size_t, std::string>> lines;  // line number, text
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    lines.emplace_back(line_number, std::move(line));
  }

  EventLogReadResult result;
  result.events.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    common::Result<std::map<std::string, std::string>> parsed =
        ParseFlatJson(lines[i].second);
    if (!parsed.ok()) {
      if (i + 1 == lines.size()) {
        // Torn tail: a crash mid-append leaves exactly one malformed
        // final line.  Drop it and report, rather than failing the read.
        result.clean = false;
        result.tail_error =
            common::Format("%s line %zu: %s", path.c_str(), lines[i].first,
                           parsed.status().message().c_str());
        break;
      }
      // Malformed with valid records after it: corruption, not a torn
      // append — refuse.
      return common::Status::InvalidArgument(
          common::Format("%s line %zu: %s", path.c_str(), lines[i].first,
                         parsed.status().message().c_str()));
    }
    result.events.push_back(std::move(parsed).ValueOrDie());
  }
  return result;
}

common::Result<std::vector<std::map<std::string, std::string>>>
ReadEventLogFile(const std::string& path) {
  common::Result<EventLogReadResult> result = ReadEventLog(path);
  if (!result.ok()) return result.status();
  return std::move(result->events);
}

}  // namespace obs
}  // namespace histkanon
