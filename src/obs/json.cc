#include "src/obs/json.h"

#include <cmath>

#include "src/common/str.h"

namespace histkanon {
namespace obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return common::Format("%lld", static_cast<long long>(value));
  }
  return common::Format("%.9g", value);
}

JsonObject& JsonObject::SetString(std::string key, std::string_view value) {
  fields_.emplace_back(std::move(key), "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::SetNumber(std::string key, double value) {
  fields_.emplace_back(std::move(key), JsonNumber(value));
  return *this;
}

JsonObject& JsonObject::SetInt(std::string key, int64_t value) {
  fields_.emplace_back(std::move(key),
                       common::Format("%lld", static_cast<long long>(value)));
  return *this;
}

JsonObject& JsonObject::SetUint(std::string key, uint64_t value) {
  fields_.emplace_back(
      std::move(key),
      common::Format("%llu", static_cast<unsigned long long>(value)));
  return *this;
}

JsonObject& JsonObject::SetBool(std::string key, bool value) {
  fields_.emplace_back(std::move(key), value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::SetRaw(std::string key, std::string raw_json) {
  fields_.emplace_back(std::move(key), std::move(raw_json));
  return *this;
}

std::string JsonObject::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(fields_[i].first);
    out += "\":";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

namespace {

// Cursor over the input with the few scanning primitives the flat parser
// needs.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos;
    }
  }
};

common::Status Malformed(const Cursor& cursor, const char* what) {
  return common::Status::InvalidArgument(
      common::Format("malformed JSON at offset %zu: %s", cursor.pos, what));
}

// Parses a quoted string starting at the opening quote; returns the
// unescaped content and leaves the cursor past the closing quote.
common::Result<std::string> ParseString(Cursor* cursor) {
  if (cursor->AtEnd() || cursor->Peek() != '"') {
    return Malformed(*cursor, "expected '\"'");
  }
  ++cursor->pos;
  std::string out;
  while (!cursor->AtEnd()) {
    const char c = cursor->text[cursor->pos++];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cursor->AtEnd()) break;
    const char escaped = cursor->text[cursor->pos++];
    switch (escaped) {
      case '"':
      case '\\':
      case '/':
        out += escaped;
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (cursor->pos + 4 > cursor->text.size()) {
          return Malformed(*cursor, "truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cursor->text[cursor->pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code += static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code += static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code += static_cast<unsigned>(h - 'A' + 10);
          } else {
            return Malformed(*cursor, "bad \\u escape digit");
          }
        }
        // Flat event records only carry ASCII control escapes; anything
        // beyond Latin-1 is preserved as '?' rather than re-encoded.
        out += code < 0x100 ? static_cast<char>(code) : '?';
        break;
      }
      default:
        return Malformed(*cursor, "unknown escape");
    }
  }
  return Malformed(*cursor, "unterminated string");
}

// Captures a nested object/array verbatim, tracking brace depth and
// skipping over strings.
common::Result<std::string> ParseNestedRaw(Cursor* cursor) {
  const size_t start = cursor->pos;
  const char open = cursor->Peek();
  const char close = open == '{' ? '}' : ']';
  int depth = 0;
  while (!cursor->AtEnd()) {
    const char c = cursor->Peek();
    if (c == '"') {
      HISTKANON_ASSIGN_OR_RETURN(const std::string skipped,
                                 ParseString(cursor));
      (void)skipped;
      continue;
    }
    ++cursor->pos;
    if (c == open) ++depth;
    if (c == close) {
      --depth;
      if (depth == 0) {
        return std::string(cursor->text.substr(start, cursor->pos - start));
      }
    }
  }
  return Malformed(*cursor, "unterminated nesting");
}

// Scans a number / true / false / null literal.
common::Result<std::string> ParseLiteral(Cursor* cursor) {
  const size_t start = cursor->pos;
  while (!cursor->AtEnd()) {
    const char c = cursor->Peek();
    if (c == ',' || c == '}' || c == ' ' || c == '\t' || c == '\n' ||
        c == '\r') {
      break;
    }
    ++cursor->pos;
  }
  if (cursor->pos == start) return Malformed(*cursor, "expected value");
  return std::string(cursor->text.substr(start, cursor->pos - start));
}

}  // namespace

common::Result<std::map<std::string, std::string>> ParseFlatJson(
    std::string_view line) {
  Cursor cursor{line};
  cursor.SkipSpace();
  if (cursor.AtEnd() || cursor.Peek() != '{') {
    return Malformed(cursor, "expected '{'");
  }
  ++cursor.pos;
  std::map<std::string, std::string> fields;
  cursor.SkipSpace();
  if (!cursor.AtEnd() && cursor.Peek() == '}') {
    ++cursor.pos;
    return fields;
  }
  while (true) {
    cursor.SkipSpace();
    HISTKANON_ASSIGN_OR_RETURN(std::string key, ParseString(&cursor));
    cursor.SkipSpace();
    if (cursor.AtEnd() || cursor.Peek() != ':') {
      return Malformed(cursor, "expected ':'");
    }
    ++cursor.pos;
    cursor.SkipSpace();
    if (cursor.AtEnd()) return Malformed(cursor, "expected value");
    std::string value;
    if (cursor.Peek() == '"') {
      HISTKANON_ASSIGN_OR_RETURN(value, ParseString(&cursor));
    } else if (cursor.Peek() == '{' || cursor.Peek() == '[') {
      HISTKANON_ASSIGN_OR_RETURN(value, ParseNestedRaw(&cursor));
    } else {
      HISTKANON_ASSIGN_OR_RETURN(value, ParseLiteral(&cursor));
    }
    fields[std::move(key)] = std::move(value);
    cursor.SkipSpace();
    if (cursor.AtEnd()) return Malformed(cursor, "unterminated object");
    if (cursor.Peek() == ',') {
      ++cursor.pos;
      continue;
    }
    if (cursor.Peek() == '}') {
      ++cursor.pos;
      return fields;
    }
    return Malformed(cursor, "expected ',' or '}'");
  }
}

}  // namespace obs
}  // namespace histkanon
