// Resource accounting: per-subsystem byte gauges plus process RSS
// sampling.  Subsystems register PROBES (callables returning their
// current footprint in bytes); Collect() polls every probe and publishes
// the values as `res_<name>_bytes` gauges in the shared obs::Registry, so
// the telemetry endpoint and soak harnesses (ROADMAP item 4's "RSS flat"
// gate) read one coherent inventory: PHL samples, journal file, snapshot
// blobs, anchor-cache entries, event-log size, and the process RSS.
//
// Probes run on the Collect() caller's thread and must therefore be safe
// to call from it — in practice Collect() is driven by the thread that
// owns the probed structures (or after workers quiesce), matching the
// rest of the repo's single-writer discipline.

#ifndef HISTKANON_SRC_OBS_RESOURCE_H_
#define HISTKANON_SRC_OBS_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace histkanon {
namespace obs {

/// Current resident set size of this process in bytes, via
/// /proc/self/statm.  Returns 0 where that is unavailable.
uint64_t SampleRssBytes();

/// \brief Named byte-probe registry publishing into an obs::Registry.
class ResourceAccountant {
 public:
  /// Gauges are created in `registry` as `res_<name>_bytes`.
  explicit ResourceAccountant(Registry* registry);
  ResourceAccountant(const ResourceAccountant&) = delete;
  ResourceAccountant& operator=(const ResourceAccountant&) = delete;

  /// Registers a probe; re-registering a name replaces its probe (the
  /// gauge handle is reused).
  void RegisterProbe(const std::string& name,
                     std::function<uint64_t()> probe);

  /// Publishes a one-off measurement without a standing probe.
  void SetBytes(const std::string& name, uint64_t bytes);

  /// Polls every probe plus the process RSS (`res_rss_bytes`) and writes
  /// the gauges.  Returns the number of probes sampled.
  size_t Collect();

  /// name -> bytes as of the last Collect()/SetBytes, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// The snapshot as one flat JSON object.
  std::string ToJson() const;

 private:
  Gauge* GaugeFor(const std::string& name);

  Registry* registry_;
  mutable std::mutex mu_;
  // name -> (probe, gauge); insertion-ordered like registration.
  std::vector<std::pair<std::string,
                        std::pair<std::function<uint64_t()>, Gauge*>>>
      probes_;
  std::vector<std::pair<std::string, uint64_t>> last_;  // sorted by name
};

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_RESOURCE_H_
