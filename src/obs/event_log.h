// Structured event log: the trusted server appends one JSONL record per
// processed request through a pluggable EventSink.  Sinks are intentionally
// dumb (they persist already-rendered lines) so the serving path controls
// the record schema and sinks control the medium (memory for tests, a
// stream or file for offline replay/inspection).

#ifndef HISTKANON_SRC_OBS_EVENT_LOG_H_
#define HISTKANON_SRC_OBS_EVENT_LOG_H_

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/json.h"

namespace histkanon {
namespace obs {

/// \brief Destination for JSONL event records.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Persists one record (a rendered JSON object, no trailing newline).
  virtual void Append(const std::string& line) = 0;
};

/// \brief In-memory sink for tests and tools.
class VectorEventSink : public EventSink {
 public:
  void Append(const std::string& line) override { lines_.push_back(line); }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

/// \brief Writes one line per record to a caller-owned stream.
class StreamEventSink : public EventSink {
 public:
  /// `os` must outlive the sink.
  explicit StreamEventSink(std::ostream* os) : os_(os) {}
  void Append(const std::string& line) override { *os_ << line << '\n'; }

 private:
  std::ostream* os_;
};

/// \brief Appends records to a file (truncates on open).
class FileEventSink : public EventSink {
 public:
  explicit FileEventSink(const std::string& path)
      : out_(path, std::ios::trunc) {}

  /// False when the file could not be opened; appends are then dropped.
  bool ok() const { return out_.is_open(); }

  void Append(const std::string& line) override {
    if (out_.is_open()) out_ << line << '\n';
  }

  /// Flushes buffered records to disk.
  void Flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

/// Reads a JSONL event file back as per-line flat field maps (see
/// obs::ParseFlatJson); blank lines are skipped, the first malformed line
/// fails the whole read.
common::Result<std::vector<std::map<std::string, std::string>>>
ReadEventLogFile(const std::string& path);

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_EVENT_LOG_H_
