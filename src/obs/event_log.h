// Structured event log: the trusted server appends one JSONL record per
// processed request through a pluggable EventSink.  Sinks are intentionally
// dumb (they persist already-rendered lines) so the serving path controls
// the record schema and sinks control the medium (memory for tests, a
// stream or file for offline replay/inspection).

#ifndef HISTKANON_SRC_OBS_EVENT_LOG_H_
#define HISTKANON_SRC_OBS_EVENT_LOG_H_

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/json.h"

namespace histkanon {
namespace obs {

/// \brief Destination for JSONL event records.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Persists one record (a rendered JSON object, no trailing newline).
  virtual void Append(const std::string& line) = 0;

  /// Bytes this sink has accepted so far, newlines included — the event
  /// log's entry in the resource-accounting inventory.  Sinks that cannot
  /// measure report 0.
  virtual uint64_t bytes_written() const { return 0; }
};

/// \brief In-memory sink for tests and tools.
class VectorEventSink : public EventSink {
 public:
  void Append(const std::string& line) override {
    bytes_ += line.size() + 1;
    lines_.push_back(line);
  }
  uint64_t bytes_written() const override { return bytes_; }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
  uint64_t bytes_ = 0;
};

/// \brief Writes one line per record to a caller-owned stream.
class StreamEventSink : public EventSink {
 public:
  /// `os` must outlive the sink.
  explicit StreamEventSink(std::ostream* os) : os_(os) {}
  void Append(const std::string& line) override { *os_ << line << '\n'; }

 private:
  std::ostream* os_;
};

/// \brief Appends records to a file (truncates on open).
class FileEventSink : public EventSink {
 public:
  explicit FileEventSink(const std::string& path)
      : out_(path, std::ios::trunc) {}

  /// False when the file could not be opened; appends are then dropped.
  bool ok() const { return out_.is_open(); }

  void Append(const std::string& line) override {
    if (!out_.is_open()) return;
    out_ << line << '\n';
    bytes_ += line.size() + 1;
  }

  uint64_t bytes_written() const override { return bytes_; }

  /// Flushes buffered records to disk.
  void Flush() { out_.flush(); }

 private:
  std::ofstream out_;
  uint64_t bytes_ = 0;
};

/// \brief Knobs for RotatingFileEventSink.
struct RotatingFileEventSinkOptions {
  /// Live file path; rotated generations live at `path.1` (newest) through
  /// `path.max_rotated_files` (oldest).
  std::string path;
  /// Rotate before an append would push the live file past this size.
  uint64_t max_file_bytes = 1 << 20;
  /// Rotated generations kept on disk; older ones are deleted.  Zero means
  /// rotation truncates in place (only the live file ever exists).
  size_t max_rotated_files = 3;
};

/// \brief FileEventSink with size-based rotation and bounded retention.
///
/// When an append would push the live file past `max_file_bytes`, the sink
/// closes it, shifts `path.i` to `path.i+1` (dropping the generation past
/// `max_rotated_files`), renames the live file to `path.1`, and reopens
/// `path` truncated.  Total disk footprint is therefore bounded by
/// `(max_rotated_files + 1) * max_file_bytes` plus one oversized record.
/// Readers use ReadRotatedEventLog to stitch the generations back together.
class RotatingFileEventSink : public EventSink {
 public:
  explicit RotatingFileEventSink(RotatingFileEventSinkOptions options);

  /// False when the live file could not be opened; appends are then dropped.
  bool ok() const { return out_.is_open(); }

  void Append(const std::string& line) override;

  /// Bytes accepted across ALL generations, including deleted ones — the
  /// resource-accounting inventory wants lifetime throughput, not the
  /// (bounded) on-disk footprint.
  uint64_t bytes_written() const override { return total_bytes_; }

  /// Flushes buffered records of the live file to disk.
  void Flush() { out_.flush(); }

  /// Times the live file has been rotated out.
  uint64_t rotations() const { return rotations_; }

  /// Bytes currently in the live file.
  uint64_t live_bytes() const { return live_bytes_; }

 private:
  void Rotate();

  RotatingFileEventSinkOptions options_;
  std::ofstream out_;
  uint64_t live_bytes_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t rotations_ = 0;
};

/// \brief Result of a tolerant event-log read.
struct EventLogReadResult {
  std::vector<std::map<std::string, std::string>> events;
  /// False when the FINAL non-empty line was torn (malformed) and was
  /// dropped — the expected shape of a crash mid-append.
  bool clean = true;
  /// The parse error of the dropped tail line (empty when clean).
  std::string tail_error;
};

/// Reads a JSONL event file back as per-line flat field maps (see
/// obs::ParseFlatJson); blank lines are skipped.  A malformed FINAL line
/// — the torn tail a crash mid-append leaves behind — is dropped and
/// reported via `clean`/`tail_error` instead of failing the read; a
/// malformed line with valid records after it still fails (that is
/// corruption, not truncation).
common::Result<EventLogReadResult> ReadEventLog(const std::string& path);

/// Compatibility wrapper over ReadEventLog that returns the events alone
/// (a torn tail is tolerated and silently dropped).
common::Result<std::vector<std::map<std::string, std::string>>>
ReadEventLogFile(const std::string& path);

/// Reads a rotated event-log family (see RotatingFileEventSink) oldest
/// generation first, ending with the live file, and returns the stitched
/// stream.  Missing generations are skipped — retention deletes the oldest
/// ones by design.  A torn tail in ANY generation is tolerated per file
/// (a crash can land mid-append before or after a rotation shift) and
/// reported through `clean`/`tail_error`.  NotFound only when no file of
/// the family exists at all.
common::Result<EventLogReadResult> ReadRotatedEventLog(
    const std::string& path);

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_EVENT_LOG_H_
