#include "src/obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace histkanon {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(upper_bounds.empty() ? DefaultLatencyBounds()
                                   : std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  // Empty bounds would make Quantile's bounds_.back() fallback UB; in
  // release builds (assert compiled out) fall back to the latency bounds
  // instead of corrupting memory.
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

namespace {

// Shared by Histogram::Quantile and HistogramSnapshot::Quantile.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Bucket i covers (lower, upper]; interpolate by the rank's position
    // inside the bucket's count.
    if (i >= bounds.size()) return bounds.back();  // overflow bucket
    const double upper = bounds[i];
    double lower;
    if (i > 0) {
      lower = bounds[i - 1];
    } else if (upper > 0.0) {
      // Latency-style histograms: the first bucket is (0, upper].
      lower = 0.0;
    } else {
      // upper <= 0: anchoring at 0 would make the bucket zero-width (or
      // inverted) and every quantile would degenerate to `upper`.
      // Synthesize a finite width: the next bucket's width, else |upper|,
      // else 1.
      double width = 1.0;
      if (bounds.size() > 1) {
        width = bounds[1] - bounds[0];
      } else if (upper < 0.0) {
        width = -upper;
      }
      lower = upper - width;
    }
    const double fraction =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.back();
}

}  // namespace

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(bounds_, bucket_counts(), q);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = bounds_;
  snap.bucket_counts = bucket_counts();
  // count is DERIVED from the one bucket pass — not loaded from count_ —
  // so le="+Inf" == _count holds in every snapshot (the contract).
  for (const uint64_t c : snap.bucket_counts) snap.count += c;
  snap.sum = sum();
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (upper_bounds.empty()) return 0.0;
  return QuantileFromBuckets(upper_bounds, bucket_counts, q);
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1e-6,   2.5e-6, 5e-6, 1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3, 1e-2,   2.5e-2, 5e-2, 1e-1,
      2.5e-1, 5e-1,   1.0,  2.5,    5.0,    10.0};
  return *bounds;
}

Counter* Registry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterValues()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeValues() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::Histograms()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

RegistrySnapshot Registry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

}  // namespace obs
}  // namespace histkanon
