// Registry exporters: Prometheus text exposition format (for scraping)
// and a JSON snapshot (for the bench harness's machine-readable perf
// trajectory).
//
// Consistency: both exporters render from one Registry::Snapshot(), so a
// histogram's cumulative bucket series is monotone non-decreasing and the
// le="+Inf" bucket equals `_count` even when the export races concurrent
// Observe() calls (see HistogramSnapshot's contract in metrics.h).

#ifndef HISTKANON_SRC_OBS_EXPORT_H_
#define HISTKANON_SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"

namespace histkanon {
namespace obs {

/// Maps an arbitrary metric name onto the Prometheus charset
/// [a-zA-Z0-9_:] (other characters become '_', a leading digit gains a
/// '_' prefix).
std::string SanitizeMetricName(const std::string& name);

/// Prometheus text exposition format, version 0.0.4: counters, gauges,
/// then histograms (cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`), each group sorted by name.
std::string ToPrometheusText(const RegistrySnapshot& snapshot);
std::string ToPrometheusText(const Registry& registry);

/// One JSON object:
///   {"counters":{..},"gauges":{..},
///    "histograms":{"name":{"count":..,"sum":..,
///                          "p50":..,"p95":..,"p99":..,
///                          "buckets":[{"le":..,"count":..},..]}}}
/// Bucket counts are per-bucket (non-cumulative); the final bucket's
/// "le" is null, standing for +Inf.
std::string ToJson(const RegistrySnapshot& snapshot);
std::string ToJson(const Registry& registry);

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_EXPORT_H_
