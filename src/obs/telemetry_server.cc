#include "src/obs/telemetry_server.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/str.h"
#include "src/obs/export.h"
#include "src/obs/json.h"

namespace histkanon {
namespace obs {

namespace {

const char* ContentTypeFor(const std::string& path) {
  if (path == "/metrics" || path == "/healthz") {
    return "text/plain; version=0.0.4; charset=utf-8";
  }
  return "application/json";
}

// Writes the whole buffer, tolerating short writes; best-effort (the
// peer may vanish — telemetry must never propagate that as a failure).
void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string TelemetryServer::RenderBody(const std::string& path) const {
  if (path == "/healthz") return "ok\n";
  if (path == "/metrics") {
    return sources_.registry == nullptr ? std::string()
                                        : ToPrometheusText(*sources_.registry);
  }
  if (path == "/slo") {
    return sources_.slo == nullptr ? std::string("{}")
                                   : sources_.slo->ToJson();
  }
  if (path == "/trace.json") {
    return sources_.tracer == nullptr
               ? std::string("{\"traceEvents\":[]}")
               : sources_.tracer->ToChromeTraceJson();
  }
  if (path == "/snapshot.json") {
    if (sources_.resources != nullptr) sources_.resources->Collect();
    JsonObject root;
    root.SetRaw("metrics", sources_.registry == nullptr
                               ? "{}"
                               : ToJson(*sources_.registry));
    root.SetRaw("slo", sources_.slo == nullptr ? "{}"
                                               : sources_.slo->ToJson());
    root.SetRaw("resources", sources_.resources == nullptr
                                 ? "{}"
                                 : sources_.resources->ToJson());
    return root.ToString();
  }
  return std::string();
}

common::Status TelemetryServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return common::Status::FailedPrecondition("telemetry server running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return common::Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return common::Status::Internal(
        common::Format("bind(127.0.0.1:%u) failed", unsigned{port}));
  }
  if (::listen(fd, 8) != 0) {
    ::close(fd);
    return common::Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return common::Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return common::Status::OK();
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblocks accept(); the loop then observes running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TelemetryServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;  // Stop() shuts the socket down.
    ServeConnection(client);
    ::close(client);
  }
}

void TelemetryServer::ServeConnection(int fd) const {
  // Read until the end of the request head (or the peer stops sending);
  // only the request line matters.
  std::string request;
  char buffer[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string path;
  if (line.rfind("GET ", 0) == 0) {
    const size_t space = line.find(' ', 4);
    path = line.substr(4, space == std::string::npos ? std::string::npos
                                                     : space - 4);
  }

  std::string body = path.empty() ? std::string() : RenderBody(path);
  std::string head;
  if (body.empty() && path != "/metrics") {
    body = "not found\n";
    head = common::Format(
        "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        body.size());
  } else {
    head = common::Format(
        "HTTP/1.0 200 OK\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        ContentTypeFor(path), body.size());
  }
  WriteAll(fd, head + body);
}

common::Result<std::string> FetchTelemetry(uint16_t port,
                                           const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return common::Status::Internal("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return common::Status::Internal(
        common::Format("connect(127.0.0.1:%u) failed", unsigned{port}));
  }
  const std::string request = common::Format(
      "GET %s HTTP/1.0\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n",
      path.c_str());
  WriteAll(fd, request);

  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return common::Status::Internal("malformed telemetry response");
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    return common::Status::NotFound(
        common::Format("telemetry GET %s: %s", path.c_str(),
                       response.substr(0, response.find("\r\n")).c_str()));
  }
  return response.substr(head_end + 4);
}

}  // namespace obs
}  // namespace histkanon
