// Request tracing: RAII spans with steady_clock timing, parent/child
// nesting, and per-span string attributes.  A Tracer accumulates finished
// SpanRecords (the TS starts one root span per request, with one child per
// pipeline stage); the caller drains them with spans()/Reset().
//
// Null-object contract: a default-constructed Span is inert, and
// StartSpan(nullptr, ...) returns one, so instrumented code never branches
// on "is tracing on" — it just creates spans.

#ifndef HISTKANON_SRC_OBS_TRACE_H_
#define HISTKANON_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace histkanon {
namespace obs {

class Tracer;

/// \brief One finished (or open) span.
struct SpanRecord {
  std::string name;
  /// Start offset from the tracer's epoch, nanoseconds (steady clock).
  int64_t start_ns = 0;
  /// -1 while the span is open.
  int64_t duration_ns = -1;
  /// Index of the parent span in the tracer's record list; -1 for roots.
  int parent = -1;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// \brief RAII handle over one open span; ends it on destruction.
/// Move-only; a default-constructed Span is a no-op.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    End();
    tracer_ = other.tracer_;
    index_ = other.index_;
    other.tracer_ = nullptr;
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// True when this handle controls an open span.
  bool active() const { return tracer_ != nullptr; }

  void AddAttribute(std::string key, std::string value);

  /// Ends the span now (idempotent; the destructor calls this).
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, size_t index) : tracer_(tracer), index_(index) {}

  Tracer* tracer_ = nullptr;
  size_t index_ = 0;
};

/// \brief Collects span records for one thread of execution.  Spans
/// started while another span is open become its children (LIFO stack
/// discipline, which RAII scoping guarantees).
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span whose parent is the innermost still-open span.
  Span StartSpan(std::string name);

  /// All records so far, in start order (open spans have duration -1).
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Number of spans started and not yet ended.
  size_t open_spans() const { return stack_.size(); }

  /// Drops all records and open-span state (epoch is preserved).
  void Reset();

 private:
  friend class Span;
  void EndSpan(size_t index);

  int64_t epoch_ns_ = 0;
  std::vector<SpanRecord> spans_;
  std::vector<size_t> stack_;  // indices of open spans, outermost first
};

/// Null-safe span start: inert span when `tracer` is nullptr.
inline Span StartSpan(Tracer* tracer, std::string name) {
  return tracer == nullptr ? Span() : tracer->StartSpan(std::move(name));
}

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_TRACE_H_
