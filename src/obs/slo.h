// Rolling SLO view: a windowed latency ring (p50/p95/p99 over the last N
// completions, not lifetime), shed-rate accounting, and a breaker-state
// timeline.  The lifetime histograms in obs::Registry answer "how has the
// server behaved since boot"; this answers the operator question "how is
// it behaving NOW" — the rolling window forgets old samples, so a latency
// regression shows up immediately instead of being averaged away.
//
// Thread-safe (one mutex; observations are O(1) ring writes).  Like every
// obs component it is null-object optional: servers hold `SloView*`
// defaulting to nullptr and skip all observation when unset.

#ifndef HISTKANON_SRC_OBS_SLO_H_
#define HISTKANON_SRC_OBS_SLO_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace histkanon {
namespace obs {

/// \brief One breaker-state change, stamped with MonotonicNanos.
struct HealthTransition {
  std::string domain;  ///< Which breaker ("ts", "cs", "shard_2", ...).
  int state = 0;       ///< 0 healthy / 1 degraded / 2 probing.
  int64_t at_ns = 0;
};

/// \brief Point-in-time view of the rolling window.
struct SloSnapshot {
  uint64_t completed = 0;  ///< Lifetime completions observed.
  uint64_t shed = 0;       ///< Lifetime sheds observed.
  /// shed / (shed + completed); 0 when nothing observed.
  double shed_rate = 0.0;
  size_t window_size = 0;  ///< Samples currently in the ring.
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  std::vector<HealthTransition> health_timeline;
};

/// \brief Windowed latency/shed/health aggregator.
class SloView {
 public:
  /// `window` latency samples are retained (ring buffer).
  explicit SloView(size_t window = 4096);
  SloView(const SloView&) = delete;
  SloView& operator=(const SloView&) = delete;

  void ObserveLatency(double seconds);
  void ObserveShed();
  /// Appends to the health timeline (oldest entries evicted beyond the
  /// cap so a flapping breaker cannot grow the view unboundedly).
  void RecordHealthTransition(const std::string& domain, int state);

  SloSnapshot TakeSnapshot() const;
  /// The snapshot as one JSON object (for the telemetry endpoint).
  std::string ToJson() const;

 private:
  static constexpr size_t kMaxTimeline = 64;

  mutable std::mutex mu_;
  std::vector<double> ring_;
  size_t window_;
  size_t next_ = 0;
  uint64_t completed_ = 0;
  uint64_t shed_ = 0;
  std::vector<HealthTransition> timeline_;
};

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_SLO_H_
