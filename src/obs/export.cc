#include "src/obs/export.h"

#include <cmath>

#include "src/common/str.h"
#include "src/obs/json.h"

namespace histkanon {
namespace obs {

namespace {

// Prometheus sample values: integral doubles print as integers.
std::string PromNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return common::Format("%lld", static_cast<long long>(value));
  }
  return common::Format("%.9g", value);
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = SanitizeMetricName(name);
    out += common::Format("# TYPE %s counter\n", prom.c_str());
    out += common::Format("%s %llu\n", prom.c_str(),
                          static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = SanitizeMetricName(name);
    out += common::Format("# TYPE %s gauge\n", prom.c_str());
    out += common::Format("%s %s\n", prom.c_str(),
                          PromNumber(value).c_str());
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = SanitizeMetricName(name);
    out += common::Format("# TYPE %s histogram\n", prom.c_str());
    const std::vector<uint64_t>& counts = histogram.bucket_counts;
    const std::vector<double>& bounds = histogram.upper_bounds;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += common::Format(
          "%s_bucket{le=\"%s\"} %llu\n", prom.c_str(),
          PromNumber(bounds[i]).c_str(),
          static_cast<unsigned long long>(cumulative));
    }
    cumulative += counts[bounds.size()];
    // cumulative now equals histogram.count by the snapshot contract, so
    // the +Inf bucket and _count always agree.
    out += common::Format("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                          static_cast<unsigned long long>(cumulative));
    out += common::Format("%s_sum %s\n", prom.c_str(),
                          PromNumber(histogram.sum).c_str());
    out += common::Format("%s_count %llu\n", prom.c_str(),
                          static_cast<unsigned long long>(histogram.count));
  }
  return out;
}

std::string ToPrometheusText(const Registry& registry) {
  return ToPrometheusText(registry.Snapshot());
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  JsonObject counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.SetUint(name, value);
  }
  JsonObject gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.SetNumber(name, value);
  }
  JsonObject histograms;
  for (const auto& [name, histogram] : snapshot.histograms) {
    JsonObject entry;
    entry.SetUint("count", histogram.count);
    entry.SetNumber("sum", histogram.sum);
    entry.SetNumber("p50", histogram.Quantile(0.50));
    entry.SetNumber("p95", histogram.Quantile(0.95));
    entry.SetNumber("p99", histogram.Quantile(0.99));
    const std::vector<uint64_t>& counts = histogram.bucket_counts;
    const std::vector<double>& bounds = histogram.upper_bounds;
    std::string buckets = "[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) buckets += ',';
      JsonObject bucket;
      if (i < bounds.size()) {
        bucket.SetNumber("le", bounds[i]);
      } else {
        bucket.SetRaw("le", "null");
      }
      bucket.SetUint("count", counts[i]);
      buckets += bucket.ToString();
    }
    buckets += ']';
    entry.SetRaw("buckets", std::move(buckets));
    histograms.SetRaw(name, entry.ToString());
  }
  JsonObject root;
  root.SetRaw("counters", counters.ToString());
  root.SetRaw("gauges", gauges.ToString());
  root.SetRaw("histograms", histograms.ToString());
  return root.ToString();
}

std::string ToJson(const Registry& registry) {
  return ToJson(registry.Snapshot());
}

}  // namespace obs
}  // namespace histkanon
