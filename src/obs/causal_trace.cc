#include "src/obs/causal_trace.h"

#include <map>
#include <utility>

#include "src/obs/json.h"

namespace histkanon {
namespace obs {

CausalSpan& CausalSpan::operator=(CausalSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void CausalSpan::AddAttribute(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.attributes.emplace_back(std::move(key), std::move(value));
}

void CausalSpan::End() {
  if (tracer_ == nullptr) return;
  record_.duration_ns = MonotonicNanos() - record_.start_ns;
  CausalTracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Commit(std::move(record_));
}

CausalSpan CausalTracer::StartSpan(const TraceContext& ctx, std::string name,
                                   std::string track) {
  CausalSpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent_span = ctx.parent_span;
  record.name = std::move(name);
  record.track = std::move(track);
  record.start_ns = MonotonicNanos();
  return CausalSpan(this, std::move(record));
}

uint64_t CausalTracer::RecordSpan(
    const TraceContext& ctx, std::string name, std::string track,
    int64_t start_ns, int64_t duration_ns,
    std::vector<std::pair<std::string, std::string>> attributes) {
  CausalSpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent_span = ctx.parent_span;
  record.name = std::move(name);
  record.track = std::move(track);
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  record.attributes = std::move(attributes);
  const uint64_t id = record.span_id;
  Commit(std::move(record));
  return id;
}

void CausalTracer::Commit(CausalSpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<CausalSpanRecord> CausalTracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t CausalTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CausalTracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

namespace {

void AppendQuoted(std::string* out, const std::string& text) {
  out->push_back('"');
  out->append(JsonEscape(text));
  out->push_back('"');
}

void AppendMicros(std::string* out, int64_t ns) {
  // Chrome-trace timestamps are fractional microseconds; emit three
  // decimals so nanosecond spans stay distinguishable.
  const int64_t micros = ns / 1000;
  const int64_t frac = (ns < 0 ? -ns : ns) % 1000;
  out->append(std::to_string(micros));
  out->push_back('.');
  out->push_back(static_cast<char>('0' + frac / 100));
  out->push_back(static_cast<char>('0' + (frac / 10) % 10));
  out->push_back(static_cast<char>('0' + frac % 10));
}

}  // namespace

std::string CausalTracer::ToChromeTraceJson() const {
  const std::vector<CausalSpanRecord> records = Records();

  // Stable track -> tid mapping in order of first appearance, plus span
  // id -> track for flow-event endpoints.
  std::map<std::string, int> track_tids;
  std::vector<const std::string*> track_order;
  std::map<uint64_t, const CausalSpanRecord*> by_span_id;
  for (const CausalSpanRecord& record : records) {
    if (track_tids.emplace(record.track, 0).second) {
      track_order.push_back(&record.track);
    }
    by_span_id.emplace(record.span_id, &record);
  }
  int next_tid = 1;
  for (const std::string* track : track_order) {
    track_tids[*track] = next_tid++;
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&out, &first]() {
    if (!first) out.push_back(',');
    first = false;
  };

  for (const std::string* track : track_order) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(track_tids[*track]);
    out += ",\"args\":{\"name\":";
    AppendQuoted(&out, *track);
    out += "}}";
  }

  for (const CausalSpanRecord& record : records) {
    const int tid = track_tids[record.track];
    comma();
    out += "{\"name\":";
    AppendQuoted(&out, record.name);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    AppendMicros(&out, record.start_ns - epoch_ns_);
    out += ",\"dur\":";
    AppendMicros(&out, record.duration_ns);
    out += ",\"args\":{\"trace_id\":";
    out += std::to_string(record.trace_id);
    out += ",\"span_id\":";
    out += std::to_string(record.span_id);
    out += ",\"parent_span\":";
    out += std::to_string(record.parent_span);
    for (const auto& [key, value] : record.attributes) {
      out.push_back(',');
      AppendQuoted(&out, key);
      out.push_back(':');
      AppendQuoted(&out, value);
    }
    out += "}}";

    // Cross-track parent/child edges become flow arrows; same-track
    // nesting is already visible as stacked slices.
    if (record.parent_span != 0) {
      const auto parent_it = by_span_id.find(record.parent_span);
      if (parent_it != by_span_id.end() &&
          parent_it->second->track != record.track) {
        const CausalSpanRecord& parent = *parent_it->second;
        comma();
        out += "{\"name\":\"causal\",\"ph\":\"s\",\"id\":";
        out += std::to_string(record.span_id);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(track_tids[parent.track]);
        out += ",\"ts\":";
        AppendMicros(&out,
                     parent.start_ns + parent.duration_ns - epoch_ns_);
        out += "}";
        comma();
        out +=
            "{\"name\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":";
        out += std::to_string(record.span_id);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        out += ",\"ts\":";
        AppendMicros(&out, record.start_ns - epoch_ns_);
        out += "}";
      }
    }
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace obs
}  // namespace histkanon
