// Live telemetry snapshot endpoint: a minimal, dependency-free TCP/HTTP
// server exposing the observability plane over the wire — Prometheus
// text for scrapers, JSON snapshots (metrics + rolling SLO view +
// resource accounting) for tooling, and the causal tracer's
// Chrome-trace/Perfetto JSON for a browser timeline.  This is the repo's
// first real wire surface (ROADMAP item 1's RPC front-end will grow next
// to it) and is deliberately tiny: GET-only HTTP/1.0-style responses,
// one connection at a time, loopback-oriented.
//
// Routes:
//   /metrics        Prometheus text exposition (one consistent snapshot)
//   /snapshot.json  {"metrics":{...},"slo":{...},"resources":{...}}
//   /slo            the rolling SLO view alone
//   /trace.json     Chrome-trace JSON (open in ui.perfetto.dev)
//   /healthz        "ok"
//
// Every data source is optional (null-object): absent sources export as
// empty objects.  Reads are snapshot-based, so serving never blocks the
// serving path beyond the registry's snapshot lock.

#ifndef HISTKANON_SRC_OBS_TELEMETRY_SERVER_H_
#define HISTKANON_SRC_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/common/result.h"
#include "src/obs/causal_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/resource.h"
#include "src/obs/slo.h"

namespace histkanon {
namespace obs {

/// \brief The optional data sources a TelemetryServer serves from.
struct TelemetrySources {
  Registry* registry = nullptr;
  SloView* slo = nullptr;
  ResourceAccountant* resources = nullptr;
  CausalTracer* tracer = nullptr;
};

/// \brief Loopback TCP server for telemetry snapshots.
class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetrySources sources)
      : sources_(sources) {}
  ~TelemetryServer() { Stop(); }
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back
  /// via port()) and starts the accept thread.
  common::Status Start(uint16_t port = 0);

  /// Stops accepting, closes the socket, joins the thread.  Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (0 before a successful Start).
  uint16_t port() const { return port_; }

  /// Renders the response body for `path` without a socket — the routing
  /// table itself, also used by tests.  Unknown paths return an empty
  /// string (the wire layer turns that into a 404).
  std::string RenderBody(const std::string& path) const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd) const;

  TelemetrySources sources_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Blocking test/smoke client: one GET to 127.0.0.1:`port`, returning
/// the response BODY (headers stripped).  Fails on connect errors or
/// non-200 responses.
common::Result<std::string> FetchTelemetry(uint16_t port,
                                           const std::string& path);

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_TELEMETRY_SERVER_H_
