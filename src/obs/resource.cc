#include "src/obs/resource.h"

#include <algorithm>
#include <cstdio>

#include <unistd.h>

#include "src/obs/json.h"

namespace histkanon {
namespace obs {

uint64_t SampleRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long rss_pages = 0;
  const int fields = std::fscanf(f, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
}

ResourceAccountant::ResourceAccountant(Registry* registry)
    : registry_(registry) {}

Gauge* ResourceAccountant::GaugeFor(const std::string& name) {
  return registry_ == nullptr
             ? nullptr
             : registry_->GetGauge("res_" + name + "_bytes");
}

void ResourceAccountant::RegisterProbe(const std::string& name,
                                       std::function<uint64_t()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, entry] : probes_) {
    if (existing == name) {
      entry.first = std::move(probe);
      return;
    }
  }
  probes_.emplace_back(name,
                       std::make_pair(std::move(probe), GaugeFor(name)));
}

void ResourceAccountant::SetBytes(const std::string& name, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Gauge* gauge = GaugeFor(name);
  if (gauge != nullptr) gauge->Set(static_cast<double>(bytes));
  const auto it = std::lower_bound(
      last_.begin(), last_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != last_.end() && it->first == name) {
    it->second = bytes;
  } else {
    last_.insert(it, {name, bytes});
  }
}

size_t ResourceAccountant::Collect() {
  // Copy the probe list so probe bodies run outside the lock (a probe may
  // legitimately call back into SetBytes).
  std::vector<std::pair<std::string, std::function<uint64_t()>>> probes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probes.reserve(probes_.size());
    for (const auto& [name, entry] : probes_) {
      probes.emplace_back(name, entry.first);
    }
  }
  for (const auto& [name, probe] : probes) {
    SetBytes(name, probe ? probe() : 0);
  }
  SetBytes("rss", SampleRssBytes());
  return probes.size();
}

std::vector<std::pair<std::string, uint64_t>> ResourceAccountant::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

std::string ResourceAccountant::ToJson() const {
  JsonObject out;
  for (const auto& [name, bytes] : Snapshot()) {
    out.SetUint(name + "_bytes", bytes);
  }
  if (out.empty()) return "{}";
  return out.ToString();
}

}  // namespace obs
}  // namespace histkanon
