// Lock-cheap metrics for the serving path: named counters, gauges, and
// fixed-bucket histograms behind a Registry.  Registration (name lookup)
// takes a mutex once; the returned handles are stable for the registry's
// lifetime and every update on them is a relaxed atomic, so instrumented
// code pre-resolves its handles at construction and pays a few atomic adds
// per event.  Everything is optional by convention: instrumented
// components hold `obs::Registry*` defaulting to nullptr and skip all
// observation (including clock reads) when unset — the null-object path
// must keep behavior bit-identical to uninstrumented code.

#ifndef HISTKANON_SRC_OBS_METRICS_H_
#define HISTKANON_SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace histkanon {
namespace obs {

/// Monotonic timestamp (steady_clock) in nanoseconds.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief One self-consistent view of a histogram, taken in a single
/// pass over the bucket array.
///
/// Consistency contract: `count` is DERIVED from the summed bucket loads
/// (not read from the separate count_ atomic), so in any snapshot —
/// including one taken under concurrent writers — the cumulative bucket
/// series is monotone non-decreasing and the final cumulative value
/// (Prometheus's le="+Inf" bucket) equals `_count` exactly.  `sum` is
/// read separately and may trail the buckets by in-flight observations;
/// only the bucket/count relationship is guaranteed.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  /// Per-bucket (non-cumulative); index upper_bounds.size() is overflow.
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;  ///< Sum of bucket_counts, by construction.
  double sum = 0.0;

  /// Quantile estimate over the snapshotted buckets (same interpolation
  /// as Histogram::Quantile).
  double Quantile(double q) const;
};

/// \brief Fixed-bucket histogram (Prometheus-style cumulative export).
///
/// Bucket i counts observations with value <= upper_bounds[i] (and greater
/// than the previous bound); one implicit overflow bucket catches the
/// rest.  Bounds are fixed at construction so Observe() is a binary search
/// plus three relaxed atomic adds.
///
/// Observe() updates bucket, count, and sum as three SEPARATE relaxed
/// atomics, so readers that load them independently can tear (a count
/// ahead of the buckets, or vice versa).  Exporters must therefore go
/// through Snapshot(), which rebuilds a consistent view from one pass
/// over the buckets alone.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; index bounds_.size() is the
  /// overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// covering bucket; the overflow bucket reports its lower bound.
  /// Returns 0 when empty.
  double Quantile(double q) const;

  /// One-pass consistent view (see HistogramSnapshot's contract).
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for request/stage latencies, in seconds
/// (1 microsecond .. 10 seconds, roughly logarithmic).
const std::vector<double>& DefaultLatencyBounds();

/// \brief One consistent export pass over a whole Registry, every metric
/// captured under a single registry lock and each histogram through
/// Histogram::Snapshot() — the input for all exporters.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;   // sorted
  std::vector<std::pair<std::string, double>> gauges;       // sorted
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// \brief Name -> metric registry.  Get* calls are find-or-create and
/// return handles that stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used only when `name` is first created.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBounds());

  /// Per-kind snapshots, sorted by name.  Each takes the lock
  /// separately; prefer Snapshot() when exporting more than one kind.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// One consistent snapshot of everything (single lock acquisition;
  /// histograms via Histogram::Snapshot so their consistency contract
  /// holds under concurrent writers).
  RegistrySnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief RAII stage timer: observes elapsed seconds into a histogram at
/// scope exit.  A nullptr histogram disables it entirely (no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram == nullptr ? 0 : MonotonicNanos()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Records now (idempotent); returns elapsed seconds (0 when disabled).
  double Stop() {
    if (histogram_ == nullptr) return 0.0;
    const double seconds =
        static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9;
    histogram_->Observe(seconds);
    histogram_ = nullptr;
    return seconds;
  }

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_METRICS_H_
