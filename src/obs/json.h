// Minimal JSON emission and flat-object parsing for the observability
// subsystem (metrics export, structured event log).  Deliberately tiny:
// the event log and exporters only need flat objects of scalars plus the
// occasional nested raw fragment, so no general JSON DOM is built.

#ifndef HISTKANON_SRC_OBS_JSON_H_
#define HISTKANON_SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace histkanon {
namespace obs {

/// Escapes `text` for use inside a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view text);

/// Renders a double as a JSON number: integral values print without a
/// fraction, non-finite values print as null (JSON has no Inf/NaN).
std::string JsonNumber(double value);

/// \brief Incremental writer for one JSON object; keys keep insertion
/// order so emitted records are stable and diffable.
class JsonObject {
 public:
  JsonObject& SetString(std::string key, std::string_view value);
  JsonObject& SetNumber(std::string key, double value);
  JsonObject& SetInt(std::string key, int64_t value);
  JsonObject& SetUint(std::string key, uint64_t value);
  JsonObject& SetBool(std::string key, bool value);
  /// Inserts `raw_json` verbatim — for nested objects/arrays.
  JsonObject& SetRaw(std::string key, std::string raw_json);

  bool empty() const { return fields_.empty(); }

  /// Renders `{"k":v,...}` with no whitespace (one JSONL record).
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key, raw value
};

/// Parses one flat JSON object (as produced by JsonObject) into a
/// key -> value-text map: string values are unescaped, numbers/booleans/
/// null keep their literal spelling, nested objects/arrays keep their raw
/// JSON text.  Fails on malformed input.
common::Result<std::map<std::string, std::string>> ParseFlatJson(
    std::string_view line);

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_JSON_H_
