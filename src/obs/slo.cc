#include "src/obs/slo.h"

#include <algorithm>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace histkanon {
namespace obs {

SloView::SloView(size_t window) : window_(window == 0 ? 1 : window) {
  ring_.reserve(window_);
}

void SloView::ObserveLatency(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (ring_.size() < window_) {
    ring_.push_back(seconds);
  } else {
    ring_[next_] = seconds;
  }
  next_ = (next_ + 1) % window_;
}

void SloView::ObserveShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++shed_;
}

void SloView::RecordHealthTransition(const std::string& domain, int state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (timeline_.size() >= kMaxTimeline) {
    timeline_.erase(timeline_.begin());
  }
  timeline_.push_back(HealthTransition{domain, state, MonotonicNanos()});
}

namespace {

// `values` is scratch (mutated by nth_element).
double QuantileOf(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  const size_t rank = std::min(
      values->size() - 1, static_cast<size_t>(q * (values->size() - 1) + 0.5));
  std::nth_element(values->begin(), values->begin() + rank, values->end());
  return (*values)[rank];
}

}  // namespace

SloSnapshot SloView::TakeSnapshot() const {
  std::vector<double> window;
  SloSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window = ring_;
    snap.completed = completed_;
    snap.shed = shed_;
    snap.health_timeline = timeline_;
  }
  snap.window_size = window.size();
  const uint64_t total = snap.completed + snap.shed;
  snap.shed_rate =
      total == 0 ? 0.0 : static_cast<double>(snap.shed) / total;
  snap.p50_seconds = QuantileOf(&window, 0.50);
  snap.p95_seconds = QuantileOf(&window, 0.95);
  snap.p99_seconds = QuantileOf(&window, 0.99);
  return snap;
}

std::string SloView::ToJson() const {
  const SloSnapshot snap = TakeSnapshot();
  std::string timeline = "[";
  for (size_t i = 0; i < snap.health_timeline.size(); ++i) {
    const HealthTransition& t = snap.health_timeline[i];
    if (i > 0) timeline.push_back(',');
    JsonObject entry;
    entry.SetString("domain", t.domain);
    entry.SetInt("state", t.state);
    entry.SetInt("at_ns", t.at_ns);
    timeline += entry.ToString();
  }
  timeline.push_back(']');

  JsonObject out;
  out.SetUint("completed", snap.completed);
  out.SetUint("shed", snap.shed);
  out.SetNumber("shed_rate", snap.shed_rate);
  out.SetUint("window_size", snap.window_size);
  out.SetNumber("p50_seconds", snap.p50_seconds);
  out.SetNumber("p95_seconds", snap.p95_seconds);
  out.SetNumber("p99_seconds", snap.p99_seconds);
  out.SetRaw("health_timeline", std::move(timeline));
  return out.ToString();
}

}  // namespace obs
}  // namespace histkanon
