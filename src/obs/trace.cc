#include "src/obs/trace.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace histkanon {
namespace obs {

void Span::AddAttribute(std::string key, std::string value) {
  if (tracer_ == nullptr || index_ >= tracer_->spans_.size()) return;
  tracer_->spans_[index_].attributes.emplace_back(std::move(key),
                                                 std::move(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  tracer_->EndSpan(index_);
  tracer_ = nullptr;
}

Tracer::Tracer() : epoch_ns_(MonotonicNanos()) {}

Span Tracer::StartSpan(std::string name) {
  SpanRecord record;
  record.name = std::move(name);
  record.start_ns = MonotonicNanos() - epoch_ns_;
  record.parent = stack_.empty() ? -1 : static_cast<int>(stack_.back());
  const size_t index = spans_.size();
  spans_.push_back(std::move(record));
  stack_.push_back(index);
  return Span(this, index);
}

void Tracer::EndSpan(size_t index) {
  if (index >= spans_.size()) return;  // stale handle after Reset()
  SpanRecord& record = spans_[index];
  if (record.duration_ns >= 0) return;  // already ended
  record.duration_ns =
      MonotonicNanos() - epoch_ns_ - record.start_ns;
  // RAII scoping ends spans innermost-first; tolerate out-of-order ends
  // (e.g. a moved-from span outliving its children) by popping through.
  const auto it = std::find(stack_.begin(), stack_.end(), index);
  if (it != stack_.end()) stack_.erase(it, stack_.end());
}

void Tracer::Reset() {
  spans_.clear();
  stack_.clear();
}

}  // namespace obs
}  // namespace histkanon
