// Request-scoped causal tracing: a TraceContext (trace id + parent span
// id) travels WITH a request across threads — front-end admission, shard
// queues, the worker's pipeline, journal appends — and every hop records a
// CausalSpanRecord into one shared, thread-safe CausalTracer.  Linking the
// records by (trace_id, parent_span) reconstructs the full causal chain
// of a single request even when its hops ran on different threads, which
// the single-threaded LIFO obs::Tracer cannot express.
//
// Determinism: trace ids come from a seeded counter owned by the serving
// layer and are consumed ONLY on successful admission, so journal replay
// (which sees exactly the admitted events) re-derives the same ids — the
// property tests/trace_recovery_test.cc pins down.  Span ids and
// timestamps are observational (they differ run to run); the CHAIN —
// which spans exist, their names, tracks, attributes, and parent/child
// edges per trace id — is what the differentials compare.
//
// Null-object contract: instrumented code holds `obs::CausalTracer*`
// defaulting to nullptr; StartCausalSpan(nullptr, ...) returns an inert
// span and RecordSpan on a null tracer is skipped by the caller, so the
// untraced path performs no clock reads and no allocations.

#ifndef HISTKANON_SRC_OBS_CAUSAL_TRACE_H_
#define HISTKANON_SRC_OBS_CAUSAL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace histkanon {
namespace obs {

class CausalTracer;

/// \brief The causal coordinates a request carries between hops: which
/// trace it belongs to and which span new child spans should attach to.
/// trace_id 0 is the "no identity" trace used for spans recorded before
/// an id was assigned (e.g. shed decisions — a shed request never
/// consumed an id, or replay would desynchronize).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// \brief One finished span.  start_ns is an ABSOLUTE MonotonicNanos
/// timestamp (all threads share the steady clock), so cross-thread spans
/// of one trace order correctly; exporters subtract the tracer's epoch.
struct CausalSpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;  ///< 0 = root.
  std::string name;
  /// Which logical track (thread/stage lane) the span ran on, e.g.
  /// "frontend", "shard_0", "ts".  Becomes the Chrome-trace thread.
  std::string track;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// \brief RAII handle over one open causal span.  Move-only; a
/// default-constructed CausalSpan is inert.  The record is held locally
/// until End() pushes it into the tracer, so an open span costs no lock.
class CausalSpan {
 public:
  CausalSpan() = default;
  CausalSpan(CausalSpan&& other) noexcept { *this = std::move(other); }
  CausalSpan& operator=(CausalSpan&& other) noexcept;
  CausalSpan(const CausalSpan&) = delete;
  CausalSpan& operator=(const CausalSpan&) = delete;
  ~CausalSpan() { End(); }

  bool active() const { return tracer_ != nullptr; }

  /// The context CHILD spans of this one should carry: same trace, this
  /// span as parent.  Valid while active (zeroes otherwise).
  TraceContext context() const {
    return TraceContext{record_.trace_id, record_.span_id};
  }
  uint64_t span_id() const { return record_.span_id; }

  void AddAttribute(std::string key, std::string value);

  /// Ends the span now and commits the record (idempotent).
  void End();

 private:
  friend class CausalTracer;
  CausalSpan(CausalTracer* tracer, CausalSpanRecord record)
      : tracer_(tracer), record_(std::move(record)) {}

  CausalTracer* tracer_ = nullptr;
  CausalSpanRecord record_;
};

/// \brief Thread-safe collector of causal span records.  Span-id
/// allocation is one relaxed atomic increment; committing a finished
/// record takes the mutex once.
class CausalTracer {
 public:
  CausalTracer() : epoch_ns_(MonotonicNanos()) {}
  CausalTracer(const CausalTracer&) = delete;
  CausalTracer& operator=(const CausalTracer&) = delete;

  /// Opens a span in `ctx`'s trace, child of ctx.parent_span.
  CausalSpan StartSpan(const TraceContext& ctx, std::string name,
                       std::string track);

  /// Records a span retroactively — for hops whose trace id is only known
  /// after they finish (admission: the id is allocated on success, so the
  /// admission span itself is recorded after the fact with the timing it
  /// measured).  Returns the new span's id so the caller can parent
  /// children to it.
  uint64_t RecordSpan(
      const TraceContext& ctx, std::string name, std::string track,
      int64_t start_ns, int64_t duration_ns,
      std::vector<std::pair<std::string, std::string>> attributes = {});

  /// All committed records, in commit order.
  std::vector<CausalSpanRecord> Records() const;
  size_t size() const;
  void Reset();

  int64_t epoch_ns() const { return epoch_ns_; }

  /// Chrome-trace / Perfetto JSON ("traceEvents" array): one "M"
  /// thread_name metadata event per track, one "X" complete event per
  /// span (timestamps relative to the tracer epoch, microseconds), and
  /// "s"/"f" flow events linking child to parent where the two ran on
  /// different tracks — so chrome://tracing and ui.perfetto.dev draw the
  /// cross-thread causal chain as arrows.
  std::string ToChromeTraceJson() const;

 private:
  friend class CausalSpan;
  void Commit(CausalSpanRecord record);

  const int64_t epoch_ns_;
  std::atomic<uint64_t> next_span_id_{1};
  mutable std::mutex mu_;
  std::vector<CausalSpanRecord> records_;
};

/// Null-safe span start: inert span when `tracer` is nullptr (no clock
/// read, no allocation).
inline CausalSpan StartCausalSpan(CausalTracer* tracer,
                                  const TraceContext& ctx, std::string name,
                                  std::string track) {
  return tracer == nullptr
             ? CausalSpan()
             : tracer->StartSpan(ctx, std::move(name), std::move(track));
}

}  // namespace obs
}  // namespace histkanon

#endif  // HISTKANON_SRC_OBS_CAUSAL_TRACE_H_
